#!/usr/bin/env python
"""Best-effort native build lane for the scheduler hot path.

The simulator's timed lane (:mod:`repro.runtime.wheel`) is deliberately
written in the restricted, ``__slots__``-and-ints style that ahead-of-
time Python compilers handle well.  This script tries to compile it with
whatever toolchain the environment offers — ``mypyc`` first, Cython as
the fallback — then benchmarks the compiled extension against the pure-
Python module on the same out-of-order push/pop storm and writes
``BENCH_compiled.json``.

Where no toolchain (or no C compiler) is available the script prints
why and exits 0: the lane is an *optional* accelerator, never a build
requirement, so CI runs it on every configuration and simply records
``skipped`` where it cannot build.

Usage::

    PYTHONPATH=src python tools/build_compiled.py [--out FILE] [--quick]
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
WHEEL_SRC = os.path.join(REPO, "src", "repro", "runtime", "wheel.py")


def detect_toolchain() -> str | None:
    """Name of the first available AOT compiler, or None."""
    for name in ("mypyc", "Cython"):
        try:
            if importlib.util.find_spec(name) is not None:
                return name
        except (ImportError, ValueError):
            continue
    return None


def _build_mypyc(workdir: str) -> str | None:
    """Compile wheel.py with mypyc into ``workdir``; module name or None."""
    shutil.copy(WHEEL_SRC, os.path.join(workdir, "wheel_compiled.py"))
    result = subprocess.run(
        [sys.executable, "-m", "mypyc", "wheel_compiled.py"],
        cwd=workdir,
        capture_output=True,
        text=True,
        timeout=600,
    )
    if result.returncode != 0:
        print(f"mypyc build failed:\n{result.stdout}\n{result.stderr}")
        return None
    return "wheel_compiled"


def _build_cython(workdir: str) -> str | None:
    """Compile wheel.py with cythonize into ``workdir``; module name or None."""
    shutil.copy(WHEEL_SRC, os.path.join(workdir, "wheel_compiled.py"))
    result = subprocess.run(
        [sys.executable, "-m", "Cython.Build.Cythonize", "-i", "wheel_compiled.py"],
        cwd=workdir,
        capture_output=True,
        text=True,
        timeout=600,
    )
    if result.returncode != 0:
        print(f"cythonize build failed:\n{result.stdout}\n{result.stderr}")
        return None
    return "wheel_compiled"


def bench_module(wheel_cls, n: int, repeats: int = 3) -> float:
    """Best-repeat ops/sec for an out-of-order push/pop storm."""
    import random

    rng = random.Random(0)
    times = [rng.randrange(0, n * 2_000) for _ in range(n)]

    class _Entry:
        __slots__ = ("time", "seq", "cancelled")

        def __init__(self, at: int, seq: int):
            self.time = at
            self.seq = seq
            self.cancelled = False

    best = 0.0
    for _ in range(repeats):
        wheel = wheel_cls()
        entries = [_Entry(at, seq) for seq, at in enumerate(times)]
        start = time.perf_counter()
        push = wheel.push
        for entry in entries:
            push(entry)
        pop = wheel.pop
        while pop() is not None:
            pass
        elapsed = time.perf_counter() - start
        best = max(best, 2 * n / elapsed)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_compiled.json")
    parser.add_argument("--quick", action="store_true", help="10x smaller storm")
    args = parser.parse_args(argv)
    n = 20_000 if args.quick else 200_000

    report = {
        "schema": 1,
        "module": "repro.runtime.wheel",
        "toolchain": None,
        "status": "skipped",
        "reason": None,
    }

    toolchain = detect_toolchain()
    if toolchain is None:
        report["reason"] = "no AOT toolchain available (tried mypyc, Cython)"
        print(f"compiled lane skipped: {report['reason']}")
        _write(args.out, report)
        return 0

    report["toolchain"] = toolchain
    sys.path.insert(0, os.path.join(REPO, "src"))
    from repro.runtime.wheel import TimerWheel as PureWheel

    with tempfile.TemporaryDirectory(prefix="repro-compiled-") as workdir:
        builder = _build_mypyc if toolchain == "mypyc" else _build_cython
        try:
            module_name = builder(workdir)
        except (OSError, subprocess.TimeoutExpired) as exc:
            module_name = None
            print(f"{toolchain} build errored: {exc}")
        if module_name is None:
            report["reason"] = f"{toolchain} could not build the extension"
            print(f"compiled lane skipped: {report['reason']}")
            _write(args.out, report)
            return 0

        sys.path.insert(0, workdir)
        try:
            compiled = importlib.import_module(module_name)
        except ImportError as exc:
            report["reason"] = f"compiled module failed to import: {exc}"
            print(f"compiled lane skipped: {report['reason']}")
            _write(args.out, report)
            return 0

        pure_ops = bench_module(PureWheel, n)
        compiled_ops = bench_module(compiled.TimerWheel, n)

    report.update(
        status="ok",
        reason=None,
        storm_ops=2 * n,
        pure_ops_per_sec=round(pure_ops, 1),
        compiled_ops_per_sec=round(compiled_ops, 1),
        speedup=round(compiled_ops / pure_ops, 2),
    )
    print(
        f"compiled lane [{toolchain}]: {pure_ops:,.0f} -> {compiled_ops:,.0f} "
        f"ops/sec ({report['speedup']}x)"
    )
    _write(args.out, report)
    return 0


def _write(path: str, report: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    raise SystemExit(main())
