"""CI smoke-job validators, promoted from workflow heredocs.

Every ``*-smoke`` job in ``.github/workflows/ci.yml`` used to carry its
validation logic as an inline ``python - <<'EOF'`` heredoc — unlinted,
untested, and invisible to grep.  This module is the same logic as
importable, unit-tested functions behind one CLI::

    python tools/ci_checks.py trace    /tmp/trace.json
    python tools/ci_checks.py analyze  /tmp/analysis
    python tools/ci_checks.py parallel
    python tools/ci_checks.py fuzz     /tmp/witnesses
    python tools/ci_checks.py cube     /tmp/cube.json \
        --expected tests/golden/cube_expected.json --cdf-out /tmp/cdfs.json
    python tools/ci_checks.py sharedmem /tmp/shm-cube.json \
        --witnesses /tmp/deadlock-witnesses
    python tools/ci_checks.py bench    BENCH_core.json --require wheel,precompiled

Each checker raises :class:`CheckFailure` with a human-readable message
on violation and returns an ``ok: ...`` summary line on success; the CLI
prints the summary or the failure and exits 0/1.  Run with
``PYTHONPATH=src`` — the ``parallel``, ``fuzz``, ``cube`` and
``sharedmem`` checkers import :mod:`repro`.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys
from typing import List, Optional


class CheckFailure(Exception):
    """A CI validation failed; the message says what and where."""


def _load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise CheckFailure(f"cannot load {path!r}: {exc}")


# ----------------------------------------------------------------------
# trace-smoke: the Chrome trace export is well-formed
# ----------------------------------------------------------------------
def check_trace(path: str) -> str:
    """Validate a ``python -m repro trace`` Chrome-trace JSON export."""
    data = _load(path)
    events = data.get("traceEvents")
    if not events:
        raise CheckFailure(f"{path}: trace has no events")
    real = [e for e in events if e.get("ph") != "M"]
    if not real:
        raise CheckFailure(f"{path}: trace has only metadata events")
    for event in real:
        if not ("ts" in event and "pid" in event and "tid" in event):
            raise CheckFailure(f"{path}: malformed event {event!r}")
    names = [e for e in events if e.get("ph") == "M" and e.get("name") == "thread_name"]
    if not names:
        raise CheckFailure(f"{path}: no thread rows")
    return f"ok: {len(real)} events, {len(names)} thread rows"


# ----------------------------------------------------------------------
# analyze-smoke: baseline leaks, JSKernel doesn't, determinism holds
# ----------------------------------------------------------------------
def check_analyze(directory: str) -> str:
    """Validate the four analyze-smoke reports in ``directory``.

    Expects ``races-baseline.json``, ``races-jskernel.json``,
    ``determinism-jskernel.json`` and ``determinism-baseline.json`` as
    written by the analyze-smoke job.
    """
    baseline = _load(os.path.join(directory, "races-baseline.json"))
    if baseline["race_count"] < 1:
        raise CheckFailure(f"baseline found no races: {baseline['race_count']}")
    patterns = {
        race["pattern"] for run in baseline["runs"] for race in run["races"]
    }
    if "use-after-free" not in patterns:
        raise CheckFailure(f"no use-after-free race in baseline; got {sorted(patterns)}")

    kernel = _load(os.path.join(directory, "races-jskernel.json"))
    if kernel["race_count"] != 0:
        raise CheckFailure(f"jskernel reported {kernel['race_count']} races (expected 0)")

    det = _load(os.path.join(directory, "determinism-jskernel.json"))
    if not det["deterministic"] or det["divergence"] != 0:
        raise CheckFailure(f"jskernel schedule not deterministic: {det}")
    if det["schedule_length"] <= 0:
        raise CheckFailure(f"jskernel audit saw an empty schedule: {det}")

    base_det = _load(os.path.join(directory, "determinism-baseline.json"))
    if base_det["divergence"] <= 0:
        raise CheckFailure(f"baseline schedule unexpectedly seed-independent: {base_det}")

    return (
        f"ok: baseline races {baseline['race_count']} | jskernel races 0 | "
        f"jskernel divergence 0 | baseline divergence {base_det['divergence']}"
    )


# ----------------------------------------------------------------------
# parallel-smoke: a sharded matrix equals the serial one
# ----------------------------------------------------------------------
PARALLEL_ATTACKS = ["cache-attack", "clock-edge", "cve-2018-5092"]
PARALLEL_DEFENSES = ["legacy-chrome", "deterfox", "jskernel"]


def check_parallel(workers: int = 2) -> str:
    """Run a matrix subset serially and sharded; they must be identical."""
    from repro.harness import run_table1

    serial = run_table1(attacks=PARALLEL_ATTACKS, defenses=PARALLEL_DEFENSES)
    sharded = run_table1(
        attacks=PARALLEL_ATTACKS, defenses=PARALLEL_DEFENSES, parallel=workers
    )
    if sharded.matrix != serial.matrix:
        raise CheckFailure("parallel matrix diverged from the serial run")
    if sharded.details != serial.details:
        raise CheckFailure("parallel details diverged from the serial run")
    if serial.errors or sharded.errors:
        raise CheckFailure(f"cell errors: {serial.errors + sharded.errors}")
    cells = len(PARALLEL_ATTACKS) * len(PARALLEL_DEFENSES)
    return f"ok: {cells} cells identical under --parallel {workers}"


# ----------------------------------------------------------------------
# fuzz-smoke: a witness exists, was minimised, and replays
# ----------------------------------------------------------------------
def check_fuzz(directory: str) -> str:
    """Validate the fuzz-smoke witness directory and replay the first."""
    from repro.explore import replay_witness
    from repro.explore.oracles import signature

    paths = sorted(glob.glob(os.path.join(directory, "*.json")))
    if not paths:
        raise CheckFailure(f"fuzz campaign produced no witness files in {directory!r}")
    witness = _load(paths[0])
    if not witness.get("signature"):
        raise CheckFailure(f"{paths[0]}: witness has no failure signature")
    if "minimized" not in witness:
        raise CheckFailure(f"{paths[0]}: witness was not minimised")
    stats = witness["minimized"]
    if stats["atoms_after"] > stats["atoms_before"]:
        raise CheckFailure(f"{paths[0]}: minimisation grew the witness: {stats}")

    first = replay_witness(witness)
    second = replay_witness(witness)
    if first != second:
        raise CheckFailure("witness replay diverged between runs")
    if signature(first) != witness["signature"]:
        raise CheckFailure(
            f"witness signature drifted: {signature(first)} != {witness['signature']}"
        )
    return (
        f"ok: {len(paths)} witnesses; {paths[0]} replays "
        f"signature {witness['signature']} twice"
    )


# ----------------------------------------------------------------------
# cube-smoke: the cube matches the committed expected-verdict fixture
# ----------------------------------------------------------------------
def check_cube(
    path: str,
    expected_path: str,
    cdf_out: Optional[str] = None,
) -> str:
    """Compare a cube JSON dump against the committed fixture.

    The fixture pins the verdict grid and the pair's verdict-divergent
    cells — the stable facts; overhead numbers vary with the runner, so
    only their *presence* is asserted.  ``cdf_out`` extracts the per-cell
    overhead CDFs into a standalone artifact file.
    """
    cube = _load(path)
    expected = _load(expected_path)

    for axis in ("attacks", "defenses", "pair", "seed"):
        if cube.get(axis) != expected.get(axis):
            raise CheckFailure(
                f"cube {axis} mismatch: {cube.get(axis)!r} != {expected.get(axis)!r}"
            )
    if cube["verdicts"] != expected["verdicts"]:
        drift = [
            f"{attack} vs {defense}: got {got}, expected "
            f"{expected['verdicts'][attack][defense]}"
            for attack, row in cube["verdicts"].items()
            for defense, got in row.items()
            if got != expected["verdicts"].get(attack, {}).get(defense)
        ]
        raise CheckFailure("verdict drift:\n  " + "\n  ".join(drift))

    want_divergent = [c for c in expected["divergent"] if c["kind"] == "verdict"]
    have_divergent = [c for c in cube["divergent"] if c["kind"] == "verdict"]
    if not want_divergent:
        raise CheckFailure(f"{expected_path}: fixture pins no verdict-divergent cells")
    if have_divergent != want_divergent:
        raise CheckFailure(
            f"divergent cells drifted: {have_divergent!r} != {want_divergent!r}"
        )
    if cube.get("errors"):
        raise CheckFailure(f"cube had cell errors: {cube['errors']}")

    missing = [
        f"{attack} vs {defense}"
        for attack, row in cube["overhead"].items()
        for defense, profile in row.items()
        if not profile.get("queue_delay", {}).get("cdf")
    ]
    if missing:
        raise CheckFailure("cells missing a queue-delay CDF: " + ", ".join(missing))

    if cdf_out:
        cdfs = {
            attack: {
                defense: {
                    family: profile[family]
                    for family in ("queue_delay", "kernel_confirm", "kernel_dispatch")
                    if family in profile
                }
                for defense, profile in row.items()
            }
            for attack, row in cube["overhead"].items()
        }
        with open(cdf_out, "w", encoding="utf-8") as handle:
            json.dump(cdfs, handle, indent=2, sort_keys=True)
            handle.write("\n")

    cells = sum(len(row) for row in cube["verdicts"].values())
    return (
        f"ok: {cells} cells match {expected_path}; "
        f"{len(have_divergent)} verdict-divergent cells pinned"
        + (f"; wrote {cdf_out}" if cdf_out else "")
    )


# ----------------------------------------------------------------------
# sharedmem-smoke: the shared-memory scenario cube + deadlock fuzz chain
# ----------------------------------------------------------------------
#: The shared-memory scenario rows the smoke cube must carry.
SHAREDMEM_ATTACKS = [
    "shm-toctou",
    "shm-toctou-locked",
    "lock-order-deadlock",
    "gc-vs-mutator",
    "counter-thread-clock",
]

#: Verdict pins per scenario (attack -> defense -> defended?).  These are
#: the stable facts the PR's experiments rest on, including the pinned
#: expected-failure: fuzzyfox (clock interposition) does NOT stop the
#: counter-thread clock, while jskernel/detbrowser (memory mediation) do.
SHAREDMEM_EXPECTED = {
    "shm-toctou": {
        "legacy-chrome": False, "fuzzyfox": False,
        "jskernel": False, "detbrowser": False,
    },
    "shm-toctou-locked": {
        "legacy-chrome": True, "fuzzyfox": True,
        "jskernel": True, "detbrowser": True,
    },
    "lock-order-deadlock": {
        "legacy-chrome": False, "fuzzyfox": False,
        "jskernel": True, "detbrowser": False,
    },
    "gc-vs-mutator": {
        "legacy-chrome": False, "fuzzyfox": False,
        "jskernel": True, "detbrowser": False,
    },
    "counter-thread-clock": {
        "legacy-chrome": False, "fuzzyfox": False,
        "jskernel": True, "detbrowser": True,
    },
}


def check_sharedmem(path: str, witness_dir: str) -> str:
    """Validate the sharedmem-smoke cube dump and deadlock fuzz output.

    ``path`` is a ``python -m repro cube --attacks <sharedmem rows>``
    JSON dump; ``witness_dir`` is the ``python -m repro fuzz --attack
    lock-order-deadlock`` output directory.  Checks: every scenario row
    is present with its pinned verdicts (including the counter-thread
    clock's fuzzyfox bypass), each cell carries a queue-delay overhead
    CDF, the deadlock detail names the cycle and the kernel veto names
    the policy, and the first deadlock witness was minimised and replays
    to a signature containing ``deadlock``.
    """
    cube = _load(path)

    verdicts = cube.get("verdicts", {})
    for attack in SHAREDMEM_ATTACKS:
        if attack not in verdicts:
            raise CheckFailure(f"{path}: cube is missing the {attack!r} row")
    drift = [
        f"{attack} vs {defense}: got {verdicts[attack].get(defense)!r}, "
        f"expected {expected}"
        for attack, row in SHAREDMEM_EXPECTED.items()
        for defense, expected in row.items()
        if verdicts[attack].get(defense) is not expected
    ]
    if drift:
        raise CheckFailure("sharedmem verdict drift:\n  " + "\n  ".join(drift))
    if cube.get("errors"):
        raise CheckFailure(f"{path}: cube had cell errors: {cube['errors']}")

    details = cube.get("details", {})
    deadlock_row = details.get("lock-order-deadlock", {})
    if not deadlock_row.get("legacy-chrome", "").startswith("deadlock:"):
        raise CheckFailure(
            "legacy-chrome deadlock detail does not name the cycle: "
            f"{deadlock_row.get('legacy-chrome')!r}"
        )
    if "lock-order policy" not in deadlock_row.get("jskernel", ""):
        raise CheckFailure(
            "jskernel deadlock detail does not name the ordering veto: "
            f"{deadlock_row.get('jskernel')!r}"
        )

    missing = [
        f"{attack} vs {defense}"
        for attack in SHAREDMEM_ATTACKS
        for defense, profile in cube.get("overhead", {}).get(attack, {}).items()
        if not profile.get("queue_delay", {}).get("cdf")
    ]
    if missing:
        raise CheckFailure(
            "sharedmem cells missing a queue-delay CDF: " + ", ".join(missing)
        )

    from repro.explore import replay_witness
    from repro.explore.oracles import signature

    paths = sorted(glob.glob(os.path.join(witness_dir, "*.json")))
    if not paths:
        raise CheckFailure(f"deadlock fuzz produced no witnesses in {witness_dir!r}")
    witness = _load(paths[0])
    if "deadlock" not in witness.get("signature", []):
        raise CheckFailure(
            f"{paths[0]}: witness signature lacks 'deadlock': "
            f"{witness.get('signature')!r}"
        )
    if "minimized" not in witness:
        raise CheckFailure(f"{paths[0]}: deadlock witness was not minimised")
    replayed = replay_witness(witness)
    if signature(replayed) != witness["signature"]:
        raise CheckFailure(
            f"deadlock witness signature drifted on replay: "
            f"{signature(replayed)} != {witness['signature']}"
        )

    cells = sum(len(SHAREDMEM_EXPECTED[a]) for a in SHAREDMEM_ATTACKS)
    return (
        f"ok: {cells} sharedmem cells pinned (counter-thread clock bypasses "
        f"fuzzyfox); deadlock witness {os.path.basename(paths[0])} replays "
        f"signature {witness['signature']}"
    )


# ----------------------------------------------------------------------
# telemetry-smoke: the JSONL run log is well-formed and balanced
# ----------------------------------------------------------------------
def check_runlog(path: str) -> str:
    """Validate a ``--runlog`` JSONL run log.

    Every line must parse as a JSON object with ``ev``/``ts``/``pid``;
    the log must open with ``run_begin`` and close with ``run_end``;
    span begin/end records must balance per ``(pid, span)``; and at
    least one per-cell outcome (``engine.cell`` point) must appear.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        raise CheckFailure(f"cannot read {path!r}: {exc}")
    if not lines:
        raise CheckFailure(f"{path}: run log is empty")

    records = []
    for number, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise CheckFailure(f"{path}:{number}: not JSON: {exc}")
        if not isinstance(record, dict):
            raise CheckFailure(f"{path}:{number}: record is not an object")
        for key in ("ev", "ts", "pid"):
            if key not in record:
                raise CheckFailure(f"{path}:{number}: record missing {key!r}")
        records.append(record)

    events = [record["ev"] for record in records]
    if "run_begin" not in events:
        raise CheckFailure(f"{path}: no run_begin record")
    if "run_end" not in events:
        raise CheckFailure(f"{path}: no run_end record (session did not close)")

    open_spans = {}
    spans = 0
    for record in records:
        if record["ev"] == "span_begin":
            open_spans[(record["pid"], record["span"])] = record.get("name")
            spans += 1
        elif record["ev"] == "span_end":
            key = (record["pid"], record["span"])
            if key not in open_spans:
                raise CheckFailure(f"{path}: span_end without begin: {record}")
            if "dur_s" not in record:
                raise CheckFailure(f"{path}: span_end without dur_s: {record}")
            del open_spans[key]
    if open_spans:
        dangling = sorted(f"{name} pid={pid} span={span}" for (pid, span), name in open_spans.items())
        raise CheckFailure(f"{path}: unclosed spans: " + ", ".join(dangling))

    cell_points = sum(
        1
        for record in records
        if record["ev"] == "point" and record.get("name") == "engine.cell"
    )
    if cell_points == 0:
        raise CheckFailure(f"{path}: no engine.cell outcome records")

    pids = {record["pid"] for record in records}
    return (
        f"ok: {len(records)} records, {spans} spans balanced, "
        f"{cell_points} cell outcomes across {len(pids)} processes"
    )


# ----------------------------------------------------------------------
# telemetry-smoke: the merged snapshot and Prometheus export make sense
# ----------------------------------------------------------------------
def check_telemetry(json_path: str, prom_path: Optional[str] = None) -> str:
    """Validate a ``--telemetry-out`` JSON report (+ Prometheus sibling).

    Schema checks: version/command/engine/cache/metrics/run sections;
    the engine accounting must balance (``cells == computed + cached``);
    histogram snapshots must carry the explicit ``overflow`` key.  When
    ``prom_path`` is given, every non-comment line must match the
    ``name{labels} value`` exposition grammar and the ``repro_engine_*``
    series must be present.
    """
    report = _load(json_path)
    for section in ("version", "command", "engine", "cache", "metrics", "run"):
        if section not in report:
            raise CheckFailure(f"{json_path}: missing section {section!r}")
    engine = report["engine"]
    for key in ("cells", "computed", "cached", "errors"):
        if key not in engine:
            raise CheckFailure(f"{json_path}: engine section missing {key!r}")
    if engine["cells"] != engine["computed"] + engine["cached"]:
        raise CheckFailure(
            f"{json_path}: engine accounting does not balance: "
            f"cells={engine['cells']} != computed={engine['computed']} "
            f"+ cached={engine['cached']}"
        )
    metrics = report["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if section not in metrics:
            raise CheckFailure(f"{json_path}: metrics section missing {section!r}")
    for name, data in metrics["histograms"].items():
        if len(data.get("counts", [])) != len(data.get("bounds", [])) + 1:
            raise CheckFailure(
                f"{json_path}: histogram {name!r} counts/bounds length mismatch"
            )
    for name, data in metrics.get("sketches", {}).items():
        if data["count"] < 0 or data["count"] != (
            data["zero"]
            + sum(weight for _i, weight, _s in data["pos"])
            + sum(weight for _i, weight, _s in data["neg"])
        ):
            raise CheckFailure(f"{json_path}: sketch {name!r} weights do not sum to count")

    summary = (
        f"ok: {engine['cells']} cells ({engine['computed']} computed, "
        f"{engine['cached']} cached), {len(metrics['histograms'])} histograms, "
        f"{len(metrics.get('sketches', {}))} sketches"
    )
    if not prom_path:
        return summary

    try:
        with open(prom_path, "r", encoding="utf-8") as handle:
            prom_lines = handle.read().splitlines()
    except OSError as exc:
        raise CheckFailure(f"cannot read {prom_path!r}: {exc}")
    sample_re = re.compile(
        r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
        r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9eE.+NaInf-]+$'
    )
    samples = 0
    for number, line in enumerate(prom_lines, start=1):
        if not line or line.startswith("#"):
            continue
        if not sample_re.match(line):
            raise CheckFailure(f"{prom_path}:{number}: bad exposition line: {line!r}")
        samples += 1
    if samples == 0:
        raise CheckFailure(f"{prom_path}: no samples")
    if not any(line.startswith("repro_engine_cells") for line in prom_lines):
        raise CheckFailure(f"{prom_path}: repro_engine_cells series missing")
    return summary + f"; {samples} Prometheus samples"


# ----------------------------------------------------------------------
# serve-smoke: a streamed job's frame log is well-formed and complete
# ----------------------------------------------------------------------
def check_serve(path: str) -> str:
    """Validate a captured ``repro serve`` frame stream (JSONL).

    The file is what ``python -m repro serve --submit ... --out FILE``
    writes: every frame the server streamed for one job.  Checks: every
    line is a JSON object with ``type`` and ``ts``; the stream opens
    with ``accepted`` and ends with ``done``; ``result`` frames carry
    monotonically increasing ``seq``; at least one ``telemetry`` frame
    appears with the progress schema (``done``/``errors``/``cached``/
    ``computed``/``quantiles``) and non-decreasing ``done`` counts; and
    the final report's accounting balances (``pages + errors ==
    computed + cache_hits`` for population jobs).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line.strip()]
    except OSError as exc:
        raise CheckFailure(f"cannot read {path!r}: {exc}")
    if not lines:
        raise CheckFailure(f"{path}: no frames captured")

    frames = []
    for number, line in enumerate(lines, start=1):
        try:
            frame = json.loads(line)
        except ValueError as exc:
            raise CheckFailure(f"{path}:{number}: not JSON: {exc}")
        if not isinstance(frame, dict):
            raise CheckFailure(f"{path}:{number}: frame is not an object")
        for key in ("type", "ts"):
            if key not in frame:
                raise CheckFailure(f"{path}:{number}: frame missing {key!r}")
        frames.append(frame)

    first, last = frames[0], frames[-1]
    if first["type"] != "accepted" or not first.get("job"):
        raise CheckFailure(f"{path}: stream does not open with an accepted frame: {first}")
    if last["type"] != "done":
        raise CheckFailure(f"{path}: stream does not end with a done frame: {last['type']}")
    job = first["job"]
    for number, frame in enumerate(frames[1:], start=2):
        if frame.get("job") != job:
            raise CheckFailure(f"{path}:{number}: frame for wrong job: {frame.get('job')!r}")

    previous_seq = -1
    results = 0
    for frame in frames:
        if frame["type"] != "result":
            continue
        results += 1
        seq = frame.get("seq")
        if not isinstance(seq, int) or seq <= previous_seq:
            raise CheckFailure(
                f"{path}: result seq not monotonically increasing: "
                f"{seq!r} after {previous_seq}"
            )
        previous_seq = seq

    telemetry = [frame for frame in frames if frame["type"] == "telemetry"]
    if not telemetry:
        raise CheckFailure(f"{path}: no telemetry frames in the stream")
    previous_done = 0
    for frame in telemetry:
        for key in ("done", "errors", "cached", "computed", "quantiles"):
            if key not in frame:
                raise CheckFailure(f"{path}: telemetry frame missing {key!r}: {frame}")
        if not isinstance(frame["quantiles"], dict):
            raise CheckFailure(f"{path}: telemetry quantiles is not an object")
        if frame["done"] < previous_done:
            raise CheckFailure(
                f"{path}: telemetry done went backwards: "
                f"{frame['done']} after {previous_done}"
            )
        previous_done = frame["done"]

    report = last.get("report")
    if not isinstance(report, dict):
        raise CheckFailure(f"{path}: done frame has no report object")
    if "pages" in report:  # population jobs: accounting must balance
        measured = report["pages"] + len(report.get("errors", [])) \
            + report.get("error_overflow", 0)
        executed = report.get("computed", 0) + report.get("cache_hits", 0)
        if measured != executed:
            raise CheckFailure(
                f"{path}: report accounting does not balance: "
                f"{measured} outcomes != {executed} executed cells"
            )

    return (
        f"ok: {len(frames)} frames for {job} ({results} results, "
        f"{len(telemetry)} telemetry snapshots, final done={previous_done})"
    )


# ----------------------------------------------------------------------
# bench-core: BENCH_core.json schema + internal consistency
# ----------------------------------------------------------------------
#: Schema version ``python -m repro bench core`` writes (bumped when the
#: report shape changes; 2 added the wheel/precompiled cases).
BENCH_SCHEMA = 2

_BENCH_STAT_KEYS = (
    "events",
    "repeats",
    "events_per_sec",
    "p50_ns_per_event",
    "p95_ns_per_event",
    "alloc_blocks_per_event",
)


def check_bench(path: str, require: Optional[List[str]] = None) -> str:
    """Validate a ``BENCH_core.json`` report (schema 2).

    Checks: the schema version matches; every benchmark entry carries
    the full stat row with sane values (positive event counts and
    throughput, p95 ≥ p50); every ``*-reference`` twin has a live
    counterpart that ran the same event count; every published speedup
    recomputes from its benchmark pair (within rounding); and any
    ``require``d benchmark names are present — CI passes the cases its
    acceptance criteria gate on.
    """
    report = _load(path)
    schema = report.get("schema")
    if schema != BENCH_SCHEMA:
        raise CheckFailure(f"{path}: schema {schema!r}, expected {BENCH_SCHEMA}")
    scale = report.get("scale")
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
        raise CheckFailure(f"{path}: scale must be a positive number, got {scale!r}")
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        raise CheckFailure(f"{path}: no benchmarks in report")
    for name, stats in benchmarks.items():
        if not isinstance(stats, dict):
            raise CheckFailure(f"{path}: benchmark {name!r} is not an object")
        for key in _BENCH_STAT_KEYS:
            value = stats.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise CheckFailure(
                    f"{path}: benchmark {name!r} missing numeric {key!r}"
                )
        if stats["events"] <= 0 or stats["repeats"] < 1 or stats["events_per_sec"] <= 0:
            raise CheckFailure(f"{path}: benchmark {name!r} has non-positive counters")
        if stats["p95_ns_per_event"] < stats["p50_ns_per_event"]:
            raise CheckFailure(f"{path}: benchmark {name!r} has p95 < p50")
    for name, stats in benchmarks.items():
        if not name.endswith("-reference"):
            continue
        base = name[: -len("-reference")]
        if base not in benchmarks:
            raise CheckFailure(f"{path}: {name!r} has no live counterpart")
        if stats["events"] != benchmarks[base]["events"]:
            raise CheckFailure(
                f"{path}: {name!r} and {base!r} ran different event counts"
            )
    speedups = report.get("speedups_vs_seed_reference")
    if not isinstance(speedups, dict):
        raise CheckFailure(f"{path}: missing speedups_vs_seed_reference")
    for name, ratio in speedups.items():
        live = benchmarks.get(name)
        ref = benchmarks.get(f"{name}-reference")
        if live is None or ref is None:
            raise CheckFailure(f"{path}: speedup {name!r} lacks its benchmark pair")
        if not isinstance(ratio, (int, float)) or isinstance(ratio, bool) or ratio <= 0:
            raise CheckFailure(f"{path}: speedup {name!r} is not a positive number")
        actual = live["events_per_sec"] / ref["events_per_sec"]
        if abs(actual - ratio) > 0.011:  # ratios are rounded to 2 decimals
            raise CheckFailure(
                f"{path}: speedup {name!r} is {ratio}, recomputes to {actual:.2f}"
            )
    traced = report.get("traced_overhead")
    if traced is not None:
        for key in ("untraced_events_per_sec", "traced_events_per_sec", "overhead_ratio"):
            value = traced.get(key) if isinstance(traced, dict) else None
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
                raise CheckFailure(f"{path}: traced_overhead missing numeric {key!r}")
    missing = [name for name in (require or []) if name not in benchmarks]
    if missing:
        raise CheckFailure(
            f"{path}: required benchmarks missing: {', '.join(missing)}"
        )
    return (
        f"ok: {len(benchmarks)} benchmarks at scale {scale}, "
        f"{len(speedups)} seed-reference speedups"
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ci_checks", description="CI smoke-job validators"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser("trace", help="validate a Chrome trace export")
    p_trace.add_argument("path", help="trace JSON file")

    p_analyze = sub.add_parser("analyze", help="validate the analyze-smoke reports")
    p_analyze.add_argument("directory", help="directory holding the four reports")

    p_parallel = sub.add_parser("parallel", help="sharded matrix equals serial")
    p_parallel.add_argument("--workers", type=int, default=2)

    p_fuzz = sub.add_parser("fuzz", help="validate fuzz witnesses and replay one")
    p_fuzz.add_argument("directory", help="witness directory")

    p_cube = sub.add_parser("cube", help="compare a cube dump against the fixture")
    p_cube.add_argument("path", help="cube JSON dump")
    p_cube.add_argument("--expected", required=True, help="committed fixture JSON")
    p_cube.add_argument("--cdf-out", default=None, help="write overhead CDFs here")

    p_runlog = sub.add_parser("runlog", help="validate a JSONL run log")
    p_runlog.add_argument("path", help="run-log JSONL file (--runlog output)")

    p_telemetry = sub.add_parser(
        "telemetry", help="validate a telemetry JSON report (+ Prometheus export)"
    )
    p_telemetry.add_argument("path", help="telemetry JSON report (--telemetry-out)")
    p_telemetry.add_argument(
        "--prom", default=None, help="Prometheus text export to validate too"
    )

    p_serve = sub.add_parser(
        "serve", help="validate a captured serve frame stream (JSONL)"
    )
    p_serve.add_argument("path", help="frame JSONL file (serve --submit --out)")

    p_sharedmem = sub.add_parser(
        "sharedmem", help="validate the sharedmem cube + deadlock fuzz chain"
    )
    p_sharedmem.add_argument("path", help="sharedmem cube JSON dump")
    p_sharedmem.add_argument(
        "--witnesses", required=True, help="deadlock fuzz witness directory"
    )

    p_bench = sub.add_parser(
        "bench", help="validate a BENCH_core.json report (schema + consistency)"
    )
    p_bench.add_argument("path", help="BENCH_core.json report")
    p_bench.add_argument(
        "--require",
        default="",
        help="comma-separated benchmark names that must be present",
    )

    opts = parser.parse_args(argv)
    try:
        if opts.command == "trace":
            summary = check_trace(opts.path)
        elif opts.command == "analyze":
            summary = check_analyze(opts.directory)
        elif opts.command == "parallel":
            summary = check_parallel(opts.workers)
        elif opts.command == "fuzz":
            summary = check_fuzz(opts.directory)
        elif opts.command == "runlog":
            summary = check_runlog(opts.path)
        elif opts.command == "telemetry":
            summary = check_telemetry(opts.path, prom_path=opts.prom)
        elif opts.command == "serve":
            summary = check_serve(opts.path)
        elif opts.command == "sharedmem":
            summary = check_sharedmem(opts.path, opts.witnesses)
        elif opts.command == "bench":
            required = [name for name in opts.require.split(",") if name]
            summary = check_bench(opts.path, require=required or None)
        else:
            summary = check_cube(opts.path, opts.expected, cdf_out=opts.cdf_out)
    except CheckFailure as exc:
        print(f"check failed: {exc}", file=sys.stderr)
        return 1
    print(summary)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
