"""Web concurrency attacks: every row of the paper's Table I."""

from .base import Attack, AttackResult, CveAttack, MeasurementTimeout, TimingAttack
from .expected import cve_rows, expected_matrix, expected_row, timing_rows
from .registry import TABLE1_ATTACKS, all_attack_names, attack_names, create

__all__ = [
    "Attack",
    "AttackResult",
    "CveAttack",
    "MeasurementTimeout",
    "TABLE1_ATTACKS",
    "TimingAttack",
    "all_attack_names",
    "attack_names",
    "create",
    "cve_rows",
    "expected_matrix",
    "expected_row",
    "timing_rows",
]
