"""Attack framework: Table I rows as runnable experiments.

Two attack families:

* :class:`TimingAttack` — measures something per trial for each of two
  secrets; succeeds when the measurements distinguish the secrets
  (:mod:`repro.analysis.distinguish`).
* :class:`CveAttack` — drives a vulnerability's triggering sequence;
  succeeds when the vulnerable code path is reached (a
  :class:`~repro.errors.BrowserCrash` fires or cross-origin data leaks).

Each trial runs in a **fresh browser** built through the defense registry
with the vulnerable legacy profile underneath, mirroring the paper's
setup (vulnerable build + layered defense).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..analysis.distinguish import best_threshold_accuracy, distinguishable
from ..defenses import make_browser
from ..errors import BrowserCrash, ReproError, SecurityError
from ..runtime.browser import Browser
from ..runtime.page import Page
from ..runtime.rng import hash_seed
from ..runtime.simtime import ms


class MeasurementTimeout(ReproError):
    """The attack script did not produce a measurement in time."""


class AttackResult:
    """Outcome of one (attack, defense) cell."""

    def __init__(
        self,
        attack: str,
        defense: str,
        success: bool,
        mode: str,
        detail: str = "",
        accuracy: Optional[float] = None,
        samples: Optional[Dict[str, List[float]]] = None,
    ):
        self.attack = attack
        self.defense = defense
        self.success = success
        self.mode = mode
        self.detail = detail
        self.accuracy = accuracy
        self.samples = samples or {}

    @property
    def defended(self) -> bool:
        """True when the defense prevented the attack."""
        return not self.success

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        verdict = "VULNERABLE" if self.success else "defended"
        return f"<AttackResult {self.attack} vs {self.defense}: {verdict}>"


def run_until_key(browser: Browser, box: dict, key: str, timeout_ms: float = 3_000) -> Any:
    """Advance the simulation until ``box[key]`` appears (or time out)."""
    deadline = browser.sim.dispatch_time + ms(timeout_ms)
    while key not in box:
        if browser.sim.dispatch_time >= deadline:
            raise MeasurementTimeout(
                f"no {key!r} within {timeout_ms} ms of virtual time"
            )
        if not browser.sim.step():
            if key in box:
                break
            raise MeasurementTimeout(f"simulation drained without {key!r}")
    return box[key]


class Attack:
    """Base attack: a named Table I row."""

    #: Registry name (kebab-case).
    name = "attack"
    #: Human-readable Table I row label.
    row = ""
    #: Table I section: "setTimeout", "raf", or "cve".
    group = ""

    def run(self, defense_name: str, seed: int = 0) -> AttackResult:
        """Evaluate this attack against a defense."""
        raise NotImplementedError


class TimingAttack(Attack):
    """Distinguish two secrets from repeated timing measurements."""

    #: Labels for the two secrets being distinguished.
    secret_a = "a"
    secret_b = "b"
    #: Trials per secret.
    trials = 8
    #: Virtual-time budget per trial.
    timeout_ms = 3_000
    #: Page the attacker controls.
    page_url = "https://attacker.example/"

    def setup(self, browser: Browser, page: Page, secret: str) -> None:
        """Host resources / prime state for one trial (optional)."""

    def measure(self, browser: Browser, page: Page, secret: str) -> float:
        """Run one trial and return the attacker's measurement."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def run_trial(self, defense_name: str, secret: str, seed: int) -> float:
        """One isolated measurement in a fresh browser."""
        browser = make_browser(defense_name, seed=seed)
        page = browser.open_page(self.page_url)
        self.setup(browser, page, secret)
        return self.measure(browser, page, secret)

    def run(self, defense_name: str, seed: int = 0) -> AttackResult:
        """The Table I cell: distinguishability over paired trials.

        ``measure`` may return a float or a dict of named measurement
        components (an attacker uses every channel available); the attack
        succeeds if ANY component distinguishes the secrets.
        """
        per_component: Dict[str, Dict[str, List[float]]] = {}
        for trial in range(self.trials):
            for secret in (self.secret_a, self.secret_b):
                trial_seed = hash_seed(seed, f"{self.name}:{defense_name}:{secret}:{trial}")
                measurement = self.run_trial(defense_name, secret, trial_seed)
                if not isinstance(measurement, dict):
                    measurement = {"value": float(measurement)}
                for component, value in measurement.items():
                    bucket = per_component.setdefault(
                        component, {self.secret_a: [], self.secret_b: []}
                    )
                    bucket[secret].append(float(value))

        success = False
        accuracy = 0.5
        winning = ""
        for component, samples in per_component.items():
            comp_success = distinguishable(samples[self.secret_a], samples[self.secret_b])
            comp_accuracy = best_threshold_accuracy(
                samples[self.secret_a], samples[self.secret_b]
            )
            if comp_accuracy > accuracy:
                accuracy = comp_accuracy
            if comp_success and not success:
                success = True
                winning = component
        flat_samples = per_component.get("value") or next(iter(per_component.values()))
        detail = f"accuracy={accuracy:.2f}"
        if winning and winning != "value":
            detail += f" via {winning}"
        return AttackResult(
            self.name,
            defense_name,
            success,
            mode="timing",
            detail=detail,
            accuracy=accuracy,
            samples=flat_samples,
        )


class CveAttack(Attack):
    """Trigger a concrete vulnerability's invocation sequence."""

    group = "cve"
    #: The CVE identifier this scenario targets.
    cve = ""
    #: Virtual-time budget for the scenario.
    timeout_ms = 3_000
    page_url = "https://attacker.example/"

    def setup(self, browser: Browser, page: Page) -> None:
        """Host resources for the scenario (optional)."""

    def attempt(self, browser: Browser, page: Page) -> bool:
        """Drive the trigger; return True if the secret/leak was obtained.

        Memory-safety triggers may instead raise a
        :class:`~repro.errors.BrowserCrash`, which also counts as success.
        """
        raise NotImplementedError

    def run(self, defense_name: str, seed: int = 0) -> AttackResult:
        """The Table I cell: did the vulnerability trigger?"""
        browser = make_browser(defense_name, seed=hash_seed(seed, self.name))
        page = browser.open_page(self.page_url)
        self.setup(browser, page)
        try:
            triggered = self.attempt(browser, page)
            detail = "leak obtained" if triggered else "no trigger"
        except BrowserCrash as crash:
            triggered = True
            detail = f"crash: {crash} ({crash.cve or self.cve})"
        except SecurityError as blocked:
            triggered = False
            detail = f"blocked: {blocked}"
        except MeasurementTimeout as timeout:
            triggered = False
            detail = f"timeout: {timeout}"
        return AttackResult(self.name, defense_name, triggered, mode="cve", detail=detail)
