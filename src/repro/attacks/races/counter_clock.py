"""Counter-thread clock (Hacky Racers): a timer with no clock API.

The sharedmem sibling of the SAB counter timer, and the paper-extending
finding this PR pins: a helper worker spins ``Atomics.add`` on a shared
cell and the main thread brackets a secret operation with two loads.  No
``performance.now``, no ``Date``, no setTimeout edge — *nothing a
clock-fuzzing defense interposes on* — so Fuzzyfox and Tor, which clamp
or fuzz the explicit clocks and leave shared-memory accesses native, are
demonstrably bypassed (``EXPECTED_BYPASSES`` in
:mod:`repro.attacks.expected`, pinned by test).

The defenses that mediate the *memory* rather than the clocks do hold:
JSKernel paces every load onto its message-slot grid (the counter value
is a function of when the load lands, so grid-aligned loads read
grid-resolution time), and DetBrowser's metronome answers loads from the
reader's deterministic clock.
"""

from __future__ import annotations

from ..base import TimingAttack, run_until_key

#: Helper-worker increment rate (counts per millisecond).
COUNTER_RATE = 1_000.0

#: Sub-grid secrets: distinguishable at native resolution, identical on
#: a 1 ms kernel grid.
SECRETS_MS = {"short": 0.22, "long": 0.67}


class CounterThreadClockAttack(TimingAttack):
    """Time a sub-millisecond operation with a worker spin counter."""

    name = "counter-thread-clock"
    row = "Counter-thread clock, Hacky Racers (extension)"
    group = "race"
    secret_a = "short"
    secret_b = "long"

    def measure(self, browser, page, secret: str) -> float:
        box: dict = {}
        duration_ms = SECRETS_MS[secret]

        def attack(scope) -> None:
            clock = scope.sharedmem.CounterClock("hacky")

            def worker_main(ws) -> None:
                clock.start(COUNTER_RATE)
                ws.postMessage("spinning")

            worker = scope.Worker(worker_main)

            def on_spinning(_event) -> None:
                before = clock.read()
                scope.busy_work(duration_ms)
                after = clock.read()
                box["measurement"] = float(after - before)
                worker.terminate()

            worker.onmessage = on_spinning

        page.run_script(attack)
        return run_until_key(browser, box, "measurement", self.timeout_ms)
