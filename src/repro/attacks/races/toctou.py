"""Time-of-check-to-time-of-use on a SharedDict: the double spend.

Two withdrawal workers share an account dict.  Each checks the balance
covers its withdrawal, "validates" for a few hundred microseconds, then
debits in a *later task* — the check-act gap every TOCTOU needs.  When
both checks land before either debit, both withdrawals pass a check the
other invalidates and the balance goes negative.

The locked variant wraps check+debit in one :class:`SharedLock` critical
section.  It never overdrafts — and, because lock release→acquire edges
order the two critical sections, the lock-set-aware race detector must
produce **zero** race reports for it (pinned by test), while the racy
variant's unordered cross-worker write pairs are flagged.

The cube row documents a scoping fact worth stating outright: kernel
mediation paces and polices accesses but provides no *atomicity*, so the
racy variant stays exploitable under every browser defense — the fix is
the locking discipline, not the browser.
"""

from __future__ import annotations

from ...defenses import make_browser
from ...errors import SecurityError
from ...runtime.rng import hash_seed
from ..base import Attack, AttackResult, run_until_key

#: Opening balance and per-worker withdrawal: one withdrawal fits, two
#: overdraft.
OPENING_BALANCE = 100
WITHDRAWAL = 70

#: Simulated server-side validation between check and debit.
VALIDATION_MS = 0.4


class SharedDictToctouAttack(Attack):
    """Race two check-then-act withdrawals on a shared account."""

    name = "shm-toctou"
    row = "SharedDict TOCTOU double spend (extension)"
    group = "race"
    #: Whether withdrawals take the account lock (the fixed variant).
    locked = False
    timeout_ms = 3_000
    page_url = "https://attacker.example/"

    def run(self, defense_name: str, seed: int = 0) -> AttackResult:
        browser = make_browser(defense_name, seed=hash_seed(seed, self.name))
        page = browser.open_page(self.page_url)
        box: dict = {}
        locked = self.locked

        def attack(scope) -> None:
            account = scope.sharedmem.Dict("account")
            account.set("balance", OPENING_BALANCE)
            lock = scope.sharedmem.Lock("account")

            def withdraw_worker(ws) -> None:
                def debit() -> None:
                    account.set("balance", account.get("balance") - WITHDRAWAL)

                def attempt() -> None:
                    if account.get("balance") >= WITHDRAWAL:
                        ws.busy_work(VALIDATION_MS)
                        # the act lands in a later task: the TOCTOU gap
                        ws.setTimeout(debit, 1)

                def attempt_locked() -> None:
                    def critical() -> None:
                        if account.get("balance") >= WITHDRAWAL:
                            ws.busy_work(VALIDATION_MS)
                            debit()
                        lock.release()

                    lock.acquire(critical)

                if locked:
                    attempt_locked()
                else:
                    attempt()

            scope.Worker(withdraw_worker)
            scope.Worker(withdraw_worker)

            def report() -> None:
                if locked:
                    # a lock-disciplined program locks *all* accesses,
                    # the audit read included
                    def critical() -> None:
                        box.setdefault("balance", account.get("balance"))
                        lock.release()

                    lock.acquire(critical)
                else:
                    box.setdefault("balance", account.get("balance"))

            scope.setTimeout(report, 30)

        try:
            page.run_script(attack)
            balance = run_until_key(browser, box, "balance", self.timeout_ms)
        except SecurityError as blocked:
            return AttackResult(
                self.name, defense_name, False, mode="race",
                detail=f"blocked: {blocked}",
            )
        overdraft = balance < 0
        detail = (
            f"overdraft: balance={balance}" if overdraft
            else f"no overdraft: balance={balance}"
        )
        return AttackResult(
            self.name, defense_name, overdraft, mode="race", detail=detail
        )


class SharedDictToctouLockedAttack(SharedDictToctouAttack):
    """The same withdrawals under the account lock: the fix."""

    name = "shm-toctou-locked"
    row = "SharedDict TOCTOU, lock-disciplined (extension)"
    locked = True
