"""ABBA lock-ordering deadlock across two workers.

Worker A takes ``L1`` then, a couple of milliseconds later (a separate
task — run-to-completion means a single task could never interleave),
asks for ``L2``.  Worker B does the mirror image.  On a legacy browser
both first acquisitions land before either second one, so each worker
blocks on the lock the other holds: a wait-for cycle the heap records as
a :data:`SharedHeap.deadlocks` entry the instant it forms.  The parked
continuations never run and the simulation simply drains — which is why
the scenario terminates instead of hanging the harness.

JSKernel's sharedmem policy vetoes the cycle *by construction*: lock
acquisitions are kernel API calls checked against the canonical
(allocation-order) lock order, and worker B's out-of-order request for
``L1`` while holding ``L2`` raises ``SecurityError`` before it can ever
block.  Clock-only defenses (Fuzzyfox, DetBrowser) do not police locks
and stay vulnerable — availability is outside their threat model.

This scenario is also the fuzz walkthrough's target: the ``deadlock``
oracle flags any run whose trace contains a ``sharedmem.deadlock``
instant, ddmin minimises the witness's perturbation spec, and replay
reproduces the identical cycle string.
"""

from __future__ import annotations

from ...defenses import make_browser
from ...errors import SecurityError
from ...runtime.rng import hash_seed
from ...runtime.simtime import ms
from ..base import Attack, AttackResult

#: Gap between a worker's first and second acquisition (separate tasks).
SECOND_ACQUIRE_DELAY_MS = 2.0


class LockOrderDeadlockAttack(Attack):
    """Force the ABBA wait-for cycle; succeed when it forms."""

    name = "lock-order-deadlock"
    row = "Lock-ordering deadlock (extension)"
    group = "race"
    timeout_ms = 3_000
    page_url = "https://attacker.example/"

    def run(self, defense_name: str, seed: int = 0) -> AttackResult:
        browser = make_browser(defense_name, seed=hash_seed(seed, self.name))
        page = browser.open_page(self.page_url)

        def attack(scope) -> None:
            lock1 = scope.sharedmem.Lock("L1")
            lock2 = scope.sharedmem.Lock("L2")

            def make_worker(first, second):
                def worker_main(ws) -> None:
                    def take_second() -> None:
                        second.acquire(
                            lambda: (second.release(), first.release())
                        )

                    first.acquire(
                        lambda: ws.setTimeout(take_second, SECOND_ACQUIRE_DELAY_MS)
                    )

                return worker_main

            scope.Worker(make_worker(lock1, lock2))
            scope.Worker(make_worker(lock2, lock1))

        blocked = ""
        try:
            page.run_script(attack)
            browser.run(until=ms(self.timeout_ms))
        except SecurityError as veto:
            blocked = str(veto)

        deadlocks = browser.sharedmem.deadlocks
        if deadlocks:
            detail = f"deadlock: {deadlocks[0]['cycle']}"
            return AttackResult(self.name, defense_name, True, mode="race", detail=detail)
        detail = f"blocked: {blocked}" if blocked else "no deadlock"
        return AttackResult(self.name, defense_name, False, mode="race", detail=detail)
