"""GC-vs-mutator: use-after-collect under the buggy shared collector.

The legacy shared GC (``shm_gc_thread_roots``) marks from the
*triggering* agent's roots only and sweeps asynchronously without
pausing anyone.  The scenario exploits exactly that window: a worker
adopts (roots) the main thread's session dict, main drops its own root
and triggers a collection — which, scanning only main's roots, condemns
a dict another agent still legitimately holds — and the worker's next
read lands after the deferred sweep, raising
:class:`~repro.errors.UseAfterCollectError` (a browser crash).

JSKernel defends structurally: its sharedmem policy ``guards_gc``, so
the kernel-mediated collection entry point always takes the safe
stop-the-world path (every agent's roots scanned, mutators paused) and
the buggy native fast path is never reached.  Clock-only defenses leave
the memory-safety bug fully exploitable, mirroring how the CVE rows
split in Table I.
"""

from __future__ import annotations

from ..base import CveAttack, run_until_key

#: Worker's read lands this long after it adopts — past the unsafe
#: sweep's deferral window.
LATE_READ_DELAY_MS = 2.0


class GcVsMutatorAttack(CveAttack):
    """Trigger the thread-local-roots collector against a live mutator."""

    name = "gc-vs-mutator"
    row = "Shared GC vs mutator use-after-collect (extension)"
    group = "race"
    cve = "shm_gc_thread_roots"

    def attempt(self, browser, page) -> bool:
        box: dict = {}

        def attack(scope) -> None:
            session = scope.sharedmem.Dict("session")
            session.set("token", "secret")

            def worker_main(ws) -> None:
                ws.sharedmem.adopt(session)

                def late_read() -> None:
                    box["value"] = session.get("token")

                ws.setTimeout(late_read, LATE_READ_DELAY_MS)
                ws.postMessage("adopted")

            worker = scope.Worker(worker_main)

            def on_adopted(_event) -> None:
                # main no longer needs the dict: drop the root and collect
                scope.sharedmem.drop(session)
                scope.sharedmem.collect(reason="idle")

            worker.onmessage = on_adopted

        page.run_script(attack)
        # a vulnerable collector raises UseAfterCollectError out of here
        value = run_until_key(browser, box, "value", self.timeout_ms)
        return value != "secret"
