"""Shared-memory race scenarios (extension rows).

Four hazards the shared-object runtime makes expressible, each an
end-to-end scenario in the defense × attack cube:

* :class:`SharedDictToctouAttack` / :class:`SharedDictToctouLockedAttack`
  — check-then-act double spend on a shared dict, racy and lock-fixed;
* :class:`LockOrderDeadlockAttack` — the ABBA lock-ordering deadlock;
* :class:`GcVsMutatorAttack` — use-after-collect under the buggy
  thread-local-roots collector;
* :class:`CounterThreadClockAttack` — the Hacky-Racers counter-thread
  timer (no clock API touched at all).
"""

from .counter_clock import CounterThreadClockAttack
from .deadlock import LockOrderDeadlockAttack
from .gc_mutator import GcVsMutatorAttack
from .toctou import SharedDictToctouAttack, SharedDictToctouLockedAttack

__all__ = [
    "CounterThreadClockAttack",
    "GcVsMutatorAttack",
    "LockOrderDeadlockAttack",
    "SharedDictToctouAttack",
    "SharedDictToctouLockedAttack",
]
