"""Attack registry: the 22 rows of Table I, in row order."""

from __future__ import annotations

from typing import Dict, List, Type

from .base import Attack
from .cves import (
    Cve2010_4576,
    Cve2011_1190,
    Cve2013_1714,
    Cve2013_5602,
    Cve2013_6646,
    Cve2014_1487,
    Cve2014_1488,
    Cve2014_1719,
    Cve2014_3194,
    Cve2015_7215,
    Cve2017_7843,
    Cve2018_5092,
)
from .races import (
    CounterThreadClockAttack,
    GcVsMutatorAttack,
    LockOrderDeadlockAttack,
    SharedDictToctouAttack,
    SharedDictToctouLockedAttack,
)
from .timing.sab_timer import SabTimerAttack
from .timing import (
    CacheAttack,
    ClockEdgeAttack,
    CssAnimationAttack,
    FloatingPointAttack,
    HistorySniffingAttack,
    ImageDecodingAttack,
    LoopscanAttack,
    ScriptParsingAttack,
    SvgFilteringAttack,
    VideoWebVttAttack,
)

#: Table I rows in paper order.
TABLE1_ATTACKS: List[Type[Attack]] = [
    # setTimeout as the implicit clock
    CacheAttack,
    ScriptParsingAttack,
    ImageDecodingAttack,
    ClockEdgeAttack,
    # requestAnimationFrame / animation as the implicit clock
    HistorySniffingAttack,
    SvgFilteringAttack,
    FloatingPointAttack,
    LoopscanAttack,
    CssAnimationAttack,
    VideoWebVttAttack,
    # other web concurrency attacks (CVEs)
    Cve2018_5092,
    Cve2017_7843,
    Cve2015_7215,
    Cve2014_3194,
    Cve2014_1719,
    Cve2014_1488,
    Cve2014_1487,
    Cve2013_6646,
    Cve2013_5602,
    Cve2013_1714,
    Cve2011_1190,
    Cve2010_4576,
]

#: Extension attacks beyond Table I (see each module's docstring).
EXTENSION_ATTACKS: List[Type[Attack]] = [
    SabTimerAttack,
    SharedDictToctouAttack,
    SharedDictToctouLockedAttack,
    LockOrderDeadlockAttack,
    GcVsMutatorAttack,
    CounterThreadClockAttack,
]

_by_name: Dict[str, Type[Attack]] = {
    cls.name: cls for cls in TABLE1_ATTACKS + EXTENSION_ATTACKS
}


def attack_names() -> List[str]:
    """All registered attack names, in Table I row order."""
    return [cls.name for cls in TABLE1_ATTACKS]


def all_attack_names() -> List[str]:
    """Every creatable attack name: Table I rows, then extensions."""
    return [cls.name for cls in TABLE1_ATTACKS + EXTENSION_ATTACKS]


def create(name: str) -> Attack:
    """Instantiate an attack by name."""
    try:
        return _by_name[name]()
    except KeyError:
        raise KeyError(f"unknown attack {name!r}; have {attack_names()}")
