"""Timing attacks: the implicit-clock rows of Table I."""

from .cache import CacheAttack
from .clock_edge import ClockEdgeAttack
from .css_animation import CssAnimationAttack
from .floating_point import FloatingPointAttack
from .history_sniffing import HistorySniffingAttack
from .image_decoding import ImageDecodingAttack
from .loopscan import LoopscanAttack
from .script_parsing import ScriptParsingAttack
from .svg_filtering import SvgFilteringAttack
from .video_webvtt import VideoWebVttAttack

__all__ = [
    "CacheAttack",
    "ClockEdgeAttack",
    "CssAnimationAttack",
    "FloatingPointAttack",
    "HistorySniffingAttack",
    "ImageDecodingAttack",
    "LoopscanAttack",
    "ScriptParsingAttack",
    "SvgFilteringAttack",
    "VideoWebVttAttack",
]
