"""Cache attack (Oren et al. [7]) with a setTimeout implicit clock.

Simplified per the paper §IV-A1: "measuring the access time of flushed
and unflushed contents".  The secret is whether a shared resource is in
the cache; the adversary measures its fetch completion time by counting
ticks of a free-running setTimeout chain — no explicit clock needed.
"""

from __future__ import annotations

from ...runtime.origin import parse_url
from ..base import TimingAttack, run_until_key
from ..implicit_clocks import TimerTickClock

#: The probed shared resource (cross-origin CDN object).
PROBE_URL = "https://shared-cdn.example/lib.js"
PROBE_SIZE = 120_000


class CacheAttack(TimingAttack):
    """Distinguish cached from uncached shared content."""

    name = "cache-attack"
    row = "Cache Attack [7]"
    group = "setTimeout"
    secret_a = "cached"
    secret_b = "uncached"

    def setup(self, browser, page, secret: str) -> None:
        """Host the probe; prime or flush the cache per the secret."""
        url = parse_url(PROBE_URL)
        browser.network.host_simple(url, PROBE_SIZE, body="shared-lib")
        if secret == "cached":
            browser.network.prime_cache(url)
        else:
            browser.network.flush_cache(url)

    def measure(self, browser, page, secret: str) -> float:
        """Tick count between fetch start and fetch completion."""
        box = {}

        def attack(scope) -> None:
            clock = TimerTickClock(scope, period_ms=1)
            clock.start()
            start = clock.read()
            scope.fetch(PROBE_URL).then(
                lambda _resp: box.__setitem__("measurement", clock.read() - start),
                lambda _err: box.__setitem__("measurement", clock.read() - start),
            )

        page.run_script(attack)
        return float(run_until_key(browser, box, "measurement", self.timeout_ms))
