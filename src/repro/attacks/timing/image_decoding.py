"""Image-decoding attack (van Goethem et al. [8]).

The sibling of script parsing: the cross-origin resource is loaded as an
``<img>`` and the (secret-dependent) decode time leaks through the same
setTimeout-chain implicit clock.
"""

from __future__ import annotations

from ...runtime.origin import parse_url
from ...runtime.network import Resource
from ...runtime.svgfilter import SimImage
from ..base import TimingAttack, run_until_key
from ..implicit_clocks import TimerTickClock

CROSS_ORIGIN_HOST = "https://photos.example"


class ImageDecodingAttack(TimingAttack):
    """Infer a cross-origin image's resolution from decode time."""

    name = "image-decoding"
    row = "Image Decoding [8]"
    group = "setTimeout"
    secret_a = "small"
    secret_b = "large"
    timeout_ms = 8_000

    #: Secret resolutions (pixels per side).
    resolutions = {"small": 700, "large": 2400}

    def setup(self, browser, page, secret: str) -> None:
        """Host the image with the secret resolution.

        The cache is primed first — van Goethem et al.'s refinement: a
        cached response isolates the *processing* (decode) time from
        network jitter, which is what defeats slow/noisy networks (Tor).
        """
        side = self.resolutions[secret]
        image = SimImage(side, side, dark_fraction=0.4, label=secret, cross_origin=True)
        url = parse_url(f"{CROSS_ORIGIN_HOST}/photo.png")
        browser.network.host(Resource(url, side * side // 6, "image/png", body=image))
        browser.network.prime_cache(url)

    def measure(self, browser, page, secret: str) -> float:
        """Tick count from append to onload."""
        box = {}

        def attack(scope) -> None:
            clock = TimerTickClock(scope, period_ms=1)
            clock.start()
            element = scope.Image()
            start = clock.read()
            element.onload = lambda: box.__setitem__("measurement", clock.read() - start)
            element.onerror = lambda: box.__setitem__("measurement", clock.read() - start)
            scope.document.body.append_child(element)
            element.set_attribute("src", f"{CROSS_ORIGIN_HOST}/photo.png")

        page.run_script(attack)
        return float(run_until_key(browser, box, "measurement", self.timeout_ms))
