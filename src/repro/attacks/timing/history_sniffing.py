"""History sniffing via repaint timing (Stone [9]).

The classic ``:visited`` attack: style resolution for a large batch of
links is more expensive when the visited selector matches, and the extra
style/layout cost delays the animation frame that performs it.

The adversary reads the delay through two implicit channels at once
(real attackers use whatever survives the deployed defense):

* **rAF timestamp deltas** — works whenever frame timestamps retain
  sub-frame precision (legacy, Fuzzyfox's 1 ms fuzz, Chrome Zero);
* **worker-flood counts between frames** — the paper's Listing 1 clock:
  a parallel worker floods postMessage and the count of deliveries
  between consecutive frames measures the gap without any clock API,
  defeating coarse clamps (Tor's 100 ms).
"""

from __future__ import annotations

from ..base import TimingAttack, run_until_key
from ..implicit_clocks import WorkerFloodClock

TARGET_URL = "https://secret-bank.example/account"

#: Number of links appended; sized so the visited-style surcharge pushes
#: the restyle past every browser's frame budget (Edge has 24 ms frames).
LINK_COUNT = 2200

FRAMES = 6


class HistorySniffingAttack(TimingAttack):
    """Was TARGET_URL visited by this browser?"""

    name = "history-sniffing"
    row = "History Sniffing [9]"
    group = "raf"
    secret_a = "visited"
    secret_b = "unvisited"
    trials = 12  # fuzzyfox's heavy pause noise needs a few more repeats
    timeout_ms = 5_000

    def setup(self, browser, page, secret: str) -> None:
        """Prime the browsing history per the secret."""
        if secret == "visited":
            browser.visit(TARGET_URL)

    def measure(self, browser, page, secret: str) -> dict:
        """Max frame gap, in rAF-timestamp ms and in flood counts."""
        box = {}

        def attack(scope) -> None:
            document = scope.document
            flood = WorkerFloodClock(scope, flood_period_ms=0.25)
            timestamps = []
            counts = []

            def frame(timestamp: float) -> None:
                index = len(timestamps)
                timestamps.append(timestamp)
                counts.append(flood.read())
                if index == 1:
                    for i in range(LINK_COUNT):
                        link = document.create_element("a")
                        link.attributes["href"] = TARGET_URL  # bulk, silent
                        document.body.children.append(link)
                        link.parent = document.body
                    document.mark_dirty()
                if index + 1 < FRAMES:
                    scope.requestAnimationFrame(frame)
                else:
                    flood.terminate()
                    ts_deltas = [
                        timestamps[i + 1] - timestamps[i]
                        for i in range(len(timestamps) - 1)
                    ]
                    count_deltas = [
                        counts[i + 1] - counts[i] for i in range(len(counts) - 1)
                    ]
                    box["measurement"] = {
                        "raf_delta_ms": max(ts_deltas),
                        "flood_count": max(count_deltas),
                    }

            # let the worker spin up before measuring
            scope.setTimeout(lambda: scope.requestAnimationFrame(frame), 8)

        page.run_script(attack)
        return run_until_key(browser, box, "measurement", self.timeout_ms)
