"""Video/WebVTT clock attack (Kohlbrenner & Shacham [6]).

``video.currentTime`` during playback is yet another clock the browser
forgets to police: sample it, run the secret operation, sample again.
WebVTT cue events provide the same signal as periodic callbacks; the
attack here uses the currentTime sampling variant and registers a cue to
show the cue pipeline is exercised under every defense.
"""

from __future__ import annotations

from ...runtime.media import WebVTTCue
from ..base import TimingAttack, run_until_key

SECRETS_MS = {"short": 6.0, "long": 14.0}


class VideoWebVttAttack(TimingAttack):
    """Measure a synchronous operation with the video playback clock."""

    name = "video-webvtt"
    row = "Video/WebVTT [6]"
    group = "raf"
    secret_a = "short"
    secret_b = "long"

    def measure(self, browser, page, secret: str) -> float:
        """currentTime delta (seconds -> ms) across the secret operation."""
        box = {}
        duration_ms = SECRETS_MS[secret]

        def attack(scope) -> None:
            video = scope.createVideo(60_000.0)
            cue = WebVTTCue(5.0, 10.0)
            cue.on_enter = lambda _cue: None  # exercises cue scheduling
            video.add_cue(cue)
            video.play()

            def sample_and_measure() -> None:
                before = video.current_time
                scope.busy_work(duration_ms)
                after = video.current_time
                box["measurement"] = (after - before) * 1000.0

            scope.setTimeout(sample_and_measure, 30)

        page.run_script(attack)
        return float(run_until_key(browser, box, "measurement", self.timeout_ms))
