"""CSS-animation timing attack (Schwarz et al., "Fantastic Timers" [12]).

A running CSS animation is a clock: its computed progress, read via
``getComputedStyle``, reveals elapsed time at compositor precision even
when every explicit clock is degraded.  The attacker samples progress,
runs the secret operation synchronously, samples again — the progress
delta is the operation's duration.
"""

from __future__ import annotations

from ..base import TimingAttack, run_until_key

#: Animation sweep: 0..1000 px over 1 s, so 1 progress unit = 1 ms.
ANIMATION_SPAN = 1000.0
ANIMATION_DURATION_MS = 1000.0

#: Secret operation durations (ms): e.g. two different cross-origin
#: render/layout operations whose cost the adversary wants.
SECRETS_MS = {"short": 6.0, "long": 14.0}


class CssAnimationAttack(TimingAttack):
    """Measure a synchronous operation with the animation clock."""

    name = "css-animation"
    row = "CSS Animation [12]"
    group = "raf"
    secret_a = "short"
    secret_b = "long"
    # Fuzzyfox adds ~1 ms fuzz to the animation clock; the averaging
    # adversary needs a few more repetitions to shrug it off
    trials = 14

    def measure(self, browser, page, secret: str) -> float:
        """Animation-progress delta across the secret operation."""
        box = {}
        duration_ms = SECRETS_MS[secret]

        def attack(scope) -> None:
            element = scope.document.create_element("div")
            scope.document.body.append_child(element)
            scope.animate(
                element, "left", 0.0, ANIMATION_SPAN, ANIMATION_DURATION_MS
            )

            def sample_and_measure() -> None:
                before = scope.getComputedStyle(element, "left")
                scope.busy_work(duration_ms)
                after = scope.getComputedStyle(element, "left")
                box["measurement"] = after - before

            # let the animation start ticking before sampling
            scope.setTimeout(sample_and_measure, 30)

        page.run_script(attack)
        return float(run_until_key(browser, box, "measurement", self.timeout_ms))
