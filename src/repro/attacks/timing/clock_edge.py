"""Clock-edge attack (Kohlbrenner & Shacham [6]).

A coarse clock with *exact* grid edges still leaks sub-resolution time:
align to an edge, run the secret operation, then count cheap operations
until the next edge — the count is the secret's phase within the tick.
Works against any deterministic quantised clock (legacy browsers, Tor's
100 ms clamp); fails against fuzzy edges (Fuzzyfox, Chrome Zero) and
against JSKernel's logical clock, whose edges are a deterministic
function of the attacker's own call count.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..base import TimingAttack

#: Cheap-op ladder used to probe the clock resolution (ms per op).
PROBE_LADDER_MS = (0.0002, 0.003, 0.04, 0.6, 4.0)
PROBE_MAX_ITERS = 700

#: Secret durations to distinguish (ms); chosen so their phases differ
#: modulo every evaluated clock resolution (5 µs, 1 ms, 100 µs, 100 ms).
SECRET_A_MS = 0.313
SECRET_B_MS = 0.747


def spin_to_edge(scope, op_ms: float, max_iters: int) -> Optional[int]:
    """Busy-spin until the displayed clock changes; returns iterations."""
    t0 = scope.performance.now()
    for i in range(max_iters):
        scope.busy_work(op_ms)
        if scope.performance.now() != t0:
            return i + 1
    return None


def calibrate(scope) -> Optional[Tuple[float, float]]:
    """Estimate the clock resolution; pick a counting op ~1/30 of it."""
    for op_ms in PROBE_LADDER_MS:
        iters = spin_to_edge(scope, op_ms, PROBE_MAX_ITERS)
        if iters is not None and iters > 2:
            resolution_est = iters * op_ms
            return resolution_est, max(resolution_est / 30, 0.0002)
    return None


class ClockEdgeAttack(TimingAttack):
    """Distinguish two sub-resolution durations via edge phase."""

    name = "clock-edge"
    row = "Clock Edge [6]"
    group = "setTimeout"
    secret_a = "short"
    secret_b = "long"
    trials = 10

    secrets_ms = {"short": SECRET_A_MS, "long": SECRET_B_MS}

    def measure(self, browser, page, secret: str) -> float:
        """Phase estimate (ms) of the secret within one clock tick."""
        box = {}
        duration_ms = self.secrets_ms[secret]

        def attack(scope) -> None:
            calibrated = calibrate(scope)
            if calibrated is None:
                box["measurement"] = -1.0
                return
            _resolution, op_ms = calibrated
            # align to an edge, run the secret, count to the next edge
            spin_to_edge(scope, op_ms, PROBE_MAX_ITERS * 4)
            scope.busy_work(duration_ms)
            count = spin_to_edge(scope, op_ms, PROBE_MAX_ITERS * 4)
            if count is None:
                box["measurement"] = -1.0
                return
            box["measurement"] = count * op_ms

        page.run_script(attack)
        browser.run_until(lambda: "measurement" in box)
        return float(box["measurement"])
