"""Script-parsing attack (van Goethem et al. [8]).

Load a cross-origin resource as a ``<script>``; network transfer and
parse time both grow with the (secret) file size, and a setTimeout-chain
implicit clock counts ticks between appending the element and its
``onload`` event.  Figure 2 sweeps the file size; Table I distinguishes
two sizes.
"""

from __future__ import annotations

from ...runtime.origin import parse_url
from ..base import TimingAttack, run_until_key
from ..implicit_clocks import TimerTickClock

CROSS_ORIGIN_HOST = "https://social-network.example"

#: Table I secrets: small vs large cross-origin file (bytes).
SMALL_BYTES = 2 * 1024 * 1024
LARGE_BYTES = 10 * 1024 * 1024

#: Nominal tick period used to convert counts to "reported time".  The
#: size signal is seconds on an ADSL-class link, so a coarse tick keeps
#: the chain cheap without losing resolution.
TICK_MS = 25.0


class ScriptParsingAttack(TimingAttack):
    """Infer a cross-origin file's size from script load+parse time."""

    name = "script-parsing"
    row = "Script Parsing [8]"
    group = "setTimeout"
    secret_a = "small"
    secret_b = "large"
    trials = 6
    timeout_ms = 20_000

    def __init__(self, size_a: int = SMALL_BYTES, size_b: int = LARGE_BYTES):
        self.sizes = {"small": size_a, "large": size_b}

    def setup(self, browser, page, secret: str) -> None:
        """Host the cross-origin file at the secret size.

        Both the streaming transfer and the parse scale with the secret
        size; on any realistic link the transfer dominates and dwarfs
        network jitter, so the attack needs only a coarse tick.
        """
        url = parse_url(f"{CROSS_ORIGIN_HOST}/friends.json")
        browser.network.host_simple(url, self.sizes[secret], body=lambda scope: None)

    def measure(self, browser, page, secret: str) -> float:
        """Tick count from append to onload."""
        box = {}

        def attack(scope) -> None:
            clock = TimerTickClock(scope, period_ms=TICK_MS)
            clock.start()
            element = scope.document.create_element("script")
            start = clock.read()
            element.onload = lambda: box.__setitem__("measurement", clock.read() - start)
            element.onerror = lambda: box.__setitem__("measurement", clock.read() - start)
            scope.document.body.append_child(element)
            element.set_attribute("src", f"{CROSS_ORIGIN_HOST}/friends.json")

        page.run_script(attack)
        return float(run_until_key(browser, box, "measurement", self.timeout_ms))

    # ------------------------------------------------------------------
    def reported_time_ms(self, defense_name: str, size_bytes: int, seed: int = 0) -> float:
        """Figure 2 series point: reported time for one file size."""
        self.sizes["sweep"] = size_bytes
        measurement = self.run_trial(defense_name, "sweep", seed)
        return measurement * TICK_MS
