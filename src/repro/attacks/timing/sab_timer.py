"""SharedArrayBuffer counter timer (Schwarz et al. [12]) — extension row.

Not a Table I row: the paper notes SAB "is rarely used and currently
disabled in many browsers due to Spectre", but §III-E2 still routes every
SAB access through the kernel.  This extension attack exercises that
path: a worker spins a shared counter at a known rate and the main thread
reads it around a secret operation — a nanosecond-class timer on legacy
browsers.

JSKernel's slot-paced SAB interface degrades the channel to the kernel's
message-grid resolution (1 ms): sub-grid secrets become indistinguishable
while coarse differences survive, exactly the degradation-not-elimination
DESIGN.md §7 documents.
"""

from __future__ import annotations

from ..base import TimingAttack, run_until_key

#: Worker increment rate (counts per millisecond).
COUNTER_RATE = 1_000.0

#: Sub-grid secrets: distinguishable at ns resolution, identical on a
#: 1 ms grid.
SECRETS_MS = {"short": 0.22, "long": 0.67}


class SabTimerAttack(TimingAttack):
    """Measure a sub-millisecond operation with a SAB counter."""

    name = "sab-timer"
    row = "SharedArrayBuffer timer [12] (extension)"
    group = "extension"
    secret_a = "short"
    secret_b = "long"

    def measure(self, browser, page, secret: str) -> float:
        """Counter delta across the secret operation."""
        box = {}
        duration_ms = SECRETS_MS[secret]

        def attack(scope) -> None:
            counter = scope.SharedArrayBuffer(8)

            def worker_main(ws) -> None:
                # tight increment loop, declared as a rate activity
                counter_native = getattr(counter, "_native", counter)
                counter_native.start_increment_activity(COUNTER_RATE)
                ws.postMessage("spinning")

            worker = scope.Worker(worker_main)

            def on_spinning(_event) -> None:
                before = counter.load()
                scope.busy_work(duration_ms)
                after = counter.load()
                box["measurement"] = float(after - before)
                worker.terminate()

            worker.onmessage = on_spinning

        page.run_script(attack)
        return run_until_key(browser, box, "measurement", self.timeout_ms)
