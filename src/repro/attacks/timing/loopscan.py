"""Loopscan attack (Vila & Köpf, "Loophole" [11]).

Browsing contexts that share an event loop observe each other's task
pattern: the attacker spins a window.postMessage-to-self loop and records
the interval between consecutive onmessage callbacks; while a co-resident
(cross-origin) page runs a long task, the attacker's messages stall.  The
maximum observed event interval fingerprints which site is loading —
Table II reports google.com vs youtube.com.
"""

from __future__ import annotations

from ...workloads.sites import load_site, loopscan_target
from ..base import TimingAttack, run_until_key

#: How long the attacker profiles the loop (virtual ms).
PROFILE_WINDOW_MS = 90.0


class LoopscanAttack(TimingAttack):
    """Which site is loading in the co-resident context?"""

    name = "loopscan"
    row = "Loopscan [11]"
    group = "raf"
    secret_a = "google"
    secret_b = "youtube"
    timeout_ms = 60_000

    def measure(self, browser, page, secret: str) -> float:
        """Maximum event interval (ms) during the victim's load."""
        box = {}
        victim = loopscan_target(secret)
        # the victim page shares the attacker's event loop (iframe)
        load_site(browser, victim, page=_SharedLoopView(page, victim))

        def attack(scope) -> None:
            state = {"last": None, "max_gap": 0.0, "done": False}
            t_begin = scope.performance.now()

            def on_message(_event) -> None:
                if state["done"]:
                    return
                now = scope.performance.now()
                if state["last"] is not None:
                    gap = now - state["last"]
                    if gap > state["max_gap"]:
                        state["max_gap"] = gap
                state["last"] = now
                if now - t_begin >= PROFILE_WINDOW_MS * scope.js_cost_scale:
                    state["done"] = True
                    box["measurement"] = state["max_gap"]
                    return
                scope.busy_work(0.3)  # per-iteration handler work
                scope.postMessage("tick")

            scope.onmessage = on_message
            scope.postMessage("tick")

        page.run_script(attack)
        return float(run_until_key(browser, box, "measurement", self.timeout_ms))


class _SharedLoopView:
    """Adapter: run the victim site inside the attacker's event loop.

    Models an iframe: a separate browsing context whose tasks land on the
    same main thread.  Only the surface :func:`load_site` needs.
    """

    def __init__(self, page, site):
        self._page = page
        self.scope = page.scope
        self.loop = page.loop

    def run_script(self, body, label: str = "iframe-script") -> None:
        self._page.loop.post(lambda: body(self._page.scope), label=label)

    def arm_load_event(self) -> None:
        """Iframe load completion is not observed by the attack."""
