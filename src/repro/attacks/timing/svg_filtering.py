"""SVG filtering attack (Stone [9], DeterFox's running example [14]).

Apply an expensive SVG filter (erode) to a cross-origin image; the
per-frame filter cost depends on the image's resolution and content, and
requestAnimationFrame timestamps around the filtered frame reveal it.
Table II reports the measured time for a low- and a high-resolution
image under every defense; only JSKernel pins both at its deterministic
10 ms rAF slot.
"""

from __future__ import annotations

from ...analysis.stats import mean
from ...runtime.svgfilter import SimImage
from ..base import TimingAttack, run_until_key
from ..implicit_clocks import RafTimestampClock

#: Table II's two secret images.
LOW_RES = SimImage(320, 320, dark_fraction=0.5, label="low-res", cross_origin=True)
HIGH_RES = SimImage(760, 760, dark_fraction=0.5, label="high-res", cross_origin=True)

#: Erode passes per frame.
FILTER_ITERATIONS = 2
#: Frames measured (the paper averages 25 runs; we average frames+trials).
FRAMES = 8


class SvgFilteringAttack(TimingAttack):
    """Distinguish two cross-origin image resolutions via filter timing."""

    name = "svg-filtering"
    row = "SVG Filtering [9]"
    group = "raf"
    secret_a = "low"
    secret_b = "high"
    timeout_ms = 6_000

    images = {"low": LOW_RES, "high": HIGH_RES}

    def measure(self, browser, page, secret: str) -> float:
        """Mean rAF delta while the filter re-applies every frame."""
        box = {}
        image = self.images[secret]

        def attack(scope) -> None:
            element = scope.document.create_element("div")
            scope.document.body.append_child(element)

            def on_done(_timestamps) -> None:
                deltas = clock.deltas()[1:]  # skip warm-up frame
                box["measurement"] = mean(deltas)

            clock = RafTimestampClock(scope, frames=FRAMES, on_done=on_done)
            clock.per_frame_work = lambda _i: scope.applyFilter(
                element, "erode", image, FILTER_ITERATIONS
            )
            clock.start()

        page.run_script(attack)
        return float(run_until_key(browser, box, "measurement", self.timeout_ms))
