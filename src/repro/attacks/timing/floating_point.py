"""Floating-point timing attack (Andrysco et al. [10]).

Subnormal floating-point operands make FPU multiplications dramatically
slower; an SVG feConvolveMatrix over a cross-origin image therefore takes
frame time that depends on whether the (secret) pixels produce subnormal
intermediates.  Pixel stealing reads this off requestAnimationFrame
deltas, one pixel batch at a time.
"""

from __future__ import annotations

from ...analysis.stats import mean
from ...runtime.svgfilter import subnormal_multiply_cost
from ..base import TimingAttack, run_until_key
from ..implicit_clocks import RafTimestampClock

#: Multiplications per frame (one convolution pass over the pixel batch).
OPS_PER_FRAME = 400_000
FRAMES = 8


class FloatingPointAttack(TimingAttack):
    """Distinguish subnormal from normal pixel values via frame time."""

    name = "floating-point"
    row = "Floating Point [10]"
    group = "raf"
    secret_a = "subnormal"
    secret_b = "normal"
    timeout_ms = 6_000

    def measure(self, browser, page, secret: str) -> float:
        """Mean rAF delta while convolving the secret pixels."""
        box = {}
        per_frame_cost = subnormal_multiply_cost(secret == "subnormal", OPS_PER_FRAME)

        def attack(scope) -> None:
            element = scope.document.create_element("canvas")
            scope.document.body.append_child(element)

            def convolve(_frame_index: int) -> None:
                element.pending_paint_cost += per_frame_cost
                scope.document.mark_dirty()

            def on_done(_timestamps) -> None:
                box["measurement"] = mean(clock.deltas()[1:])

            clock = RafTimestampClock(scope, frames=FRAMES, on_done=on_done)
            clock.per_frame_work = convolve
            clock.start()

        page.run_script(attack)
        return float(run_until_key(browser, box, "measurement", self.timeout_ms))
