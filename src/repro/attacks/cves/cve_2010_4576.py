"""CVE-2010-4576 — worker load error discloses a cross-origin redirect.

The attacker points a same-origin worker URL at a resource that the
server redirects cross-origin (common for SSO endpoints whose final URL
carries user identifiers).  The buggy browser reports the *final* URL in
the load error, leaking where the redirect landed.
"""

from __future__ import annotations

from ...runtime.network import Resource
from ...runtime.origin import parse_url
from ..base import CveAttack, run_until_key

SECRET_TOKEN = "session-token-93ab"
FINAL_URL = f"https://sso.victim.example/landing?tok={SECRET_TOKEN}"
ENTRY_URL = "https://attacker.example/sso-probe.js"


class Cve2010_4576(CveAttack):
    """Learn the redirect target of a same-origin worker load."""

    name = "cve-2010-4576"
    row = "CVE-2010-4576"
    cve = "CVE-2010-4576"

    def setup(self, browser, page) -> None:
        """Host the same-origin entry that redirects cross-origin."""
        browser.network.host(
            Resource(
                parse_url(ENTRY_URL),
                500,
                "text/javascript",
                body=lambda scope: None,
                redirect_to=parse_url(FINAL_URL),
            )
        )

    def attempt(self, browser, page) -> bool:
        """Create the worker; inspect the error for the final URL."""
        box = {}

        def attack(scope) -> None:
            worker = scope.Worker("/sso-probe.js")
            worker.onerror = lambda event: box.__setitem__("message", event.message)

        page.run_script(attack)
        message = str(run_until_key(browser, box, "message", self.timeout_ms))
        return SECRET_TOKEN in message
