"""CVE-2014-1719 — structured clone forgets to neuter a transferable.

The main thread transfers an ArrayBuffer into a worker; the buggy clone
path skips the neutering, so the sender keeps a usable reference to a
store that now belongs to the worker.  When the worker dies the store is
freed (legitimately — the worker owned it) and the sender's stale
reference is a dangling pointer.

JSKernel's transfer-neuter policy detaches the sender's reference itself
after every transfer, so the later read fails *safely* (a detached-buffer
TypeError, not a UAF).
"""

from __future__ import annotations

from ...errors import SimulationError
from ..base import CveAttack, run_until_key


class Cve2014_1719(CveAttack):
    """UAF through a reference that should have been neutered."""

    name = "cve-2014-1719"
    row = "CVE-2014-1719"
    cve = "CVE-2014-1719"

    def attempt(self, browser, page) -> bool:
        """Transfer a buffer in, kill the worker, read the stale ref."""
        box = {}

        def attack(scope) -> None:
            buffer = scope.ArrayBuffer(4096)

            def worker_main(ws) -> None:
                ws.postMessage("ready")

            worker = scope.Worker(worker_main)

            def on_ready(_event) -> None:
                worker.postMessage("take-this", transfer=[buffer])

                def read_stale() -> None:
                    try:
                        buffer.read(0, cve="CVE-2014-1719")  # the trigger
                    except SimulationError:
                        pass  # detached-buffer TypeError: the SAFE outcome
                    box["done"] = True

                def kill() -> None:
                    worker.terminate()  # frees the worker-owned store
                    scope.setTimeout(read_stale, 2)

                scope.setTimeout(kill, 3)

            worker.onmessage = on_ready

        page.run_script(attack)
        run_until_key(browser, box, "done", self.timeout_ms)
        return False
