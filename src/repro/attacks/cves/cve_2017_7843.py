"""CVE-2017-7843 — indexedDB data persists across private sessions.

A site writes a marker into indexedDB from a private window; on the
buggy browser the write lands in the persistent store, so a *later*
private session can read it back and fingerprint the returning user.
JSKernel's policy denies indexedDB in private browsing outright ("to
obey the mode's specification").
"""

from __future__ import annotations

from ..base import CveAttack, run_until_key

MARKER_KEY = "visitor-fingerprint"
MARKER_VALUE = "fp-8c41"


class Cve2017_7843(CveAttack):
    """Fingerprint a user across supposedly-ephemeral private sessions."""

    name = "cve-2017-7843"
    row = "CVE-2017-7843"
    cve = "CVE-2017-7843"
    page_url = "https://tracker.example/"

    def attempt(self, browser, page) -> bool:
        """Write in private session 1, read in private session 2."""
        first = browser.open_page(self.page_url, private=True)
        box = {}

        def write_marker(scope) -> None:
            scope.indexedDB.put(MARKER_KEY, MARKER_VALUE)
            box["written"] = True

        first.run_script(write_marker)
        run_until_key(browser, box, "written", self.timeout_ms)

        # the private window closes: ephemeral data must be gone
        browser.idb.end_private_session()

        second = browser.open_page(self.page_url, private=True)

        def read_marker(scope) -> None:
            box["readback"] = scope.indexedDB.get(MARKER_KEY)

        second.run_script(read_marker)
        run_until_key(browser, box, "readback", self.timeout_ms)
        return box["readback"] == MARKER_VALUE
