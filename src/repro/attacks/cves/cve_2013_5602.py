"""CVE-2013-5602 — null dereference assigning onmessage to a dead worker.

Setting ``worker.onmessage`` after the worker wrapper was neutered
dereferences a nulled listener slot in the buggy browser (an
attacker-reachable crash primitive).  JSKernel traps the setter — the
paper hooks "both the setter function of onmessage and
setEventListener" — so the assignment never reaches the native wrapper.
"""

from __future__ import annotations

from ..base import CveAttack, run_until_key


class Cve2013_5602(CveAttack):
    """Crash via onmessage assignment on a terminated worker."""

    name = "cve-2013-5602"
    row = "CVE-2013-5602"
    cve = "CVE-2013-5602"

    def attempt(self, browser, page) -> bool:
        """Terminate, then assign onmessage (crashes on the buggy path)."""
        box = {}

        def attack(scope) -> None:
            worker = scope.Worker(lambda ws: None)
            worker.terminate()

            def assign_late() -> None:
                worker.onmessage = lambda event: None  # the trigger
                box["done"] = True

            scope.setTimeout(assign_late, 5)

        page.run_script(attack)
        run_until_key(browser, box, "done", self.timeout_ms)
        return False  # reached only when no crash fired
