"""CVE-2013-1714 — worker XHR bypasses the same-origin policy.

Firefox's worker XMLHttpRequest path skipped the SOP check, so a worker
could issue a cross-origin request and read the response.  JSKernel
"enforces a policy to check the origins for all the requests coming from
a web worker"; Chrome Zero's polyfill incidentally routes XHR through
the (checked) main-thread path.
"""

from __future__ import annotations

from ...runtime.origin import parse_url
from ..base import CveAttack, run_until_key

SECRET = "balance: 1,337.00 USD"
TARGET = "https://bank.victim.example/api/account"


class Cve2013_1714(CveAttack):
    """Read a cross-origin response from inside a worker."""

    name = "cve-2013-1714"
    row = "CVE-2013-1714"
    cve = "CVE-2013-1714"

    def setup(self, browser, page) -> None:
        """Host the victim's (cookie-authenticated) account endpoint."""
        browser.network.host_simple(parse_url(TARGET), 900, body=SECRET)

    def attempt(self, browser, page) -> bool:
        """Worker XHR to the victim; success = response text obtained."""
        box = {}

        def attack(scope) -> None:
            def worker_main(ws) -> None:
                xhr = ws.XMLHttpRequest()
                xhr.open("GET", TARGET)
                xhr.onload = lambda: ws.postMessage(xhr.response_text)
                xhr.send()

            worker = scope.Worker(worker_main)
            worker.onmessage = lambda event: box.__setitem__("loot", event.data)
            worker.onerror = lambda event: box.__setitem__("loot", "")

        page.run_script(attack)
        loot = run_until_key(browser, box, "loot", self.timeout_ms)
        return SECRET in str(loot)
