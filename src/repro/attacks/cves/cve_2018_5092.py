"""CVE-2018-5092 — use-after-free: abort on a freed fetch (paper Listing 2).

Trigger sequence (three interleaved functions across two threads):

1. the worker registers a ``fetch`` with an abort signal;
2. the worker is *falsely terminated* while the fetch is in flight — the
   buggy browser frees the native request object but forgets to
   unregister it from the abort signal;
3. the main thread fires the abort signal, dereferencing the freed
   request.

JSKernel's worker-lifecycle policy closes the thread at the user level
only, so the buggy teardown never runs and the abort path only ever sees
live registrations.
"""

from __future__ import annotations

from ...runtime.origin import parse_url
from ..base import CveAttack, run_until_key


class Cve2018_5092(CveAttack):
    """Abort signal fired at a freed fetch request."""

    name = "cve-2018-5092"
    row = "CVE-2018-5092"
    cve = "CVE-2018-5092"

    def setup(self, browser, page) -> None:
        """Host the fetched file (same-origin, as in the exploit)."""
        browser.network.host_simple(
            parse_url("https://attacker.example/fetchedfile0.html"), 64_000
        )

    def attempt(self, browser, page) -> bool:
        """Drive the Listing 2 sequence; a UAF raises out of the run."""
        box = {}
        shared = {}

        def attack(scope) -> None:
            def worker_main(ws) -> None:
                controller = ws.AbortController()
                shared["controller"] = controller  # reload's internal abort
                ws.fetch("/fetchedfile0.html", {"signal": controller.signal}).then(
                    lambda _r: None, lambda _e: None
                )
                ws.postMessage("fetch-started")

            worker = scope.Worker(worker_main)

            def on_message(_event) -> None:
                # false termination while the fetch is in flight...
                worker.terminate()
                # ...then the main thread's unload path aborts the signal
                def fire_abort() -> None:
                    shared["controller"].abort(cve="CVE-2018-5092")
                    box["done"] = True

                scope.setTimeout(fire_abort, 1)

            worker.onmessage = on_message

        page.run_script(attack)
        run_until_key(browser, box, "done", self.timeout_ms)
        return False  # reached only if no crash fired
