"""CVE-2014-1487 — worker creation error message leaks cross-origin info.

Constructing a Worker from a cross-origin URL must fail with an opaque
error; the buggy browser's onerror event embeds the full load failure
detail, turning worker creation into a cross-origin probe.
"""

from __future__ import annotations

from ..base import CveAttack, run_until_key

#: The cross-origin URL probed (only its reflection matters).
TARGET = "https://intranet.victim.example/admin/build-4711.js"
SANITIZED = "Script error."


class Cve2014_1487(CveAttack):
    """Probe cross-origin URLs through worker-creation errors."""

    name = "cve-2014-1487"
    row = "CVE-2014-1487"
    cve = "CVE-2014-1487"

    def attempt(self, browser, page) -> bool:
        """Create the cross-origin worker; inspect onerror's message."""
        box = {}

        def attack(scope) -> None:
            worker = scope.Worker(TARGET)
            worker.onerror = lambda event: box.__setitem__("message", event.message)

        page.run_script(attack)
        message = str(run_until_key(browser, box, "message", self.timeout_ms))
        return message != SANITIZED and "victim.example" in message
