"""CVE-2015-7215 — importScripts() error message leaks cross-origin info.

A worker calls ``importScripts`` on a cross-origin URL; the failure
message on the buggy browser embeds the target URL and parse details,
disclosing cross-origin state (e.g. whether a user-specific resource
exists, or redirect destinations).  JSKernel's error-sanitizer policy
throws a new message without the cross-origin information.
"""

from __future__ import annotations

from ...runtime.network import Resource
from ...runtime.origin import parse_url
from ..base import CveAttack, run_until_key

SECRET = "beta-user-4711"
TARGET = f"https://victim.example/users/{SECRET}/profile.js"


class Cve2015_7215(CveAttack):
    """Read cross-origin details out of the importScripts error."""

    name = "cve-2015-7215"
    row = "CVE-2015-7215"
    cve = "CVE-2015-7215"

    def setup(self, browser, page) -> None:
        """Host a cross-origin script that fails to parse."""
        browser.network.host(
            Resource(
                parse_url(TARGET),
                2_000,
                "text/javascript",
                body=SyntaxError(f"unexpected token in {SECRET} config"),
            )
        )

    def attempt(self, browser, page) -> bool:
        """Worker imports the cross-origin script; inspect the error."""
        box = {}

        def attack(scope) -> None:
            def worker_main(ws) -> None:
                try:
                    ws.importScripts(TARGET)
                except Exception as exc:
                    ws.postMessage(str(exc))

            worker = scope.Worker(worker_main)
            worker.onmessage = lambda event: box.__setitem__("message", event.data)

        page.run_script(attack)
        message = run_until_key(browser, box, "message", self.timeout_ms)
        return SECRET in str(message)
