"""CVE-2011-1190 — cross-origin script exceptions reach onerror verbatim.

A worker imports a cross-origin script whose execution throws; the
exception message carries the victim script's internal state (the
classic leak is ``document.cookie`` fragments or config values embedded
in error strings).  Spec-compliant browsers replace such messages with
"Script error."; the buggy path forwards them verbatim.
"""

from __future__ import annotations

from ...errors import ReproError
from ...runtime.network import Resource
from ...runtime.origin import parse_url
from ..base import CveAttack, run_until_key

SECRET = "api-key-f00d"
TARGET = "https://victim.example/widget.js"


def _victim_widget(scope) -> None:
    """The victim's cross-origin script: throws with internal state."""
    raise ReproError(f"widget init failed: credential {SECRET} rejected")


class Cve2011_1190(CveAttack):
    """Harvest secrets from a cross-origin script's exception text."""

    name = "cve-2011-1190"
    row = "CVE-2011-1190"
    cve = "CVE-2011-1190"

    def setup(self, browser, page) -> None:
        """Host the throwing cross-origin script."""
        browser.network.host(
            Resource(parse_url(TARGET), 3_000, "text/javascript", body=_victim_widget)
        )

    def attempt(self, browser, page) -> bool:
        """Let the exception escape the worker; inspect onerror."""
        box = {}

        def attack(scope) -> None:
            def worker_main(ws) -> None:
                ws.importScripts(TARGET)  # throws; deliberately uncaught

            worker = scope.Worker(worker_main)
            worker.onerror = lambda event: box.__setitem__("message", event.message)

        page.run_script(attack)
        message = str(run_until_key(browser, box, "message", self.timeout_ms))
        return SECRET in message
