"""CVE-2014-1488 — transferable freed by worker termination (§IV-B).

"The worker thread passes a transferable ArrayBuffer to the main thread
but will free the ArrayBuffer once it is terminated."  The main thread
owns the buffer after the transfer; the buggy teardown frees it anyway,
so the main thread's next read is a use-after-free.

JSKernel's policy: "if the worker thread passes a transferable object,
the worker will only be terminated at the user level, but the kernel
level will still maintain the worker."
"""

from __future__ import annotations

from ..base import CveAttack, run_until_key


class Cve2014_1488(CveAttack):
    """UAF reading a buffer the dead worker transferred to us."""

    name = "cve-2014-1488"
    row = "CVE-2014-1488"
    cve = "CVE-2014-1488"

    def attempt(self, browser, page) -> bool:
        """Receive a transferred buffer, terminate the sender, read."""
        box = {}

        def attack(scope) -> None:
            def worker_main(ws) -> None:
                buffer = ws.ArrayBuffer(4096)
                buffer.write(0, 0x41)
                ws.postMessage("asm-module", transfer=[buffer])

            worker = scope.Worker(worker_main)

            def on_message(event) -> None:
                received = event.transferred[0]
                worker.terminate()  # buggy teardown frees `received`'s store

                def read_after() -> None:
                    received.read(0, cve="CVE-2014-1488")  # the trigger
                    box["done"] = True

                scope.setTimeout(read_after, 2)

            worker.onmessage = on_message

        page.run_script(attack)
        run_until_key(browser, box, "done", self.timeout_ms)
        return False
