"""CVE-2013-6646 — use-after-free delivering messages of a dead worker.

The worker posts messages and is terminated while they are still in
flight; the buggy teardown leaves the channel open, so the pending
delivery dereferences the already-freed worker wrapper.  JSKernel never
performs the racy native teardown: terminations are user-level and the
kernel receiver drops traffic for closed threads.
"""

from __future__ import annotations

from ..base import CveAttack, run_until_key


class Cve2013_6646(CveAttack):
    """UAF from an in-flight message racing worker termination."""

    name = "cve-2013-6646"
    row = "CVE-2013-6646"
    cve = "CVE-2013-6646"

    def attempt(self, browser, page) -> bool:
        """Terminate with a delivery in flight."""
        box = {}

        def attack(scope) -> None:
            def worker_main(ws) -> None:
                def flood() -> None:
                    for _ in range(4):
                        ws.postMessage("in-flight")
                    ws.setTimeout(flood, 1)

                ws.setTimeout(flood, 1)

            worker = scope.Worker(worker_main)

            def busy_then_terminate() -> None:
                # occupy the main thread so the flood's deliveries queue
                # up behind this task, then tear the worker down: the
                # queued deliveries run against the freed wrapper
                scope.busy_work(5.0)
                worker.terminate()

            scope.setTimeout(busy_then_terminate, 4)
            scope.setTimeout(lambda: box.__setitem__("done", True), 40)

        page.run_script(attack)
        run_until_key(browser, box, "done", self.timeout_ms)
        return False
