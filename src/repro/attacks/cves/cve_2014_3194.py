"""CVE-2014-3194 — use-after-free posting to a terminated worker.

``worker.postMessage`` after termination touches the worker's freed
native message port on the buggy browser.  JSKernel's stub checks the
kernel thread status and drops the message before anything native is
reached (and with the lifecycle policy there is no freed port anyway).
"""

from __future__ import annotations

from ..base import CveAttack, run_until_key


class Cve2014_3194(CveAttack):
    """UAF on the message port of a terminated worker."""

    name = "cve-2014-3194"
    row = "CVE-2014-3194"
    cve = "CVE-2014-3194"

    def attempt(self, browser, page) -> bool:
        """Terminate, then postMessage (UAF on the buggy path)."""
        box = {}

        def attack(scope) -> None:
            worker = scope.Worker(lambda ws: None)
            worker.terminate()

            def post_late() -> None:
                worker.postMessage({"cmd": "poke"})  # the trigger
                box["done"] = True

            scope.setTimeout(post_late, 5)

        page.run_script(attack)
        run_until_key(browser, box, "done", self.timeout_ms)
        return False
