"""CVE-based web concurrency attacks (Table I, bottom block)."""

from .cve_2010_4576 import Cve2010_4576
from .cve_2011_1190 import Cve2011_1190
from .cve_2013_1714 import Cve2013_1714
from .cve_2013_5602 import Cve2013_5602
from .cve_2013_6646 import Cve2013_6646
from .cve_2014_1487 import Cve2014_1487
from .cve_2014_1488 import Cve2014_1488
from .cve_2014_1719 import Cve2014_1719
from .cve_2014_3194 import Cve2014_3194
from .cve_2015_7215 import Cve2015_7215
from .cve_2017_7843 import Cve2017_7843
from .cve_2018_5092 import Cve2018_5092

__all__ = [
    "Cve2010_4576",
    "Cve2011_1190",
    "Cve2013_1714",
    "Cve2013_5602",
    "Cve2013_6646",
    "Cve2014_1487",
    "Cve2014_1488",
    "Cve2014_1719",
    "Cve2014_3194",
    "Cve2015_7215",
    "Cve2017_7843",
    "Cve2018_5092",
]
