"""Implicit-clock building blocks shared by the timing attacks.

The paper's central observation: even with every explicit clock degraded,
an attacker interleaves *two or more* JavaScript functions and uses the
invocation pattern itself as a clock.  These helpers implement the three
implicit clocks Table I groups its rows by:

* :class:`TimerTickClock` — a ``setTimeout`` chain; the count of ticks
  between two program points measures the interval;
* :class:`WorkerFloodClock` — the paper's Listing 1: a worker floods
  ``postMessage`` and the main thread counts ``onmessage`` invocations;
* :class:`RafTimestampClock` — a ``requestAnimationFrame`` chain; the
  timestamp deltas measure frame (and hence paint/main-thread) timing.
"""

from __future__ import annotations

from typing import Callable, List, Optional


class TimerTickClock:
    """Free-running setTimeout chain tick counter."""

    def __init__(self, scope, period_ms: float = 1.0):
        self.scope = scope
        self.period_ms = period_ms
        self.count = 0
        self._running = False

    def start(self) -> None:
        """Begin ticking."""
        self._running = True
        self._tick()

    def stop(self) -> None:
        """Stop ticking (chain dies at the next firing)."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.count += 1
        self.scope.setTimeout(self._tick, self.period_ms)

    def read(self) -> int:
        """Current tick count."""
        return self.count


class WorkerFloodClock:
    """Listing 1: worker postMessage flood counted via onmessage.

    The worker posts a burst of messages per timer tick, so the flood
    sustains roughly ``burst / clamped-tick`` messages per millisecond
    even under the 4 ms nested-timer clamp.
    """

    def __init__(self, scope, flood_period_ms: float = 0.2, burst: int = 4):
        self.scope = scope
        self.count = 0
        period = flood_period_ms

        def worker_main(ws) -> None:
            def tick() -> None:
                for _ in range(burst):
                    ws.postMessage(1)
                ws.setTimeout(tick, period)

            ws.setTimeout(tick, period)

        self.worker = scope.Worker(worker_main)
        self.worker.onmessage = self._on_message
        self._observers: List[Callable[[int], None]] = []

    def _on_message(self, _event) -> None:
        self.count += 1
        for observer in list(self._observers):
            observer(self.count)

    def on_tick(self, observer: Callable[[int], None]) -> None:
        """Register a per-onmessage observer."""
        self._observers.append(observer)

    def read(self) -> int:
        """Number of onmessage invocations so far."""
        return self.count

    def terminate(self) -> None:
        """Stop the flood."""
        self.worker.terminate()


class RafTimestampClock:
    """requestAnimationFrame chain collecting timestamps."""

    def __init__(self, scope, frames: int, on_done: Optional[Callable[[List[float]], None]] = None):
        self.scope = scope
        self.frames = frames
        self.timestamps: List[float] = []
        self.on_done = on_done
        self.per_frame_work: Optional[Callable[[int], None]] = None

    def start(self) -> None:
        """Begin the chain."""
        self.scope.requestAnimationFrame(self._frame)

    def _frame(self, timestamp: float) -> None:
        index = len(self.timestamps)
        self.timestamps.append(timestamp)
        if self.per_frame_work is not None:
            self.per_frame_work(index)
        if len(self.timestamps) < self.frames:
            self.scope.requestAnimationFrame(self._frame)
        elif self.on_done is not None:
            self.on_done(self.timestamps)

    def deltas(self) -> List[float]:
        """Consecutive timestamp differences (ms)."""
        return [
            self.timestamps[i + 1] - self.timestamps[i]
            for i in range(len(self.timestamps) - 1)
        ]
