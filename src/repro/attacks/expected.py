"""Reconstructed ground truth for Table I.

The PDF-to-text conversion of the paper loses the check/cross glyphs, so
the exact cells of Table I cannot be read off.  This matrix is the
reconstruction used for comparison, derived from the paper's prose:

* "JSKernel can defend against all existing attacks" → the jskernel
  column is all-defended;
* legacy Chrome/Firefox/Edge are the vulnerable baselines → all-✗;
* script parsing / image decoding "still possible in all the existing
  defenses except for JSKernel and DeterFox, which adopt determinism";
  the same determinism argument covers the cache attack and the
  rAF-delivery attacks (history sniffing, SVG filtering, floating
  point) that DeterFox's own paper evaluates;
* "Fuzzyfox does defend against the clock edge attack as claimed" —
  and Chrome Zero inherits the same fuzzy-time mechanism for explicit
  clocks, so both defend clock-edge and nothing else among the timing
  rows; DeterFox and Tor keep exact clock edges and stay vulnerable;
* loopscan: "except for JSKernel, all other defenses are vulnerable";
* CSS-animation and video/WebVTT clocks are compositor/media time,
  untouched by every evaluated defense except JSKernel's kernel clock;
* "Chrome Zero can defend against some vulnerabilities at the price of
  reduced functionalities as Chrome Zero only adopts a polyfill
  implementation of a web worker" — the polyfill removes the native
  worker lifecycle, defeating the teardown/UAF CVEs and (via the
  main-thread XHR path) the worker SOP bypass, but it does not touch
  error-message sanitisation or indexedDB, so the information-
  disclosure CVEs remain.

Each cell is ``True`` when the defense PREVENTS the attack.
"""

from __future__ import annotations

from typing import Dict, List

from ..defenses import TABLE1_DEFENSES
from .registry import attack_names

_TIMING_ROWS = [
    "cache-attack",
    "script-parsing",
    "image-decoding",
    "clock-edge",
    "history-sniffing",
    "svg-filtering",
    "floating-point",
    "loopscan",
    "css-animation",
    "video-webvtt",
]

_CVE_ROWS = [
    "cve-2018-5092",
    "cve-2017-7843",
    "cve-2015-7215",
    "cve-2014-3194",
    "cve-2014-1719",
    "cve-2014-1488",
    "cve-2014-1487",
    "cve-2013-6646",
    "cve-2013-5602",
    "cve-2013-1714",
    "cve-2011-1190",
    "cve-2010-4576",
]

#: CVEs the Chrome Zero worker polyfill incidentally defeats.
_CHROMEZERO_DEFENDED_CVES = {
    "cve-2018-5092",
    "cve-2014-3194",
    "cve-2014-1719",
    "cve-2014-1488",
    "cve-2013-6646",
    "cve-2013-5602",
    "cve-2013-1714",
}

#: Timing rows DeterFox's determinism covers.
_DETERFOX_DEFENDED = {
    "cache-attack",
    "script-parsing",
    "image-decoding",
    "history-sniffing",
    "svg-filtering",
    "floating-point",
}


def expected_matrix() -> Dict[str, Dict[str, bool]]:
    """attack name -> defense name -> defended?"""
    matrix: Dict[str, Dict[str, bool]] = {}
    for attack in attack_names():
        row: Dict[str, bool] = {}
        for defense in TABLE1_DEFENSES:
            row[defense] = _expected_cell(attack, defense)
        matrix[attack] = row
    return matrix


def _expected_cell(attack: str, defense: str) -> bool:
    if defense.startswith("legacy-"):
        return False
    if defense == "jskernel":
        return True
    if defense == "fuzzyfox":
        return attack == "clock-edge"
    if defense == "deterfox":
        return attack in _DETERFOX_DEFENDED
    if defense == "tor":
        return False
    if defense == "chromezero":
        if attack == "clock-edge":
            return True
        return attack in _CHROMEZERO_DEFENDED_CVES
    raise KeyError(f"no expectation for defense {defense!r}")


#: The paper-extending finding (pinned by test): clock-interposition
#: defenses that leave shared-memory accesses native are bypassed by the
#: counter-thread clock — the attack touches no clock API at all, so
#: fuzzing/clamping explicit clocks never sees it.  Defenses that
#: mediate the memory itself (jskernel's slot pacing, detbrowser's
#: metronome) are expected to hold.
EXPECTED_BYPASSES: Dict[str, Dict[str, bool]] = {
    # attack -> defense -> defended? (False = demonstrably bypassed)
    "counter-thread-clock": {
        "fuzzyfox": False,
        "tor": False,
        "jskernel": True,
        "detbrowser": True,
    },
}


def expected_row(attack: str) -> Dict[str, bool]:
    """One Table I row."""
    return expected_matrix()[attack]


def timing_rows() -> List[str]:
    """The implicit-clock rows in Table I order."""
    return list(_TIMING_ROWS)


def cve_rows() -> List[str]:
    """The CVE rows in Table I order."""
    return list(_CVE_ROWS)
