"""Race detection over happens-before graphs.

A *race* is a pair of accesses to the same shared object, at least one of
them a write, performed by different threads, with neither access ordered
before the other by happens-before.  The accesses come from the
``state.access`` instants the runtime emits for native-heap, SAB,
indexedDB and DOM operations (:mod:`repro.trace.access`).

Patterns are classified for reporting:

* ``use-after-free`` — a heap ``free`` write racing a ``deref`` read:
  the fetch-abort lifecycle bug (CVE-2018-5092) produces exactly this
  pair when worker teardown frees a request that the abort signal still
  dereferences;
* ``use-after-collect`` — a shared-memory (``shm-*``) cell's GC ``free``
  racing any other access: the thread-local-roots collector sweeping an
  object another agent still uses;
* ``write-write`` — two unordered writes;
* ``read-write`` — everything else.

The detector is lock-set aware through the happens-before graph rather
than an explicit lock-set algorithm: ``lock.release`` → ``lock.acquired``
edges (see :mod:`repro.analysis.hbgraph`) totally order the critical
sections of each lock, so accesses correctly guarded by a common lock are
never reported — pinned by the ``shm-toctou-locked`` scenario test.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .hbgraph import HBGraph, build_hb_graph, run_pids


class Race:
    """One unordered conflicting access pair."""

    __slots__ = ("obj", "kind", "pattern", "first", "second")

    def __init__(self, obj: str, kind: str, pattern: str, first, second):
        self.obj = obj
        self.kind = kind
        self.pattern = pattern
        #: The two racing HBEvents, in emission order.
        self.first = first
        self.second = second

    def to_dict(self) -> dict:
        def leg(event):
            return {
                "thread": event.thread,
                "ts_ns": event.ts,
                "op": event.args.get("op", ""),
                "access": event.args.get("access", ""),
            }

        return {
            "obj": self.obj,
            "kind": self.kind,
            "pattern": self.pattern,
            "first": leg(self.first),
            "second": leg(self.second),
        }

    def describe(self) -> str:
        """One human-readable line."""
        return (
            f"[{self.pattern}] {self.obj}: "
            f"{self.first.args.get('access') or self.first.args.get('op')} "
            f"on {self.first.thread} @ {self.first.ts} ns vs "
            f"{self.second.args.get('access') or self.second.args.get('op')} "
            f"on {self.second.thread} @ {self.second.ts} ns"
        )


def _classify(kind: str, first, second) -> str:
    ops = (first.args.get("op"), second.args.get("op"))
    accesses = {first.args.get("access"), second.args.get("access")}
    if kind == "heap" and "free" in accesses and "deref" in accesses:
        return "use-after-free"
    if kind.startswith("shm-") and "free" in accesses:
        return "use-after-collect"
    if ops == ("write", "write"):
        return "write-write"
    return "read-write"


def detect_races(graph: HBGraph) -> List[Race]:
    """All races in one run's happens-before graph."""
    by_obj: Dict[str, List] = {}
    for event in graph.events:
        if event.name == "state.access":
            by_obj.setdefault(event.args["obj"], []).append(event)

    races: List[Race] = []
    for obj, accesses in by_obj.items():
        for i, first in enumerate(accesses):
            for second in accesses[i + 1 :]:
                if first.thread == second.thread:
                    continue
                if first.args.get("op") != "write" and second.args.get("op") != "write":
                    continue
                if graph.happens_before(first.index, second.index):
                    continue
                kind = first.args.get("kind", "")
                races.append(
                    Race(obj, kind, _classify(kind, first, second), first, second)
                )
    return races


def analyze_races(events: List[dict], pid: Optional[int] = None) -> dict:
    """Race report for one run of a capture (JSON-shaped)."""
    graph = build_hb_graph(events, pid=pid)
    races = detect_races(graph)
    accesses = sum(1 for e in graph.events if e.name == "state.access")
    return {
        "pid": graph.pid,
        "events": len(graph.events),
        "hb_edges": graph.edge_count(),
        "shared_accesses": accesses,
        "race_count": len(races),
        "races": [race.to_dict() for race in races],
    }


def analyze_scenario(attack_name: str, defense_name: str, seed: int = 0) -> dict:
    """Run a scenario traced and report its races (all runs combined)."""
    # imported here: scenario -> attacks -> analysis would otherwise cycle
    from .scenario import run_traced_scenario

    tracer, outcome = run_traced_scenario(attack_name, defense_name, seed=seed)
    reports = [analyze_races(tracer.events, pid=pid) for pid in run_pids(tracer.events)]
    return {
        "scenario": attack_name,
        "defense": defense_name,
        "seed": seed,
        "outcome": outcome,
        "race_count": sum(r["race_count"] for r in reports),
        "runs": reports,
    }


def format_races(report: dict) -> str:
    """Human-readable rendering of an :func:`analyze_scenario` report."""
    lines = [
        f"scenario:  {report['scenario']} vs {report['defense']} (seed {report['seed']})",
        f"outcome:   {report['outcome']}",
        f"races:     {report['race_count']}",
    ]
    for run in report["runs"]:
        lines.append(
            f"  run {run['pid']}: {run['events']} events, "
            f"{run['hb_edges']} hb edges, {run['shared_accesses']} shared accesses"
        )
        for race in run["races"]:
            lines.append(
                f"    [{race['pattern']}] {race['obj']}: "
                f"{race['first']['access'] or race['first']['op']} on "
                f"{race['first']['thread']} @ {race['first']['ts_ns']} ns vs "
                f"{race['second']['access'] or race['second']['op']} on "
                f"{race['second']['thread']} @ {race['second']['ts_ns']} ns"
            )
    if report["race_count"] == 0:
        lines.append("  no unordered conflicting accesses: the schedule is race-free")
    return "\n".join(lines)
