"""Critical-path profiling: where did the end-to-end time go?

Walks the happens-before graph backward from the run's last event,
always stepping to the latest-finishing predecessor, which yields the
chain of events that actually bounded the run's makespan.  The walk then
replays that chain forward and attributes every nanosecond of the span
``[path start, run end]`` to one bucket:

* ``exec_ns`` — time inside task spans on the path (callback execution);
* ``queue_ns`` — task queueing delay (a ready task waiting behind the
  thread's previous task), carved out of the gap before each span from
  its recorded ``queue_delay_ns``;
* ``kernel_ns`` — kernel pacing overhead: the confirm→dispatch latency
  of kernel events on the path (the cost JSKernel adds to hold events to
  their predicted grid times);
* ``wait_ns`` — everything else: timers pending, network in flight,
  simulated think time.

The four buckets sum exactly to ``total_ns`` by construction.
"""

from __future__ import annotations

from typing import List, Optional

from .hbgraph import HBGraph, build_hb_graph, run_pids


def _critical_path(graph: HBGraph) -> List:
    """Backward walk from the latest-finishing event, forward order."""
    if not graph.events:
        return []
    terminal = max(graph.events, key=lambda e: (e.end_ts, e.index))
    path = [terminal]
    node = terminal
    while node.preds:
        node = max((graph.events[i] for i in node.preds), key=lambda e: (e.end_ts, e.index))
        path.append(node)
    path.reverse()
    return path


def profile_events(events: List[dict], pid: Optional[int] = None) -> dict:
    """Critical-path latency breakdown for one run (JSON-shaped)."""
    graph = build_hb_graph(events, pid=pid)
    path = _critical_path(graph)
    if not path:
        return {
            "pid": graph.pid,
            "total_ns": 0,
            "exec_ns": 0,
            "queue_ns": 0,
            "kernel_ns": 0,
            "wait_ns": 0,
            "path_events": 0,
            "steps": [],
        }

    start = path[0].ts
    end = path[-1].end_ts
    exec_ns = queue_ns = kernel_ns = wait_ns = 0
    steps = []
    prev_end = start
    for node in path:
        gap = max(node.ts - prev_end, 0)
        carved = 0
        raw = node.raw
        if raw.get("ph") == "X":
            carved = min(raw.get("args", {}).get("queue_delay_ns", 0), gap)
            queue_ns += carved
        elif raw.get("cat") == "kernel-event" and raw.get("ph") == "e":
            carved = min(raw.get("args", {}).get("dispatch_latency_ns", 0), gap)
            kernel_ns += carved
        wait_ns += gap - carved
        contrib = max(node.end_ts - max(node.ts, prev_end), 0)
        if raw.get("ph") == "X":
            exec_ns += contrib
        else:
            wait_ns += contrib  # non-span events have zero width anyway
        steps.append(
            {
                "name": node.name,
                "thread": node.thread,
                "ts_ns": node.ts,
                "gap_ns": gap,
                "span_ns": contrib,
            }
        )
        prev_end = max(prev_end, node.end_ts)

    return {
        "pid": graph.pid,
        "total_ns": end - start,
        "exec_ns": exec_ns,
        "queue_ns": queue_ns,
        "kernel_ns": kernel_ns,
        "wait_ns": wait_ns,
        "path_events": len(path),
        "steps": steps,
    }


def profile_scenario(attack_name: str, defense_name: str, seed: int = 0) -> dict:
    """Run a scenario traced and profile every run's critical path."""
    # imported here: scenario -> attacks -> analysis would otherwise cycle
    from .scenario import run_traced_scenario

    tracer, outcome = run_traced_scenario(attack_name, defense_name, seed=seed)
    runs = [profile_events(tracer.events, pid=pid) for pid in run_pids(tracer.events)]
    return {
        "scenario": attack_name,
        "defense": defense_name,
        "seed": seed,
        "outcome": outcome,
        "runs": runs,
    }


def format_critpath(report: dict) -> str:
    """Human-readable rendering of a :func:`profile_scenario` report."""
    lines = [
        f"scenario: {report['scenario']} vs {report['defense']} (seed {report['seed']})",
        f"outcome:  {report['outcome']}",
    ]
    for run in report["runs"]:
        total = run["total_ns"] or 1
        lines.append(
            f"  run {run['pid']}: {run['total_ns']} ns end-to-end over "
            f"{run['path_events']} path events"
        )
        for bucket, label in (
            ("exec_ns", "callback execution"),
            ("queue_ns", "task queueing"),
            ("kernel_ns", "kernel overhead"),
            ("wait_ns", "waiting (timers/network)"),
        ):
            value = run[bucket]
            lines.append(f"    {label:<26} {value:>12} ns  ({100.0 * value / total:5.1f}%)")
    return "\n".join(lines)
