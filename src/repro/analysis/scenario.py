"""Run one (attack, defense) scenario under a trace capture.

The analysis commands (races / determinism / critpath) all start the same
way: pick a Table I scenario, run it once under a fresh
:class:`~repro.trace.tracer.Tracer`, and hand the capture to the
analyser.  Timing attacks are run as a single trial (one browser, one
measurement) so the capture contains exactly one run; CVE attacks run
their full triggering sequence.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..attacks.base import TimingAttack
from ..attacks.registry import create as create_attack
from ..errors import ReproError
from ..runtime.rng import hash_seed
from ..trace import Tracer, capture


def run_traced_scenario(
    attack_name: str,
    defense_name: str,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
) -> Tuple[Tracer, str]:
    """Run ``attack_name`` against ``defense_name`` once, traced.

    Returns ``(tracer, outcome)`` where ``outcome`` summarises how the
    scenario ended (``"completed"``, ``"leak obtained"``, ``"crash: ..."``
    — CVE attacks absorb their crash internally and report it in the
    result detail).

    ``tracer`` lets a caller supply a pre-configured capture (e.g. one
    with sketch recording enabled — see
    :func:`repro.explore.oracles.traced_run`); by default a fresh
    enabled tracer is created, the historical behaviour.
    """
    attack = create_attack(attack_name)
    if tracer is None:
        tracer = Tracer(enabled=True)
    with capture(tracer):
        try:
            if isinstance(attack, TimingAttack):
                # one trial per secret: both code paths of the channel run
                # (e.g. the cached AND the network-bound branch), each in
                # its own browser/run within the capture
                for secret in (attack.secret_a, attack.secret_b):
                    attack.run_trial(
                        defense_name,
                        secret,
                        hash_seed(seed, f"analyze:{attack_name}:{defense_name}:{secret}"),
                    )
                outcome = "completed"
            else:
                result = attack.run(defense_name, seed=seed)
                outcome = result.detail or ("triggered" if result.success else "defended")
        except ReproError as exc:
            # crashes escaping a non-CVE path are still analysable: the
            # capture holds everything emitted up to the crash
            outcome = f"{type(exc).__name__}: {exc}"
    return tracer, outcome
