"""Measurement analysis: statistics, distinguishability, table rendering."""

from .distinguish import (
    SUCCESS_ACCURACY,
    SUCCESS_T_STAT,
    best_threshold_accuracy,
    distinguishable,
    held_out_accuracy,
    welch_t,
)
from .stats import (
    cdf_points,
    cosine_similarity,
    mean,
    median,
    percentile,
    stdev,
    summarize,
)
from .tables import render_cdf_summary, render_matrix, render_series, render_table

__all__ = [
    "SUCCESS_ACCURACY",
    "SUCCESS_T_STAT",
    "best_threshold_accuracy",
    "cdf_points",
    "cosine_similarity",
    "distinguishable",
    "held_out_accuracy",
    "mean",
    "median",
    "percentile",
    "render_cdf_summary",
    "render_matrix",
    "render_series",
    "render_table",
    "stdev",
    "summarize",
    "welch_t",
]
