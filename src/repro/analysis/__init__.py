"""Measurement analysis: statistics, distinguishability, table rendering,
and causal analysis over traces (happens-before, races, critical paths).

The determinism auditor lives in :mod:`repro.analysis.determinism` and is
imported directly by its users — pulling it in here would cycle through
:mod:`repro.attacks`, which itself imports this package.
"""

from .critpath import format_critpath, profile_events, profile_scenario
from .distinguish import (
    SUCCESS_ACCURACY,
    SUCCESS_T_STAT,
    best_threshold_accuracy,
    distinguishable,
    held_out_accuracy,
    welch_t,
)
from .hbgraph import HBGraph, build_hb_graph, run_pids
from .races import analyze_races, detect_races, format_races
from .stats import (
    cdf_points,
    cosine_similarity,
    mean,
    median,
    percentile,
    stdev,
    summarize,
)
from .tables import render_cdf_summary, render_matrix, render_series, render_table

__all__ = [
    "HBGraph",
    "SUCCESS_ACCURACY",
    "SUCCESS_T_STAT",
    "analyze_races",
    "best_threshold_accuracy",
    "build_hb_graph",
    "cdf_points",
    "cosine_similarity",
    "detect_races",
    "distinguishable",
    "format_critpath",
    "format_races",
    "held_out_accuracy",
    "mean",
    "median",
    "percentile",
    "profile_events",
    "profile_scenario",
    "render_cdf_summary",
    "render_matrix",
    "render_series",
    "render_table",
    "run_pids",
    "stdev",
    "summarize",
    "welch_t",
]
