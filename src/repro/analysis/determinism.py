"""Determinism auditing: does the schedule depend on the seed?

JSKernel's general policy (paper §III-D2) predicts every event's dispatch
time on the kernel clock's grid, so the cross-thread invocation sequence
is a function of the program alone — network jitter shifts *when* the
browser confirms an event, never *in which order* the kernel dispatches
it.  Baseline browsers dispatch in arrival order, which embeds the
jitter.  The auditor measures exactly that: run one scenario under N
different simulator seeds, extract each run's dispatch schedule, and
count disagreements.

Schedule extraction
-------------------

For each run we build, per thread row, the ordered list of dispatch
records:

* **kernel mode** — when the run contains kernel dispatch legs (``e``
  legs of ``kernel-event`` spans carrying ``predicted_ns``), the schedule
  is ``(event name, predicted_ns)`` per kernel row.  Predicted times come
  from the kernel clock only, so two seeds must produce identical lists.
* **task mode** — otherwise (baseline browsers) the schedule is
  ``(task label, start ts)`` per thread from the ``X`` task spans.  Real
  timestamps embed network jitter, so differing seeds diverge.

The divergence score between two runs is the number of positions at
which their per-row schedules disagree (missing rows count their full
length); the report also pinpoints the first divergent position.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .hbgraph import run_pids
from .scenario import run_traced_scenario

Schedule = Dict[str, List[Tuple[str, int]]]


def extract_schedule(events: List[dict], pid: int) -> Schedule:
    """The dispatch schedule of one run, keyed by thread row."""
    kernel: Schedule = {}
    tasks: Schedule = {}
    for raw in events:
        if raw.get("pid") != pid:
            continue
        ph = raw.get("ph")
        if (
            ph == "e"
            and raw.get("cat") == "kernel-event"
            and "predicted_ns" in raw.get("args", {})
        ):
            kernel.setdefault(raw["thread"], []).append(
                (raw["name"], raw["args"]["predicted_ns"])
            )
        elif ph == "X":
            tasks.setdefault(raw["thread"], []).append((raw["name"], raw["ts"]))
    # a kernelised run is judged by its kernel schedule alone: task spans
    # still carry real (jitter-shifted) times even when dispatch order is
    # deterministic, which is precisely what the kernel abstracts away
    return kernel if kernel else tasks


def schedule_divergence(a: Schedule, b: Schedule) -> Tuple[int, Optional[dict]]:
    """(score, first divergence point) between two schedules."""
    score = 0
    first: Optional[dict] = None

    def note(row: str, position: int, got, expected) -> None:
        nonlocal first
        if first is None:
            first = {"row": row, "position": position, "a": got, "b": expected}

    for row in sorted(set(a) | set(b)):
        seq_a = a.get(row, [])
        seq_b = b.get(row, [])
        for i in range(max(len(seq_a), len(seq_b))):
            entry_a = seq_a[i] if i < len(seq_a) else None
            entry_b = seq_b[i] if i < len(seq_b) else None
            if entry_a != entry_b:
                score += 1
                note(row, i, entry_a, entry_b)
    return score, first


def schedule_for_seed(
    attack_name: str, defense_name: str, seed: int
) -> Tuple[Dict[str, List[List]], str]:
    """One audit shard: run a scenario under ``seed``, extract its schedule.

    Returns ``(schedule, outcome)`` with every schedule entry in
    **list form** (``[name, value]`` instead of a tuple) so the result is
    JSON-pure: the parallel harness ships shards across process
    boundaries and the result cache round-trips them through JSON, and a
    cached shard must compare equal to a freshly computed one.
    """
    tracer, outcome = run_traced_scenario(attack_name, defense_name, seed=seed)
    merged: Dict[str, List[List]] = {}
    for pid in run_pids(tracer.events):
        for row, seq in extract_schedule(tracer.events, pid).items():
            # attacks build one browser per run here, so rows are
            # unique per pid; keep pid out of the key so runs align
            merged.setdefault(row, []).extend(list(entry) for entry in seq)
    return merged, outcome


def combine_schedules(
    attack_name: str,
    defense_name: str,
    seeds: Sequence[int],
    schedules: Sequence[Schedule],
    outcomes: Sequence[str],
) -> dict:
    """Fold per-seed schedules into one audit report.

    The first seed's schedule is the reference; every other seed is
    scored against it.  ``divergence`` is the total across seeds — 0
    means the invocation sequence is seed-independent.
    """
    reference = schedules[0]
    per_seed = []
    total = 0
    first_divergence: Optional[dict] = None
    for seed, schedule in zip(seeds[1:], schedules[1:]):
        score, first = schedule_divergence(reference, schedule)
        total += score
        if first is not None and first_divergence is None:
            first_divergence = dict(first, seed=seed)
        per_seed.append({"seed": seed, "divergence": score})

    return {
        "scenario": attack_name,
        "defense": defense_name,
        "seeds": list(seeds),
        "reference_seed": seeds[0],
        "schedule_rows": len(reference),
        "schedule_length": sum(len(seq) for seq in reference.values()),
        "outcomes": list(outcomes),
        "per_seed": per_seed,
        "divergence": total,
        "deterministic": total == 0,
        "first_divergence": first_divergence,
    }


def audit_scenario(
    attack_name: str,
    defense_name: str,
    seeds: Tuple[int, ...] = (0, 1, 2),
) -> dict:
    """Run a scenario once per seed and compare dispatch schedules."""
    if len(seeds) < 2:
        raise ValueError("determinism audit needs at least two seeds")
    schedules: List[Schedule] = []
    outcomes: List[str] = []
    for seed in seeds:
        schedule, outcome = schedule_for_seed(attack_name, defense_name, seed)
        schedules.append(schedule)
        outcomes.append(outcome)
    return combine_schedules(attack_name, defense_name, seeds, schedules, outcomes)


def format_audit(report: dict) -> str:
    """Human-readable rendering of an :func:`audit_scenario` report."""
    lines = [
        f"scenario:   {report['scenario']} vs {report['defense']}",
        f"seeds:      {report['seeds']} (reference {report['reference_seed']})",
        f"schedule:   {report['schedule_length']} dispatches over "
        f"{report['schedule_rows']} rows",
        f"divergence: {report['divergence']} "
        f"({'deterministic' if report['deterministic'] else 'seed-dependent'})",
    ]
    for entry in report["per_seed"]:
        lines.append(f"  seed {entry['seed']}: divergence {entry['divergence']}")
    first = report["first_divergence"]
    if first is not None:
        lines.append(
            f"  first divergence: seed {first['seed']}, row {first['row']!r} "
            f"position {first['position']}: {first['a']} != {first['b']}"
        )
    return "\n".join(lines)
