"""Small statistics toolbox used by the harnesses.

Kept dependency-light (pure Python) so the library works without numpy;
the benchmark harnesses only need means, spreads, CDF points and the
cosine similarity of the compatibility experiment (§V-B2).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median (raises on empty input)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0 for n < 2)."""
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100
    low = int(math.floor(pos))
    high = int(math.ceil(pos))
    if low == high:
        return ordered[low]
    frac = pos - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) pairs."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def cosine_similarity(a: str, b: str) -> float:
    """Cosine similarity of two strings' token frequency vectors.

    Tokenisation splits on angle brackets and whitespace, which is what
    the paper's DOM-serialisation comparison effectively sees.
    """
    vec_a = _token_vector(a)
    vec_b = _token_vector(b)
    if not vec_a or not vec_b:
        return 1.0 if vec_a == vec_b else 0.0
    dot = sum(vec_a[t] * vec_b.get(t, 0) for t in vec_a)
    norm_a = math.sqrt(sum(c * c for c in vec_a.values()))
    norm_b = math.sqrt(sum(c * c for c in vec_b.values()))
    if norm_a == 0 or norm_b == 0:
        return 1.0 if norm_a == norm_b else 0.0
    return dot / (norm_a * norm_b)


def _token_vector(text: str) -> Counter:
    tokens = (
        text.replace("<", " <")
        .replace(">", "> ")
        .split()
    )
    return Counter(tokens)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean/median/stdev/min/max bundle for report rows."""
    return {
        "mean": mean(values),
        "median": median(values),
        "stdev": stdev(values),
        "min": min(values),
        "max": max(values),
        "n": float(len(values)),
    }
