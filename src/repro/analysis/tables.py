"""Text renderers for the paper's tables and figures.

Benchmarks print these so a run's output can be placed side by side with
the paper (EXPERIMENTS.md records both).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

CHECK = "+"
CROSS = "x"


def render_matrix(
    matrix: Dict[str, Dict[str, bool]],
    defenses: Sequence[str],
    expected: Dict[str, Dict[str, bool]] = None,
) -> str:
    """Render a Table-I-style defended/vulnerable matrix.

    ``+`` = defense prevents the attack, ``x`` = vulnerable; a trailing
    ``!`` marks disagreement with the expected matrix.
    """
    name_width = max(len(name) for name in matrix) + 2
    col_width = max(max(len(d) for d in defenses) + 1, 4)
    header = " " * name_width + "".join(d.ljust(col_width) for d in defenses)
    lines = [header]
    for attack, row in matrix.items():
        cells = []
        for defense in defenses:
            mark = CHECK if row[defense] else CROSS
            if expected is not None and expected[attack][defense] != row[defense]:
                mark += "!"
            cells.append(mark.ljust(col_width))
        lines.append(attack.ljust(name_width) + "".join(cells))
    return "\n".join(lines)


def render_table(
    headers: Sequence[str],
    rows: List[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple fixed-width table."""
    widths = [len(h) for h in headers]
    formatted_rows = []
    for row in rows:
        cells = [_fmt(cell) for cell in row]
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        formatted_rows.append(cells)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in formatted_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_series(series: Dict[str, List[Tuple[float, float]]], title: str = "") -> str:
    """Render (x, y) series — the Figure 2 size sweep shape."""
    lines = [title] if title else []
    for name, points in series.items():
        rendered = ", ".join(f"({x:g}, {y:.2f})" for x, y in points)
        lines.append(f"  {name}: {rendered}")
    return "\n".join(lines)


def render_cdf_summary(series: Dict[str, List[float]], title: str = "") -> str:
    """Summarise CDF series by percentiles (Figure 3 in text form)."""
    from .stats import percentile

    headers = ["config", "p10", "p50", "p90", "max"]
    rows = []
    for name, values in series.items():
        rows.append(
            [
                name,
                percentile(values, 10),
                percentile(values, 50),
                percentile(values, 90),
                max(values),
            ]
        )
    return render_table(headers, rows, title=title)
