"""Attack-success metric: can the adversary distinguish two secrets?

A timing attack yields a *measurement* per trial.  The defense evaluation
(DESIGN.md §6) declares the attack successful when a simple threshold
classifier, trained and evaluated on the paired trial measurements for
secret A vs secret B, reaches accuracy ≥ :data:`SUCCESS_ACCURACY`.

This matches how the paper argues: "an adversary can still average the
results of 25 runs and differentiate two images" — averaging is exactly
what the threshold classifier over multi-trial means captures.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


#: Classifier accuracy at which we call an attack successful.
SUCCESS_ACCURACY = 0.75


def best_threshold_accuracy(samples_a: Sequence[float], samples_b: Sequence[float]) -> float:
    """Best achievable accuracy of a single-threshold classifier.

    Considers both orientations (A below/above the threshold) and every
    midpoint between adjacent distinct values.
    """
    if not samples_a or not samples_b:
        raise ValueError("need samples for both secrets")
    points: List[Tuple[float, int]] = [(v, 0) for v in samples_a] + [
        (v, 1) for v in samples_b
    ]
    points.sort(key=lambda p: p[0])
    total = len(points)
    count_a = len(samples_a)
    best = 0.5
    # sweep thresholds: below-threshold classified as A (then as B).
    # A threshold is only realisable BETWEEN two distinct values, so ties
    # must be skipped — otherwise identical samples score accuracy 1.0.
    a_below = 0
    b_below = 0
    for i, (value, label) in enumerate(points):
        if label == 0:
            a_below += 1
        else:
            b_below += 1
        if i + 1 < total and points[i + 1][0] == value:
            continue  # cannot cut between equal values
        if i + 1 == total:
            break  # threshold above everything classifies all one way
        correct_a_below = a_below + (len(samples_b) - b_below)
        correct_b_below = b_below + (count_a - a_below)
        best = max(best, correct_a_below / total, correct_b_below / total)
    return best


def held_out_accuracy(samples_a: Sequence[float], samples_b: Sequence[float]) -> float:
    """Cross-validated threshold accuracy (guards against overfitting).

    The threshold and orientation are chosen on the even-indexed trials
    and scored on the odd-indexed trials.  Pure noise therefore scores
    near 0.5 instead of the inflated in-sample optimum.
    """
    train_a, test_a = samples_a[0::2], samples_a[1::2]
    train_b, test_b = samples_b[0::2], samples_b[1::2]
    if not train_a or not train_b or not test_a or not test_b:
        return best_threshold_accuracy(samples_a, samples_b)
    threshold, a_is_below = _fit_threshold(train_a, train_b)
    correct = 0
    for value in test_a:
        correct += 1 if (value <= threshold) == a_is_below else 0
    for value in test_b:
        correct += 1 if (value <= threshold) != a_is_below else 0
    return correct / (len(test_a) + len(test_b))


def _fit_threshold(samples_a: Sequence[float], samples_b: Sequence[float]) -> Tuple[float, bool]:
    points = sorted([(v, 0) for v in samples_a] + [(v, 1) for v in samples_b],
                    key=lambda p: p[0])
    total = len(points)
    count_a = len(samples_a)
    best = (points[0][0] - 1.0, True, 0.5)
    a_below = 0
    b_below = 0
    for i, (value, label) in enumerate(points):
        if label == 0:
            a_below += 1
        else:
            b_below += 1
        if i + 1 >= total or points[i + 1][0] == value:
            continue
        cut = (value + points[i + 1][0]) / 2
        acc_a_below = (a_below + (len(samples_b) - b_below)) / total
        acc_b_below = (b_below + (count_a - a_below)) / total
        if acc_a_below > best[2]:
            best = (cut, True, acc_a_below)
        if acc_b_below > best[2]:
            best = (cut, False, acc_b_below)
    return best[0], best[1]


def welch_t(samples_a: Sequence[float], samples_b: Sequence[float]) -> float:
    """Welch's t-statistic — the averaging adversary's test.

    Averaging over repeated runs defeats zero-mean noise but not
    determinism: a genuine mean separation yields a large |t|, identical
    deterministic measurements yield 0, and pure noise stays small.
    Degenerate zero-variance cases: equal constants -> 0, different
    constants -> infinity.
    """
    from .stats import mean as _mean, stdev as _stdev

    mu_a, mu_b = _mean(samples_a), _mean(samples_b)
    var_a = _stdev(samples_a) ** 2
    var_b = _stdev(samples_b) ** 2
    se = math.sqrt(var_a / len(samples_a) + var_b / len(samples_b))
    if se == 0:
        return 0.0 if mu_a == mu_b else float("inf")
    return abs(mu_a - mu_b) / se


#: |t| at which the averaging adversary wins.
SUCCESS_T_STAT = 4.0


def distinguishable(
    samples_a: Sequence[float],
    samples_b: Sequence[float],
    group_size: int = 5,  # kept for API compatibility
    threshold: float = SUCCESS_ACCURACY,
) -> bool:
    """The Table I success criterion for timing attacks.

    Success if EITHER the single-trial adversary wins (held-out threshold
    classifier accuracy >= ``threshold``) OR the averaging adversary wins
    (Welch |t| >= :data:`SUCCESS_T_STAT`) — mirroring the paper's "an
    adversary can still average the results of 25 runs".
    """
    accuracy = held_out_accuracy(samples_a, samples_b)
    t_stat = welch_t(samples_a, samples_b)
    return accuracy >= threshold or t_stat >= SUCCESS_T_STAT
