"""Happens-before graphs over trace captures.

Builds a partial order of trace events for one run (one ``pid``) from the
causal structure the runtime and kernel record:

* **program order** — events attributed to the same simulated thread (or
  the same ``native:...`` dispatch context) are totally ordered;
* **message edges** — a ``postMessage`` instant happens-before the
  ``message.receive`` carrying the same ``flow`` id;
* **promise edges** — a cross-thread ``promise.settle`` happens-before
  every ``promise.reaction`` carrying its ``flow`` id;
* **worker lifecycle** — ``worker.spawn`` joins the spawning thread's row
  to the worker's row; ``worker.terminate`` orders only within the
  *terminating* thread (the worker row keeps running tasks that causally
  precede the termination, so chaining it there would invent edges);
* **kernel lifecycle** — the ``b``/``n``/``e`` legs of one kernel event
  span (registration → confirmation → dispatch/cancel) are chained, and
  each leg also orders within the thread that performed it (``ctx``);
* **lock edges** — a ``lock.release`` happens-before the next
  ``lock.acquired`` on the same lock object (ownership is reserved for
  the woken waiter at release time, so the pairing is exact); this is
  what makes the race detector lock-set aware: accesses inside two
  critical sections of one lock are always ordered;
* **wait/notify edges** — ``atomics.notify`` happens-before every
  ``atomics.wake`` it causes, via the notify's fresh ``flow`` id (the
  generic flow machinery below).

Soundness rests on an emission-order invariant of the tracer: within one
row, emission order is program order, and every cross-row edge recorded
by the runtime points forward in emission order.  The builder therefore
makes a single pass over ``tracer.events`` and, for a candidate pair
``(i, j)`` with ``i`` emitted first, only ``happens_before(i, j)`` ever
needs to be queried.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

#: Instant names that join the row named by ``args["ctx"]`` *in addition
#: to* (spawn) or *instead of* (terminate) their display row.
_SPAWN_NAMES = ("worker.spawn", "kthread.spawn")
_TERMINATE_NAMES = ("worker.terminate", "kthread.terminate")


class HBEvent:
    """One trace event plus its position in the happens-before graph."""

    __slots__ = ("index", "raw", "preds")

    def __init__(self, index: int, raw: dict):
        self.index = index
        self.raw = raw
        #: Indices of immediate happens-before predecessors.
        self.preds: List[int] = []

    @property
    def name(self) -> str:
        return self.raw.get("name", "")

    @property
    def thread(self) -> str:
        return self.raw.get("thread", "")

    @property
    def ts(self) -> int:
        return self.raw.get("ts", 0)

    @property
    def args(self) -> dict:
        return self.raw.get("args", {})

    @property
    def end_ts(self) -> int:
        """Span end for ``X`` events; ``ts`` otherwise."""
        return self.ts + self.raw.get("dur", 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HBEvent #{self.index} {self.name!r} on {self.thread!r} @{self.ts}>"


class HBGraph:
    """The happens-before relation for one run of a capture."""

    def __init__(self, pid: int, events: List[HBEvent]):
        self.pid = pid
        self.events = events
        self._reach_cache: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    def happens_before(self, i: int, j: int) -> bool:
        """True when event ``i`` causally precedes event ``j``.

        Requires ``i < j`` to be meaningful (the emission-order invariant
        guarantees no edge ever points backward).
        """
        if i == j:
            return False
        return i in self._ancestors(j)

    def ordered(self, i: int, j: int) -> bool:
        """True when ``i`` and ``j`` are ordered either way."""
        lo, hi = (i, j) if i < j else (j, i)
        return self.happens_before(lo, hi)

    def _ancestors(self, j: int) -> Set[int]:
        cached = self._reach_cache.get(j)
        if cached is not None:
            return cached
        seen: Set[int] = set()
        stack = list(self.events[j].preds)
        while stack:
            k = stack.pop()
            if k in seen:
                continue
            seen.add(k)
            stack.extend(self.events[k].preds)
        self._reach_cache[j] = seen
        return seen

    # ------------------------------------------------------------------
    def edge_count(self) -> int:
        """Total number of direct edges (debug/reporting)."""
        return sum(len(e.preds) for e in self.events)

    def end_time(self) -> int:
        """Latest timestamp (span ends included) in the run."""
        return max((e.end_ts for e in self.events), default=0)


def _chain(rows: Dict[str, int], row: str, node: HBEvent) -> None:
    """Append ``node`` to ``row``'s program-order chain."""
    prev = rows.get(row)
    if prev is not None and prev != node.index:
        node.preds.append(prev)
    rows[row] = node.index


def build_hb_graph(events: List[dict], pid: Optional[int] = None) -> HBGraph:
    """Build the happens-before graph for one run.

    ``events`` is ``tracer.events`` (or a parsed Chrome trace's
    ``traceEvents`` in original order); ``pid`` selects the run, defaulting
    to the first pid that appears.
    """
    if pid is None:
        for raw in events:
            if raw.get("ph") != "M":
                pid = raw["pid"]
                break
        else:
            return HBGraph(0, [])

    nodes: List[HBEvent] = []
    rows: Dict[str, int] = {}  # row name -> index of last event on it
    flow_heads: Dict[int, int] = {}  # flow id -> index of the cause event
    span_tails: Dict[Tuple[str, int], int] = {}  # (row, span id) -> last leg
    lock_releases: Dict[str, int] = {}  # lock obj -> index of last release

    for raw in events:
        if raw.get("pid") != pid or raw.get("ph") == "M":
            continue
        node = HBEvent(len(nodes), raw)
        nodes.append(node)
        name = node.name
        args = node.args
        ctx = args.get("ctx", "")

        if raw.get("cat") == "kernel-event":
            # one kernel event's b/n/e legs form a chain of their own,
            # plus each leg orders within the thread that performed it
            key = (node.thread, raw.get("id", 0))
            prev = span_tails.get(key)
            if prev is not None:
                node.preds.append(prev)
            span_tails[key] = node.index
            if ctx:
                _chain(rows, ctx, node)
            continue

        if name in _TERMINATE_NAMES:
            # orders only in the terminator's context: the worker row may
            # still run tasks that causally precede the terminate call
            _chain(rows, ctx or node.thread, node)
            continue

        if name in _SPAWN_NAMES:
            _chain(rows, ctx or node.thread, node)
            _chain(rows, node.thread, node)
        else:
            _chain(rows, node.thread, node)

        if name == "lock.acquired":
            prev_release = lock_releases.get(args.get("obj", ""))
            if prev_release is not None:
                node.preds.append(prev_release)
        elif name == "lock.release":
            lock_releases[args.get("obj", "")] = node.index

        flow = args.get("flow", 0)
        if flow:
            cause = flow_heads.get(flow)
            if cause is None:
                flow_heads[flow] = node.index
            elif cause != node.index:
                node.preds.append(cause)

    return HBGraph(pid, nodes)


def run_pids(events: List[dict]) -> List[int]:
    """All run pids present in a capture, in first-appearance order."""
    seen: List[int] = []
    for raw in events:
        if raw.get("ph") == "M":
            continue
        pid = raw.get("pid")
        if pid not in seen:
            seen.append(pid)
    return seen
