"""Live stderr progress for matrix / cube / fuzz / bench runs (``--live``).

A campaign used to run dark until it returned; the reporter repaints a
single status line as cells complete::

    cube  137/200 cells  68%  41.8 cells/s  cache 12% hit  shard 5/13  \
q-delay p50 1.4us p95 52.0us  eta 0:02

Throughput, cache hit-rate and ETA come from the run's own accounting;
the running p50/p95 queue delay comes from the telemetry sketches
merged so far — the same mergeable-sketch substrate the final snapshot
uses, so the live numbers converge on the exported ones.  Rendering is
throttled (default 5 Hz) and goes to **stderr**, so piping a command's
stdout stays clean.  Everything here is wall-clock and cosmetic: the
reporter never influences the deterministic artifacts.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO

__all__ = ["LiveReporter", "format_duration", "format_ns"]


def format_ns(value: Optional[float]) -> str:
    """Human-scale rendering of a virtual-nanosecond quantity."""
    if value is None:
        return "-"
    if value >= 1e9:
        return f"{value / 1e9:.1f}s"
    if value >= 1e6:
        return f"{value / 1e6:.1f}ms"
    if value >= 1e3:
        return f"{value / 1e3:.1f}us"
    return f"{value:.0f}ns"


def format_duration(seconds: float) -> str:
    """``m:ss`` (or ``h:mm:ss``) rendering of a wall-clock duration."""
    seconds = max(0, int(seconds))
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class LiveReporter:
    """Repaints one ``\\r``-terminated status line as a run progresses.

    Driven by the ambient :class:`~repro.telemetry.run.RunTelemetry`:
    the engine calls :meth:`update` after every cell (serial) or chunk
    (parallel) completion, and the session calls :meth:`finish` once,
    which forces a final repaint and a newline.  ``now`` is injectable
    for tests.

    When the stream is **not a TTY** (CI logs, ``2>file``) the
    ``\\r``-overwrite trick would concatenate every repaint into one
    unreadable multi-kilobyte line, so the reporter detects
    ``stream.isatty()`` and falls back to newline-delimited updates
    throttled at ``noninteractive_interval`` (default one line every
    5 s instead of 5 Hz).  ``interactive`` overrides the detection.
    """

    def __init__(
        self,
        command: str,
        stream: Optional[TextIO] = None,
        interval: float = 0.2,
        now: Callable[[], float] = time.monotonic,
        interactive: Optional[bool] = None,
        noninteractive_interval: float = 5.0,
    ):
        self.command = command
        self.stream = stream if stream is not None else sys.stderr
        if interactive is None:
            try:
                interactive = bool(self.stream.isatty())
            except (AttributeError, ValueError, OSError):
                interactive = False
        self.interactive = interactive
        self.interval = interval if interactive else max(interval, noninteractive_interval)
        self.now = now
        self.started = now()
        self._last_render = 0.0
        self._last_width = 0
        self.renders = 0

    # ------------------------------------------------------------------
    def update(self, telemetry, force: bool = False) -> None:
        """Repaint if the throttle interval elapsed (or ``force``)."""
        moment = self.now()
        if not force and moment - self._last_render < self.interval:
            return
        self._last_render = moment
        self._render(telemetry, moment)

    def finish(self, telemetry) -> None:
        """Final repaint plus a newline so the shell prompt stays clean."""
        self._render(telemetry, self.now())
        if not self.interactive:
            return  # newline-delimited mode: every line already ends in \n
        try:
            self.stream.write("\n")
            self.stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed stream
            pass

    # ------------------------------------------------------------------
    def _render(self, telemetry, moment: float) -> None:
        elapsed = max(moment - self.started, 1e-9)
        engine = telemetry.engine
        done = engine["cached"] + engine["computed"]
        total = max(telemetry.total_cells, done)
        rate = done / elapsed
        parts = [
            f"{self.command}",
            f"{done}/{total} cells" + (f"  {done * 100 // total}%" if total else ""),
            f"{rate:.1f} cells/s",
        ]
        if done:
            parts.append(f"cache {engine['cached'] * 100 // done}% hit")
        if engine["errors"]:
            parts.append(f"errors {engine['errors']}")
        shards = telemetry.shards
        if shards["total"]:
            parts.append(f"shard {shards['done']}/{shards['total']}")
        quantiles = telemetry.queue_delay_quantiles()
        if quantiles:
            parts.append(
                f"q-delay p50 {format_ns(quantiles.get('p50'))} "
                f"p95 {format_ns(quantiles.get('p95'))}"
            )
        remaining = total - done
        if remaining > 0 and rate > 0:
            parts.append(f"eta {format_duration(remaining / rate)}")
        line = "  ".join(parts)
        self.renders += 1
        try:
            if self.interactive:
                padding = " " * max(self._last_width - len(line), 0)
                self._last_width = len(line)
                self.stream.write("\r" + line + padding)
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed stream
            pass
