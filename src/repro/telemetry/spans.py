"""Wall-clock spans and the structured JSONL run log.

The PR-1 tracer observes *virtual* time inside one simulation; this
module observes the **harness itself**: how long a matrix, cube or fuzz
campaign actually took, per shard and per cell, on the wall clock.  A
:class:`SpanRecorder` appends one JSON object per line to a run log
(``RUN_<cmd>.jsonl`` by default), and :func:`span` wraps any block in a
begin/end pair with parent linkage, so the log reconstructs the
harness's own execution tree — engine runs, shard lifecycles, cell
outcomes, cache hits — without touching the deterministic artifacts.

Context propagation is a :class:`contextvars.ContextVar`, so spans nest
correctly across threads (each thread sees its own current span), and
process safety comes from line-granular appends: every record is a
single short ``write()`` to a file opened in append mode, which POSIX
keeps atomic, so pool workers share the parent's log file by path (the
``REPRO_RUNLOG`` environment variable) without interleaving bytes.
Records carry ``pid`` and per-process span ids, so readers key spans by
``(pid, span)``.

Wall-clock values never flow into the deterministic telemetry snapshot
— the run log is the one artifact that is *expected* to differ between
machines.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Optional

__all__ = [
    "RUNLOG_ENV",
    "SpanRecorder",
    "current_recorder",
    "point",
    "set_recorder",
    "span",
    "worker_recorder",
]

#: Environment variable carrying the run-log path into pool workers.
RUNLOG_ENV = "REPRO_RUNLOG"

#: The current span id within this thread/task (None at top level).
_CURRENT_SPAN: contextvars.ContextVar[Optional[int]] = contextvars.ContextVar(
    "repro_telemetry_span", default=None
)


class SpanRecorder:
    """Appends structured JSONL records to one run-log file.

    Every record has ``ev`` (the record type), ``ts`` (epoch seconds)
    and ``pid``; span records add ``span``/``parent``/``name`` and end
    records a wall ``dur_s``.  The recorder is thread-safe (one lock
    around each append) and each line is a single write, so multiple
    processes appending to the same path never tear each other's lines.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._next_span = 1
        self._handle = open(path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    def emit(self, ev: str, **fields: Any) -> None:
        """Append one record; never raises into the harness."""
        record: Dict[str, Any] = {"ev": ev, "ts": time.time(), "pid": os.getpid()}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)
        try:
            with self._lock:
                if self._handle.closed:
                    return
                self._handle.write(line + "\n")
                self._handle.flush()
        except OSError:  # pragma: no cover - disk-full etc.: telemetry only
            pass

    def point(self, name: str, **attrs: Any) -> None:
        """One instant event (a cell outcome, a cache hit)."""
        self.emit("point", name=name, parent=_CURRENT_SPAN.get(), attrs=attrs)

    @contextmanager
    def span(self, name: str, **attrs: Any):
        """Wrap a block in a begin/end pair with parent linkage."""
        with self._lock:
            span_id = self._next_span
            self._next_span += 1
        parent = _CURRENT_SPAN.get()
        started = time.perf_counter()
        self.emit("span_begin", name=name, span=span_id, parent=parent, attrs=attrs)
        token = _CURRENT_SPAN.set(span_id)
        try:
            yield span_id
        finally:
            _CURRENT_SPAN.reset(token)
            self.emit(
                "span_end",
                name=name,
                span=span_id,
                parent=parent,
                dur_s=round(time.perf_counter() - started, 6),
            )

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


# ----------------------------------------------------------------------
# the ambient recorder (parent process: set by the telemetry session;
# pool workers: recreated from $REPRO_RUNLOG on demand)
# ----------------------------------------------------------------------
_active: Optional[SpanRecorder] = None


def set_recorder(recorder: Optional[SpanRecorder]) -> Optional[SpanRecorder]:
    """Install the ambient recorder; returns the previous one."""
    global _active
    previous = _active
    _active = recorder
    return previous


def current_recorder() -> Optional[SpanRecorder]:
    """The ambient recorder, or ``None`` when no run log is active."""
    return _active


def worker_recorder() -> Optional[SpanRecorder]:
    """The recorder a pool worker should use, from ``$REPRO_RUNLOG``.

    Workers inherit the parent's run-log *path* through the environment
    (recorder objects hold file handles and locks, so they never cross
    the process boundary).  Returns the ambient recorder when one is
    already installed in this process and still matches the inherited
    path; otherwise opens the path once and **installs it as the
    ambient recorder**, so a worker that runs many chunks appends
    through one cached file handle instead of opening a new descriptor
    per chunk.  Returns ``None`` when no path is inherited.
    """
    global _active
    path = os.environ.get(RUNLOG_ENV, "")
    if _active is not None and (not path or _active.path == path):
        return _active
    if not path:
        return None
    try:
        recorder = SpanRecorder(path)
    except OSError:  # pragma: no cover - unwritable path: telemetry only
        return None
    _active = recorder
    return recorder


@contextmanager
def span(name: str, **attrs: Any):
    """``with span("cube.cell", attack=...)``: no-op without a recorder.

    The harness is instrumented unconditionally; the cost without an
    active run log is one global load and one branch.
    """
    recorder = _active
    if recorder is None:
        yield None
        return
    with recorder.span(name, **attrs) as span_id:
        yield span_id


def point(name: str, **attrs: Any) -> None:
    """Instant-event counterpart of :func:`span` (no-op without recorder)."""
    recorder = _active
    if recorder is not None:
        recorder.point(name, **attrs)
