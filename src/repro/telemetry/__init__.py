"""Campaign telemetry: mergeable sketches, wall-clock spans, live reporting.

The deterministic tracer (:mod:`repro.trace`) observes virtual time
*inside* a simulation; this package observes the harness *around* it:

* :mod:`repro.telemetry.sketch` — mergeable quantile sketch and metric
  set with exact, associative merge algebra (byte-identical snapshots
  across ``--parallel`` worker counts for integer observations);
* :mod:`repro.telemetry.spans` — wall-clock spans and the structured
  JSONL run log (``RUN_<cmd>.jsonl``);
* :mod:`repro.telemetry.reporter` — the ``--live`` stderr progress line;
* :mod:`repro.telemetry.export` — JSON and Prometheus-text exporters
  for the final merged snapshot (``--telemetry-out``);
* :mod:`repro.telemetry.run` — the per-command session tying these
  together and the ambient :func:`current_run` the engine consults.
"""

from .reporter import LiveReporter, format_duration, format_ns
from .run import QUEUE_DELAY_PREFIX, RunTelemetry, current_run, telemetry_session
from .sketch import DEFAULT_QUANTILES, MetricSet, QuantileSketch
from .spans import (
    RUNLOG_ENV,
    SpanRecorder,
    current_recorder,
    point,
    set_recorder,
    span,
    worker_recorder,
)
from .export import prometheus_lines, render_prometheus, render_summary, write_telemetry

__all__ = [
    "DEFAULT_QUANTILES",
    "LiveReporter",
    "MetricSet",
    "QUEUE_DELAY_PREFIX",
    "QuantileSketch",
    "RUNLOG_ENV",
    "RunTelemetry",
    "SpanRecorder",
    "current_recorder",
    "current_run",
    "format_duration",
    "format_ns",
    "point",
    "prometheus_lines",
    "render_prometheus",
    "render_summary",
    "set_recorder",
    "span",
    "telemetry_session",
    "worker_recorder",
]
