"""Mergeable quantile sketches and the mergeable metric set built on them.

The campaign layer needs Figure-3-style percentiles (queue-delay CDFs,
dispatch latencies) over runs far too large to keep every sample in
memory — the ROADMAP's million-page sweep, a 200-cell cube, a fuzz
campaign.  :class:`QuantileSketch` is a t-digest-style sketch: a bounded
set of weighted centroids, each summarising the samples that fell near
it, merged by centroid-wise addition and queried by interpolating
between centroid means.  Unlike a classical t-digest (whose centroid
positions depend on insertion history), centroids here sit at
**deterministic log-spaced positions** (DDSketch-style indices
``ceil(log_gamma |v|)`` with ``gamma = (1+accuracy)/(1-accuracy)``),
which buys the property the parallel engine's determinism contract
requires: **merging is exactly associative and commutative** — for
integer observations the serialized sketch is byte-identical no matter
how the sample stream was partitioned across workers.  Each centroid
stores its exact weight and exact sum (Python integers never round), so
a centroid's mean is the true mean of its samples.

Error model
-----------

A centroid at index ``k`` covers values in ``(gamma^(k-1), gamma^k]``,
so any sample and its centroid mean differ by at most a factor
``gamma`` (~``2*accuracy`` relative).  ``quantile(q)`` returns the mean
of the centroid containing the sample of rank ``q*(count-1)`` — never
interpolating *across* centroids, which would smear heavy ties — so the
estimate has **zero rank error** and at most ``~2*accuracy`` relative
value error versus the exact sample at that rank.
``tests/test_telemetry_sketch.py`` pins this against exact numpy
percentiles under hypothesis.

The **compression bound** ``max_centroids`` caps memory: when exceeded,
the smallest-magnitude centroids collapse into their neighbour
(cheapest place to lose resolution for latency-style data, where the
action is in the upper quantiles).  Collapsing preserves exact counts
and sums, but a collapse performed mid-stream can land weight on a
different neighbour than one performed at the end — so byte-identical
re-partitioning is guaranteed only while the bound is never exceeded.
With the defaults (``accuracy 0.005``, ``max_centroids 4096``) a
nanosecond-scale distribution spanning twelve decades fits without
ever collapsing, so in practice the bound is a memory backstop, not a
code path.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

__all__ = ["QuantileSketch", "MetricSet", "DEFAULT_QUANTILES"]

#: Quantiles reported by :meth:`QuantileSketch.quantiles` by default.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.95, 0.99)


class QuantileSketch:
    """A mergeable quantile sketch over a stream of numbers.

    ``accuracy`` is the relative value resolution (0.005 = 0.5%);
    ``max_centroids`` is the compression bound on live centroids.
    Centroids are kept in two stores keyed by log-scale index — one for
    positive and one for negative values — plus an exact count of
    zeros, so the full real line is supported even though telemetry
    values are typically non-negative virtual nanoseconds.
    """

    __slots__ = (
        "accuracy",
        "max_centroids",
        "_log_gamma",
        "count",
        "total",
        "min",
        "max",
        "zero",
        "pos",
        "neg",
    )

    def __init__(self, accuracy: float = 0.005, max_centroids: int = 4096):
        if not 0.0 < accuracy < 1.0:
            raise ValueError(f"accuracy must be in (0, 1), got {accuracy}")
        if max_centroids < 8:
            raise ValueError(f"max_centroids must be >= 8, got {max_centroids}")
        self.accuracy = accuracy
        self.max_centroids = int(max_centroids)
        self._log_gamma = math.log((1.0 + accuracy) / (1.0 - accuracy))
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.zero = 0
        #: index -> [weight, sum] (exact, ints stay ints)
        self.pos: Dict[int, List] = {}
        self.neg: Dict[int, List] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _index(self, magnitude: float) -> int:
        """Deterministic log-scale centroid index for ``magnitude > 0``."""
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def add(self, value: Union[int, float], weight: int = 1) -> None:
        """Fold one observation (optionally weighted) into the sketch."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.count += weight
        self.total += value * weight
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value == 0:
            self.zero += weight
            return
        store = self.pos if value > 0 else self.neg
        index = self._index(value if value > 0 else -value)
        slot = store.get(index)
        if slot is None:
            store[index] = [weight, value * weight]
            if len(self.pos) + len(self.neg) > self.max_centroids:
                self._collapse()
        else:
            slot[0] += weight
            slot[1] += value * weight

    def _collapse(self) -> None:
        """Fold smallest-magnitude centroids upward until within bound.

        Victims are always the lowest indices (values nearest zero), and
        their weight and exact sum move into the next-lowest index of
        the same store — so the collapsed state depends only on *which*
        centroids exist, never on the order they were created, which is
        what keeps merging associative.
        """
        while len(self.pos) + len(self.neg) > self.max_centroids:
            # pick the store whose smallest index is smaller (tie: pos),
            # i.e. the centroid closest to zero overall
            candidates = []
            if self.pos:
                candidates.append((min(self.pos), self.pos))
            if self.neg:
                candidates.append((min(self.neg), self.neg))
            index, store = min(candidates, key=lambda pair: pair[0])
            if len(store) < 2:
                # a store cannot collapse below one centroid; fold the
                # other store instead (it must be the oversized one)
                store = self.neg if store is self.pos else self.pos
                index = min(store)
            weight, total = store.pop(index)
            target = min(key for key in store if key > index)
            slot = store[target]
            slot[0] += weight
            slot[1] += total

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def merge(self, other: Union["QuantileSketch", dict]) -> "QuantileSketch":
        """Fold another sketch (or its :meth:`to_dict` form) into this one.

        Centroid-wise addition: exactly associative and commutative, and
        byte-identical under re-partitioning for integer observations.
        Accuracies must match (centroid indices are only comparable on
        the same log grid).
        """
        if isinstance(other, dict):
            other = QuantileSketch.from_dict(other)
        if other.accuracy != self.accuracy:
            raise ValueError(
                f"cannot merge sketches with different accuracies: "
                f"{self.accuracy} != {other.accuracy}"
            )
        if other.count == 0:
            return self
        self.count += other.count
        self.total += other.total
        if self.min is None or (other.min is not None and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None and other.max > self.max):
            self.max = other.max
        self.zero += other.zero
        for store, theirs in ((self.pos, other.pos), (self.neg, other.neg)):
            for index, (weight, total) in theirs.items():
                slot = store.get(index)
                if slot is None:
                    store[index] = [weight, total]
                else:
                    slot[0] += weight
                    slot[1] += total
        self.max_centroids = min(self.max_centroids, other.max_centroids)
        if len(self.pos) + len(self.neg) > self.max_centroids:
            self._collapse()
        return self

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def _ordered_centroids(self) -> Iterator[Tuple[float, int]]:
        """Yield ``(mean, weight)`` in ascending value order."""
        for index in sorted(self.neg, reverse=True):
            weight, total = self.neg[index]
            yield total / weight, weight
        if self.zero:
            yield 0.0, self.zero
        for index in sorted(self.pos):
            weight, total = self.pos[index]
            yield total / weight, weight

    def quantile(self, q: float) -> Optional[float]:
        """Estimated value at quantile ``q`` (``None`` on an empty sketch).

        Returns the mean of the centroid containing the sample of rank
        ``q * (count - 1)``, clamped to the exact observed ``[min,
        max]``.  Interpolating *between* centroid means would smear
        heavy ties (a 99%-zeros distribution would report a nonzero
        median), so the estimate stays inside one centroid: zero rank
        error, value correct to the sketch's ``~2*accuracy``
        resolution.
        """
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if q == 0.0:
            return float(self.min)
        if q == 1.0:
            return float(self.max)
        rank = q * (self.count - 1)
        cumulative = 0
        for mean, weight in self._ordered_centroids():
            cumulative += weight
            if rank < cumulative:
                return float(min(max(mean, self.min), self.max))
        return float(self.max)

    def quantiles(
        self, qs: Iterable[float] = DEFAULT_QUANTILES
    ) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p95": ...}`` for each requested quantile."""
        out: Dict[str, Optional[float]] = {}
        for q in qs:
            label = f"p{q * 100:g}".replace(".", "_")
            out[label] = self.quantile(q)
        return out

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def centroid_count(self) -> int:
        """Live centroids (bounded by ``max_centroids``)."""
        return len(self.pos) + len(self.neg) + (1 if self.zero else 0)

    # ------------------------------------------------------------------
    # serialization (canonical: JSON-pure, sorted, ints stay ints)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "accuracy": self.accuracy,
            "max_centroids": self.max_centroids,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "zero": self.zero,
            "neg": [[index, *self.neg[index]] for index in sorted(self.neg)],
            "pos": [[index, *self.pos[index]] for index in sorted(self.pos)],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileSketch":
        sketch = cls(
            accuracy=data["accuracy"], max_centroids=data["max_centroids"]
        )
        sketch.count = data["count"]
        sketch.total = data["sum"]
        sketch.min = data["min"]
        sketch.max = data["max"]
        sketch.zero = data["zero"]
        sketch.neg = {index: [weight, total] for index, weight, total in data["neg"]}
        sketch.pos = {index: [weight, total] for index, weight, total in data["pos"]}
        return sketch

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<QuantileSketch n={self.count} centroids={self.centroid_count()} "
            f"min={self.min} max={self.max}>"
        )


class MetricSet:
    """A mergeable set of named counters, gauges, histograms and sketches.

    The aggregation unit of a telemetry run: each worker (or serial
    cell) produces a :meth:`~repro.trace.MetricsRegistry.snapshot`
    and the parent folds those snapshots into one ``MetricSet`` **in
    shard order**, so the merged result equals a serial run's and — for
    integer observations — is byte-identical no matter how cells were
    chunked across workers.  Counters and histogram buckets add; gauges
    are last-write-wins (shard order reproduces the serial final
    value); sketches merge by centroid addition.
    """

    def __init__(self):
        self.counters: Dict[str, Union[int, float]] = {}
        self.gauges: Dict[str, float] = {}
        #: name -> histogram snapshot dict (bounds/counts/sum/count/...)
        self.histograms: Dict[str, dict] = {}
        self.sketches: Dict[str, QuantileSketch] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter decrement: {amount}")
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: Union[int, float]) -> None:
        """Record one sample into the named sketch (created on first use)."""
        sketch = self.sketches.get(name)
        if sketch is None:
            sketch = self.sketches[name] = QuantileSketch()
        sketch.add(value)

    # ------------------------------------------------------------------
    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold one metrics snapshot (registry or MetricSet form) in."""
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauges[name] = value
        for name, data in snapshot.get("histograms", {}).items():
            have = self.histograms.get(name)
            if have is None:
                self.histograms[name] = {
                    "bounds": list(data["bounds"]),
                    "counts": list(data["counts"]),
                    "sum": data["sum"],
                    "count": data["count"],
                    "min": data["min"],
                    "max": data["max"],
                }
                continue
            if list(have["bounds"]) != list(data["bounds"]):
                raise ValueError(
                    f"histogram {name!r} bucket mismatch: "
                    f"{have['bounds']} != {data['bounds']}"
                )
            have["counts"] = [a + b for a, b in zip(have["counts"], data["counts"])]
            have["sum"] += data["sum"]
            have["count"] += data["count"]
            if data["count"]:
                have["min"] = (
                    data["min"] if have["min"] is None else min(have["min"], data["min"])
                )
                have["max"] = (
                    data["max"] if have["max"] is None else max(have["max"], data["max"])
                )
        for name, data in snapshot.get("sketches", {}).items():
            sketch = self.sketches.get(name)
            if sketch is None:
                self.sketches[name] = QuantileSketch.from_dict(
                    data if isinstance(data, dict) else data.to_dict()
                )
            else:
                sketch.merge(data)

    def merged_sketch(self, prefix: str) -> Optional[QuantileSketch]:
        """Merge every sketch whose name starts with ``prefix``.

        Returns ``None`` when no matching sketch holds any samples.
        Merging happens on a fresh sketch — the stored ones are never
        mutated by a read.
        """
        merged: Optional[QuantileSketch] = None
        for name in sorted(self.sketches):
            if not name.startswith(prefix):
                continue
            sketch = self.sketches[name]
            if sketch.count == 0:
                continue
            if merged is None:
                merged = QuantileSketch(
                    accuracy=sketch.accuracy, max_centroids=sketch.max_centroids
                )
            merged.merge(sketch)
        return merged

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical plain-dict dump, keys sorted for determinism."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "histograms": {
                name: dict(self.histograms[name]) for name in sorted(self.histograms)
            },
            "sketches": {
                name: self.sketches[name].to_dict() for name in sorted(self.sketches)
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricSet":
        out = cls()
        out.merge_snapshot(data)
        return out
