"""Exporters for the final merged telemetry snapshot (``--telemetry-out``).

Two formats from the same :meth:`~repro.telemetry.run.RunTelemetry.report`
document:

* **JSON** — the report itself, pretty-printed; the deterministic
  sections (``engine``/``cache``/``metrics``) are byte-stable across
  worker counts, the ``run`` section carries the wall clock.
* **Prometheus text exposition** — counters, gauges, histograms (with
  the cumulative ``le`` buckets ending in ``+Inf``) and summary-style
  quantiles derived from the sketches, ready for a pushgateway or a
  textfile collector.  Metric names are sanitised into the
  ``repro_<name>`` namespace.

``--telemetry-out report.json`` writes both: the JSON at the given path
and the Prometheus text next to it (``report.prom``).
"""

from __future__ import annotations

import json
import os
import re
from typing import List, Optional, Tuple

from .sketch import DEFAULT_QUANTILES, QuantileSketch

__all__ = [
    "prometheus_lines",
    "render_prometheus",
    "render_summary",
    "write_telemetry",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    """``eventloop.queue_delay_ns.main`` → ``repro_eventloop_queue_delay_ns_main``."""
    return "repro_" + _NAME_RE.sub("_", name)


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        return repr(value)
    return str(value)


def prometheus_lines(report: dict) -> List[str]:
    """The Prometheus text-exposition lines for one telemetry report."""
    lines: List[str] = []

    def emit(name: str, kind: str, help_text: str, samples):
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for suffix, labels, value in samples:
            label_str = ""
            if labels:
                inner = ",".join(f'{key}="{val}"' for key, val in labels)
                label_str = "{" + inner + "}"
            lines.append(f"{name}{suffix}{label_str} {_prom_value(value)}")

    engine = report.get("engine", {})
    for key in sorted(engine):
        emit(
            f"repro_engine_{key}",
            "counter",
            f"Experiment engine {key} this run.",
            [("", (), engine[key])],
        )
    cache = report.get("cache", {})
    for key in sorted(cache):
        emit(
            f"repro_cache_{key}",
            "counter",
            f"Result cache {key} this run.",
            [("", (), cache[key])],
        )

    metrics = report.get("metrics", {})
    for name in sorted(metrics.get("counters", {})):
        emit(
            _prom_name(name),
            "counter",
            f"Merged counter {name}.",
            [("", (), metrics["counters"][name])],
        )
    for name in sorted(metrics.get("gauges", {})):
        emit(
            _prom_name(name),
            "gauge",
            f"Merged gauge {name}.",
            [("", (), metrics["gauges"][name])],
        )
    for name in sorted(metrics.get("histograms", {})):
        snap = metrics["histograms"][name]
        bounds = snap.get("bounds", ())
        counts = snap.get("counts", ())
        samples = []
        cumulative = 0
        for bound, count in zip(bounds, counts):
            cumulative += count
            samples.append(("_bucket", (("le", _prom_value(float(bound))),), cumulative))
        cumulative += counts[len(bounds)] if len(counts) > len(bounds) else 0
        samples.append(("_bucket", (("le", "+Inf"),), cumulative))
        samples.append(("_count", (), snap.get("count", cumulative)))
        samples.append(("_sum", (), snap.get("sum", 0)))
        emit(
            _prom_name(name),
            "histogram",
            f"Merged histogram {name} (upper edges inclusive).",
            samples,
        )
    for name in sorted(metrics.get("sketches", {})):
        sketch = QuantileSketch.from_dict(metrics["sketches"][name])
        samples = [
            ("", (("quantile", f"{q:g}"),), sketch.quantile(q))
            for q in DEFAULT_QUANTILES
        ]
        samples.append(("_count", (), sketch.count))
        samples.append(("_sum", (), sketch.total))
        emit(
            _prom_name(name) + "_sketch",
            "summary",
            f"Sketch-derived quantiles for {name} (accuracy {sketch.accuracy:g}).",
            samples,
        )

    run = report.get("run", {})
    if run.get("duration_s") is not None:
        emit(
            "repro_run_duration_seconds",
            "gauge",
            "Wall-clock duration of this run.",
            [("", (), run["duration_s"])],
        )
    return lines


def render_prometheus(report: dict) -> str:
    return "\n".join(prometheus_lines(report)) + "\n"


def render_summary(report: dict) -> str:
    """One-paragraph closing summary printed after ``--telemetry-out``."""
    engine = report.get("engine", {})
    run = report.get("run", {})
    parts = [
        f"cells={engine.get('cells', 0)}",
        f"computed={engine.get('computed', 0)}",
        f"cached={engine.get('cached', 0)}",
    ]
    if engine.get("errors"):
        parts.append(f"errors={engine['errors']}")
    if run.get("duration_s") is not None:
        parts.append(f"duration={run['duration_s']:.2f}s")
    quantiles = run.get("queue_delay_quantiles") or {}
    if quantiles.get("p50") is not None:
        parts.append(
            "queue-delay p50={:.0f}ns p95={:.0f}ns".format(
                quantiles["p50"], quantiles.get("p95") or 0.0
            )
        )
    return "telemetry: " + " ".join(parts)


def write_telemetry(report: dict, json_path: str) -> Tuple[str, Optional[str]]:
    """Write the JSON report and its Prometheus sibling; return both paths."""
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    base, _ = os.path.splitext(json_path)
    prom_path = base + ".prom"
    with open(prom_path, "w", encoding="utf-8") as handle:
        handle.write(render_prometheus(report))
    return json_path, prom_path
