"""The telemetry session: one run's merged, memory-bounded observability.

A :class:`RunTelemetry` is installed ambiently by
:func:`telemetry_session` (the CLI's ``--live`` / ``--telemetry-out`` /
``--runlog`` flags) and fed by the experiment engine:

* every cell completion (cached or computed) bumps the **engine**
  accounting and drives the live reporter;
* every worker/cell metrics snapshot is folded into one
  :class:`~repro.telemetry.sketch.MetricSet` **in shard order** — so
  the merged counters, histograms and quantile sketches equal a serial
  run's, byte-identically for a fixed seed regardless of the worker
  count, and the parent never holds more than one snapshot's centroids
  at a time (never a raw sample list);
* cache traffic (hits / misses / stores) is mirrored from the
  :class:`~repro.harness.cache.ResultCache`'s own counters, so the
  final artifact answers "how warm was this run" without
  double-counting the ``cache.*`` counters some captures also carry
  (the ``metrics`` section keeps only runtime metrics; engine and cache
  accounting live in their own sections).

:meth:`RunTelemetry.snapshot` is the deterministic artifact;
:meth:`RunTelemetry.report` wraps it with the wall-clock ``run``
section (duration, throughput, shard count) that is expected to differ
between machines.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Optional

from .reporter import LiveReporter
from .sketch import MetricSet
from .spans import RUNLOG_ENV, SpanRecorder, set_recorder

__all__ = [
    "RunTelemetry",
    "current_run",
    "telemetry_session",
]

#: Format version of the exported snapshot/report documents.
SNAPSHOT_VERSION = 1

#: Metric-name prefix of the event-loop queue-delay sketches.
QUEUE_DELAY_PREFIX = "eventloop.queue_delay_ns."


class RunTelemetry:
    """Merged telemetry state for one command run."""

    def __init__(
        self,
        command: str,
        reporter: Optional[LiveReporter] = None,
        recorder: Optional[SpanRecorder] = None,
    ):
        self.command = command
        self.reporter = reporter
        self.recorder = recorder
        #: Runtime metrics merged from per-cell/per-worker snapshots.
        self.metrics = MetricSet()
        #: Engine accounting (deterministic for a fixed cell list).
        self.engine: Dict[str, int] = {
            "runs": 0,
            "cells": 0,
            "computed": 0,
            "cached": 0,
            "errors": 0,
        }
        #: Cache traffic mirrored from the ResultCache (deterministic).
        self.cache: Dict[str, int] = {"hits": 0, "misses": 0, "stores": 0}
        #: Shard (chunk) progress — wall-clock-ish: depends on workers.
        self.shards: Dict[str, int] = {"total": 0, "done": 0}
        self.total_cells = 0
        self.started_unix = time.time()
        self._started_perf = time.perf_counter()

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def engine_run_started(self, cells: int, workers: int) -> None:
        self.engine["runs"] += 1
        self.engine["cells"] += cells
        self.total_cells += cells
        if self.recorder is not None:
            self.recorder.point("engine.run", cells=cells, workers=workers)

    def engine_stream_started(self, workers: int) -> None:
        """A streaming run begins; its cell count is unknown up front."""
        self.engine["runs"] += 1
        if self.recorder is not None:
            self.recorder.point("engine.stream", workers=workers)

    def cell_admitted(self, count: int = 1) -> None:
        """A streaming run pulled ``count`` more cells from its iterator."""
        self.engine["cells"] += count
        self.total_cells += count

    def shards_planned(self, count: int) -> None:
        self.shards["total"] += count

    def shard_done(self, index: int, cells: int) -> None:
        self.shards["done"] += 1
        if self.recorder is not None:
            self.recorder.point("engine.shard_merged", shard=index, cells=cells)

    def cell_finished(
        self,
        cell,
        ok: bool,
        cached: bool,
        error: Optional[str] = None,
        emit: bool = True,
    ) -> None:
        """One cell's outcome: accounting, run log, live repaint.

        ``emit=False`` skips the run-log record — the parallel path uses
        it for computed cells, whose records the worker already wrote.
        """
        if cached:
            self.engine["cached"] += 1
        else:
            self.engine["computed"] += 1
        if not ok:
            self.engine["errors"] += 1
        if emit and self.recorder is not None:
            attrs = {"kind": cell.kind, "ok": ok, "cached": cached}
            if error:
                attrs["error"] = error
            self.recorder.point("engine.cell", **attrs)
        if self.reporter is not None:
            self.reporter.update(self)

    def merge_metrics(self, snapshot: dict) -> None:
        """Fold one metrics snapshot in (must be called in shard order)."""
        self.metrics.merge_snapshot(snapshot)

    def record_cache_traffic(self, hits: int, misses: int, stores: int) -> None:
        self.cache["hits"] += hits
        self.cache["misses"] += misses
        self.cache["stores"] += stores

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def queue_delay_quantiles(self) -> Dict[str, float]:
        """Running p50/p95/p99 over every queue-delay sketch merged so far."""
        merged = self.metrics.merged_sketch(QUEUE_DELAY_PREFIX)
        if merged is None:
            return {}
        return {
            "p50": merged.quantile(0.5),
            "p95": merged.quantile(0.95),
            "p99": merged.quantile(0.99),
        }

    def snapshot(self) -> dict:
        """The deterministic merged snapshot (no wall-clock values).

        For a fixed seed and cell list this document is byte-identical
        across ``--parallel`` worker counts (shard-order merging plus
        the sketch's exact integer algebra).
        """
        return {
            "version": SNAPSHOT_VERSION,
            "command": self.command,
            "engine": {key: self.engine[key] for key in sorted(self.engine)},
            "cache": {key: self.cache[key] for key in sorted(self.cache)},
            "metrics": self.metrics.to_dict(),
        }

    def report(self) -> dict:
        """Snapshot plus the wall-clock ``run`` section (the export)."""
        duration = time.perf_counter() - self._started_perf
        done = self.engine["cached"] + self.engine["computed"]
        report = self.snapshot()
        report["run"] = {
            "started_unix": round(self.started_unix, 3),
            "duration_s": round(duration, 6),
            "cells_per_s": round(done / duration, 3) if duration > 0 else None,
            "shards": dict(self.shards),
            "queue_delay_quantiles": self.queue_delay_quantiles() or None,
        }
        return report


# ----------------------------------------------------------------------
# the ambient session
# ----------------------------------------------------------------------
_active: Optional[RunTelemetry] = None


def current_run() -> Optional[RunTelemetry]:
    """The active telemetry run, or ``None`` outside a session."""
    return _active


@contextmanager
def telemetry_session(
    command: str,
    live: bool = False,
    runlog: Optional[str] = None,
    stream=None,
):
    """Install a :class:`RunTelemetry` ambiently for one command run.

    ``live`` attaches a stderr :class:`LiveReporter` (``stream``
    overrides the target, for tests); ``runlog`` opens a
    :class:`SpanRecorder` on that path and exports it to pool workers
    through ``$REPRO_RUNLOG``.  On exit the reporter is finished, the
    run log gains its ``run_end`` record, and the previous ambient
    state is restored.
    """
    global _active
    recorder = SpanRecorder(runlog) if runlog else None
    reporter = LiveReporter(command, stream=stream) if live else None
    telemetry = RunTelemetry(command, reporter=reporter, recorder=recorder)
    previous = _active
    previous_recorder = set_recorder(recorder)
    previous_env = os.environ.get(RUNLOG_ENV)
    if recorder is not None:
        os.environ[RUNLOG_ENV] = recorder.path
        recorder.emit("run_begin", command=command)
    _active = telemetry
    try:
        yield telemetry
    finally:
        _active = previous
        set_recorder(previous_recorder)
        if recorder is not None:
            if previous_env is None:
                os.environ.pop(RUNLOG_ENV, None)
            else:
                os.environ[RUNLOG_ENV] = previous_env
            engine = telemetry.engine
            recorder.emit(
                "run_end",
                command=command,
                cells=engine["cells"],
                computed=engine["computed"],
                cached=engine["cached"],
                errors=engine["errors"],
                duration_s=round(time.perf_counter() - telemetry._started_perf, 6),
            )
            recorder.close()
        if reporter is not None:
            reporter.finish(telemetry)
