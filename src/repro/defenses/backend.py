"""The pluggable defense-backend interface.

A defense used to be a single opaque ``install(browser)`` method; every
mechanism it carried — clock degradation, scheduling changes, worker
replacement, API wrapping — was fused into one mutation soup.  The
backend interface splits that soup into four explicit **capability
slots**, mirroring the interposition surfaces the paper's Table I
defenses actually differ on:

``clock``
    Replace the browser's clock-policy factories (``performance.now``,
    and optionally the animation/media clock).
``scheduler``
    Change *when* asynchronous completions are delivered (pause pumps,
    deterministic delivery grids, kernel two-stage scheduling).
``worker``
    Change the worker / SharedArrayBuffer substrate (polyfills, kernel
    thread managers, SAB counter wrapping).
``scope``
    Everything else reachable through scope interposition: API wrapping
    costs, JS engine slowdown, network shaping, compatibility fragility.

A backend *declares* the capabilities it exercises (``capabilities``)
and *provides* a slot object per capability; :meth:`DefenseBackend.install`
validates that the two agree — a slot covering an undeclared capability
or a declared capability with no covering slot is a :class:`PolicyError`
at install time, not a silent lie in a docstring.  Composite backends
(JSKernel installs everything through one page hook) may declare a
single slot that ``covers`` several capabilities.

Installation is idempotent per browser: installing the same backend
object twice is a no-op, and the first install leaves a receipt on the
browser (``browser.defense_receipts``) recording which slots were
applied — the conformance suite and the cube harness both read it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from ..errors import PolicyError
from .base import Defense

#: The four interposition surfaces, in canonical apply order.
CAPABILITIES: Tuple[str, ...] = ("clock", "scheduler", "worker", "scope")


def _covers(kind: str) -> frozenset:
    return frozenset({kind})


@dataclass(frozen=True)
class ClockSlot:
    """Clock interposition: factories for new-scope clock policies."""

    #: Factory for ``performance.now`` policies (one per scope/thread).
    policy_factory: Callable[[], object]
    #: Factory for the animation/media clock policy; ``None`` keeps the
    #: browser default (exact), which is how Tor stays animation-vulnerable.
    animation_policy_factory: Optional[Callable[[], object]] = None
    covers: frozenset = field(default_factory=lambda: _covers("clock"))


@dataclass(frozen=True)
class SchedulerSlot:
    """Scheduling interposition: hooks that change delivery timing."""

    page_hook: Optional[Callable] = None
    worker_hook: Optional[Callable] = None
    covers: frozenset = field(default_factory=lambda: _covers("scheduler"))


@dataclass(frozen=True)
class WorkerSlot:
    """Worker/SAB interposition: replace the threading substrate."""

    page_hook: Optional[Callable] = None
    worker_hook: Optional[Callable] = None
    covers: frozenset = field(default_factory=lambda: _covers("worker"))


@dataclass(frozen=True)
class ScopeSlot:
    """General scope interposition: wrapping, costs, browser plumbing."""

    #: Runs once against the Browser at install time (network shaping …).
    browser_hook: Optional[Callable] = None
    page_hook: Optional[Callable] = None
    worker_hook: Optional[Callable] = None
    covers: frozenset = field(default_factory=lambda: _covers("scope"))


@dataclass(frozen=True)
class InstallReceipt:
    """What one backend install actually did (stored on the browser)."""

    name: str
    capabilities: frozenset
    slots: Tuple[str, ...]


class DefenseBackend(Defense):
    """A defense expressed as capability slots instead of raw mutation.

    Subclasses declare :attr:`capabilities` and override the slot
    providers they need; the base :meth:`install` validates and applies
    them.  Backends with no capabilities (the legacy browsers) install
    nothing, by construction.
    """

    #: The interposition surfaces this backend exercises.
    capabilities: frozenset = frozenset()

    # -- slot providers (override the ones the backend uses) -----------
    def clock_slot(self, browser) -> Optional[ClockSlot]:
        """The clock interposition this backend performs (or ``None``)."""
        return None

    def scheduler_slot(self, browser) -> Optional[SchedulerSlot]:
        """The scheduling interposition this backend performs."""
        return None

    def worker_slot(self, browser) -> Optional[WorkerSlot]:
        """The worker/SAB interposition this backend performs."""
        return None

    def scope_slot(self, browser) -> Optional[ScopeSlot]:
        """The general scope interposition this backend performs."""
        return None

    # ------------------------------------------------------------------
    def install(self, browser) -> None:
        """Validate slot declarations and apply them (idempotent)."""
        receipts = getattr(browser, "defense_receipts", None)
        if receipts is None:
            receipts = browser.defense_receipts = {}
        if id(self) in receipts:
            return

        unknown = self.capabilities - set(CAPABILITIES)
        if unknown:
            raise PolicyError(
                f"defense {self.name!r} declares unknown capabilities: {sorted(unknown)}"
            )

        providers = (
            ("clock", self.clock_slot),
            ("scheduler", self.scheduler_slot),
            ("worker", self.worker_slot),
            ("scope", self.scope_slot),
        )
        slots = []
        covered = set()
        for kind, provider in providers:
            slot = provider(browser)
            if slot is None:
                continue
            undeclared = slot.covers - self.capabilities
            if undeclared:
                raise PolicyError(
                    f"defense {self.name!r} provides a {kind} slot covering "
                    f"undeclared capabilities: {sorted(undeclared)}"
                )
            slots.append((kind, slot))
            covered |= slot.covers
        missing = self.capabilities - covered
        if missing:
            raise PolicyError(
                f"defense {self.name!r} declares capabilities with no covering "
                f"slot: {sorted(missing)}"
            )

        for kind, slot in slots:
            self._apply(browser, kind, slot)
        receipts[id(self)] = InstallReceipt(
            name=self.name,
            capabilities=frozenset(self.capabilities),
            slots=tuple(kind for kind, _ in slots),
        )

    # ------------------------------------------------------------------
    def _apply(self, browser, kind: str, slot) -> None:
        if kind == "clock":
            browser.clock_policy_factory = slot.policy_factory
            if slot.animation_policy_factory is not None:
                browser.animation_clock_policy_factory = slot.animation_policy_factory
            return
        browser_hook = getattr(slot, "browser_hook", None)
        if browser_hook is not None:
            browser_hook(browser)
        if slot.page_hook is not None:
            browser.page_hooks.append(slot.page_hook)
        if slot.worker_hook is not None:
            browser.worker_hooks.append(slot.worker_hook)
