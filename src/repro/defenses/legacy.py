"""Legacy browsers: Chrome, Firefox, Edge with no extra defense.

"Legacy Three" in Table I: the commercial browsers of the paper's era,
whose only timing defense is their shipped clock resolution (already part
of the :class:`BrowserProfile`).
"""

from __future__ import annotations

from .base import Defense


class LegacyBrowser(Defense):
    """No defense at all; the Table I baseline columns."""

    def __init__(self, browser: str = "chrome"):
        self.base_browser = browser
        self.name = f"legacy-{browser}"

    def install(self, browser) -> None:
        """Nothing to install."""
