"""Legacy browsers: Chrome, Firefox, Edge with no extra defense.

"Legacy Three" in Table I: the commercial browsers of the paper's era,
whose only timing defense is their shipped clock resolution (already part
of the :class:`BrowserProfile`).
"""

from __future__ import annotations

from .backend import DefenseBackend


class LegacyBrowser(DefenseBackend):
    """No defense at all; the Table I baseline columns.

    Declares no capabilities, so the backend base class installs nothing
    — which is the point of the baseline.
    """

    capabilities = frozenset()

    def __init__(self, browser: str = "chrome"):
        self.base_browser = browser
        self.name = f"legacy-{browser}"
