"""Defenses evaluated in the paper's Table I, plus ablation variants."""

from .backend import (
    CAPABILITIES,
    ClockSlot,
    DefenseBackend,
    InstallReceipt,
    SchedulerSlot,
    ScopeSlot,
    WorkerSlot,
)
from .base import Defense, available, create, make_browser, register
from .chromezero import ChromeZero, PolyfillWorkerHandle
from .detbrowser import DetBrowser, DetSharedBuffer
from .deterfox import DeterFox
from .fuzzyfox import Fuzzyfox
from .jskernel_defense import (
    JSKernelDefense,
    JSKernelNoCvePolicies,
    JSKernelNoDeterminism,
)
from .legacy import LegacyBrowser
from .torbrowser import TorBrowser

# The Table I columns.
register("legacy-chrome", lambda: LegacyBrowser("chrome"))
register("legacy-firefox", lambda: LegacyBrowser("firefox"))
register("legacy-edge", lambda: LegacyBrowser("edge"))
register("fuzzyfox", Fuzzyfox)
register("deterfox", DeterFox)
register("tor", TorBrowser)
register("chromezero", ChromeZero)
register("jskernel", JSKernelDefense)
# Ablations (not paper columns).
register("jskernel-nodet", JSKernelNoDeterminism)
register("jskernel-nocve", JSKernelNoCvePolicies)
# The Deterministic Browser head-to-head backend (cube comparison).
register("detbrowser", DetBrowser)

#: The seven defense configurations of Table I, in column order.
TABLE1_DEFENSES = [
    "legacy-chrome",
    "legacy-firefox",
    "legacy-edge",
    "fuzzyfox",
    "deterfox",
    "tor",
    "chromezero",
    "jskernel",
]

#: Default columns of the defense × attack cube: one legacy baseline,
#: the four prior defenses, and the JSKernel/DetBrowser head-to-head.
CUBE_DEFENSES = [
    "legacy-chrome",
    "fuzzyfox",
    "deterfox",
    "tor",
    "chromezero",
    "jskernel",
    "detbrowser",
]

__all__ = [
    "CAPABILITIES",
    "CUBE_DEFENSES",
    "ChromeZero",
    "ClockSlot",
    "Defense",
    "DefenseBackend",
    "DetBrowser",
    "DetSharedBuffer",
    "DeterFox",
    "Fuzzyfox",
    "InstallReceipt",
    "JSKernelDefense",
    "JSKernelNoCvePolicies",
    "JSKernelNoDeterminism",
    "LegacyBrowser",
    "PolyfillWorkerHandle",
    "SchedulerSlot",
    "ScopeSlot",
    "TABLE1_DEFENSES",
    "TorBrowser",
    "WorkerSlot",
    "available",
    "create",
    "make_browser",
    "register",
]
