"""Defenses evaluated in the paper's Table I, plus ablation variants."""

from .base import Defense, available, create, make_browser, register
from .chromezero import ChromeZero, PolyfillWorkerHandle
from .deterfox import DeterFox
from .fuzzyfox import Fuzzyfox
from .jskernel_defense import (
    JSKernelDefense,
    JSKernelNoCvePolicies,
    JSKernelNoDeterminism,
)
from .legacy import LegacyBrowser
from .torbrowser import TorBrowser

# The Table I columns.
register("legacy-chrome", lambda: LegacyBrowser("chrome"))
register("legacy-firefox", lambda: LegacyBrowser("firefox"))
register("legacy-edge", lambda: LegacyBrowser("edge"))
register("fuzzyfox", Fuzzyfox)
register("deterfox", DeterFox)
register("tor", TorBrowser)
register("chromezero", ChromeZero)
register("jskernel", JSKernelDefense)
# Ablations (not paper columns).
register("jskernel-nodet", JSKernelNoDeterminism)
register("jskernel-nocve", JSKernelNoCvePolicies)

#: The seven defense configurations of Table I, in column order.
TABLE1_DEFENSES = [
    "legacy-chrome",
    "legacy-firefox",
    "legacy-edge",
    "fuzzyfox",
    "deterfox",
    "tor",
    "chromezero",
    "jskernel",
]

__all__ = [
    "ChromeZero",
    "Defense",
    "DeterFox",
    "Fuzzyfox",
    "JSKernelDefense",
    "JSKernelNoCvePolicies",
    "JSKernelNoDeterminism",
    "LegacyBrowser",
    "PolyfillWorkerHandle",
    "TABLE1_DEFENSES",
    "TorBrowser",
    "available",
    "create",
    "make_browser",
    "register",
]
