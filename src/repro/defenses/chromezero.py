"""Chrome Zero / JavaScript Zero (Schwarz, Lipp & Gruss, NDSS 2018).

An extension that redefines sensitive APIs:

* explicit clocks become coarse **and noisy** (fuzzy-time heritage) —
  enough to stop clock-edge, not enough to stop attacks that count
  events or that average repeated runs;
* WebWorkers are replaced by a **nonparallel polyfill** running on the
  main thread — which incidentally defeats the worker-*lifecycle* CVEs
  (there is no native worker teardown to race) at the price the paper
  calls out: "reduced functionalities as Chrome Zero only adopts a
  polyfill implementation of a web worker";
* every wrapped call pays a noticeable interposition cost, which is why
  Chrome Zero sits visibly right of Chrome in the Figure 3 CDF while
  JSKernel hugs it.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..errors import SimulationError
from ..runtime.clock import FuzzyClockPolicy
from ..runtime.fetchapi import AbortController, FetchManager
from ..runtime.messaging import MessageEvent
from ..runtime.origin import parse_url, same_origin
from ..runtime.scopes import ErrorEvent, WorkerScope
from ..runtime.simtime import us
from ..runtime.task import TaskSource
from ..runtime.xhr import XMLHttpRequest
from .backend import ClockSlot, DefenseBackend, ScopeSlot, WorkerSlot

#: Sanitised cross-origin error text.
SANITIZED_ERROR = "Script error."


class ChromeZero(DefenseBackend):
    """Noisy clocks + polyfill workers + per-call wrap cost."""

    name = "chromezero"
    base_browser = "chrome"
    capabilities = frozenset({"clock", "worker", "scope"})

    def __init__(
        self,
        clock_resolution_ns: int = us(100),
        clock_noise_ns: int = us(100),
        wrap_cost_ns: int = 15_000,
    ):
        self.clock_resolution_ns = clock_resolution_ns
        self.clock_noise_ns = clock_noise_ns
        self.wrap_cost_ns = wrap_cost_ns

    def clock_slot(self, browser) -> ClockSlot:
        """JavaScript Zero inherits Fuzzyfox's fuzzy-time idea for its
        redefined clocks (coarse AND randomly-updating)."""
        rng = browser.rng.stream("chromezero")
        return ClockSlot(
            policy_factory=lambda: FuzzyClockPolicy(self.clock_resolution_ns, rng)
        )

    def worker_slot(self, browser) -> WorkerSlot:
        """Replace Worker with the nonparallel main-loop polyfill."""

        def polyfill(page) -> None:
            page.scope.Worker = lambda src: PolyfillWorkerHandle(browser, page, src)

        return WorkerSlot(page_hook=polyfill)

    def scope_slot(self, browser) -> ScopeSlot:
        """Proxy-based API wrapping: per-call cost + deoptimised JS."""
        return ScopeSlot(page_hook=lambda page: self._wrap_scope(browser, page))

    # ------------------------------------------------------------------
    def _wrap_scope(self, browser, page) -> None:
        scope = page.scope
        # JS Zero's Proxy-based interposition deoptimises hot code: the
        # paper's own evaluation shows Chrome Zero visibly slower than
        # Chrome on real pages
        scope.js_cost_scale = max(scope.js_cost_scale, 1.4)
        self._wrap_with_cost(browser, scope, "setTimeout")
        self._wrap_with_cost(browser, scope, "setInterval")
        self._wrap_with_cost(browser, scope, "requestAnimationFrame")
        self._wrap_with_cost(browser, scope, "fetch")
        self._wrap_with_cost(browser, scope, "getComputedStyle")

    def _wrap_with_cost(self, browser, scope, attr: str) -> None:
        native = getattr(scope, attr)
        if native is None:
            return
        cost = self.wrap_cost_ns

        def wrapped(*args, **kwargs):
            browser.sim.consume(cost)
            return native(*args, **kwargs)

        setattr(scope, attr, wrapped)


class PolyfillWorkerHandle:
    """Chrome Zero's nonparallel Worker replacement.

    The "worker" is a scope whose tasks run on the *main* event loop.
    There is no native worker object, no native teardown, and no true
    parallelism.
    """

    def __init__(self, browser, page, src):
        self.browser = browser
        self.page = page
        self.onmessage: Optional[Callable[[MessageEvent], None]] = None
        self.onerror: Optional[Callable[[ErrorEvent], None]] = None
        self.terminated = False
        self._scope_onmessage: Optional[Callable[[MessageEvent], None]] = None
        self._pending_until_eval: List[Any] = []
        self._evaluated = False

        self._boot_error: Optional[str] = None
        if callable(src):
            self.script_url = parse_url("/polyfill-worker.js", base=page.base_url)
            body = src
        else:
            self.script_url = parse_url(str(src), base=page.base_url)
            resource = browser.network.lookup(self.script_url)
            body = resource.body if resource is not None else None
            if resource is not None and resource.redirect_to is not None:
                if not same_origin(resource.redirect_to.origin, self.script_url.origin):
                    body = None
                    if browser.profile.has_bug("cve_2010_4576"):
                        self._boot_error = (
                            f"redirect to {resource.redirect_to.serialize()}"
                        )
                    else:
                        self._boot_error = SANITIZED_ERROR

        self.scope = self._build_scope()
        page.loop.post(
            lambda: self._evaluate(body),
            source=TaskSource.WORKER,
            label="polyfill-worker-boot",
        )

    # ------------------------------------------------------------------
    def _build_scope(self):
        browser = self.browser
        page = self.page
        scope = WorkerScope(page.loop, self.script_url.origin, self.script_url)
        handle = self

        fetch_manager = FetchManager(
            page.loop, browser.network, browser.heap, self.script_url, scope.origin
        )
        scope.fetch = fetch_manager.fetch
        scope.AbortController = AbortController
        # main-thread XHR path: the SOP check is NOT skippable here, which
        # is exactly why the polyfill defeats CVE-2013-1714
        scope.XMLHttpRequest = lambda: XMLHttpRequest(
            page.loop, browser.network, self.script_url, scope.origin, enforce_sop=True
        )
        scope.importScripts = self._import_scripts
        scope.close = self.terminate
        scope.SharedArrayBuffer = browser.make_shared_buffer
        scope.set_raw("postMessage", self._post_to_parent)
        scope.define_setter_trap(
            "onmessage", lambda fn: setattr(handle, "_scope_onmessage", fn)
        )
        return scope

    def _evaluate(self, body) -> None:
        if self.terminated:
            return
        try:
            if self._boot_error is not None:
                raise SimulationError(self._boot_error)
            if body is None:
                raise SimulationError(f"cannot load {self.script_url.serialize()}")
            body(self.scope)
        except Exception as exc:
            self._fire_error(str(exc))
        self._evaluated = True
        for event in self._pending_until_eval:
            self._deliver_to_scope(event)
        self._pending_until_eval = []

    def _import_scripts(self, url: str) -> None:
        browser = self.browser
        target = parse_url(url, base=self.script_url)
        cross = not same_origin(target.origin, self.scope.origin)
        resource = browser.network.lookup(target)
        browser.sim.consume(browser.network.base_latency_ns)
        if resource is None or isinstance(resource.body, Exception):
            if cross and not browser.profile.has_bug("cve_2015_7215"):
                raise SimulationError(SANITIZED_ERROR)
            raise SimulationError(f"importScripts failed for {target.serialize()}")
        if callable(resource.body):
            resource.body(self.scope)

    # ------------------------------------------------------------------
    # messaging (all on the main loop)
    # ------------------------------------------------------------------
    def postMessage(self, data: Any, transfer: Optional[list] = None) -> None:
        """Main -> polyfill worker (just another main-loop task)."""
        if self.terminated:
            return
        if transfer:
            for item in transfer:
                detach = getattr(item, "detach", None)
                if detach is not None:
                    detach()
        event = MessageEvent(data, origin=self.page.origin.serialize())
        if not self._evaluated:
            self._pending_until_eval.append(event)
            return
        self.page.loop.post(
            self._deliver_to_scope, event,
            source=TaskSource.MESSAGE, label="polyfill-msg-in",
        )

    def _deliver_to_scope(self, event: MessageEvent) -> None:
        if self.terminated:
            return
        if self._scope_onmessage is not None:
            self._scope_onmessage(event)

    def _post_to_parent(self, data: Any, transfer: Optional[list] = None) -> None:
        if self.terminated:
            return
        views = []
        for item in transfer or []:
            make_view = getattr(item, "transferred_view", None)
            if make_view is not None:
                views.append(make_view())
            detach = getattr(item, "detach", None)
            if detach is not None:
                detach()
        event = MessageEvent(
            data, origin=self.scope.origin.serialize(), transferred=views
        )

        def deliver() -> None:
            if not self.terminated and self.onmessage is not None:
                self.onmessage(event)

        self.page.loop.post(deliver, source=TaskSource.MESSAGE, label="polyfill-msg-out")

    def _fire_error(self, message: str) -> None:
        cross = not same_origin(self.script_url.origin, self.page.origin)
        if cross and not self.browser.profile.has_bug("cve_2014_1487"):
            message = SANITIZED_ERROR

        def deliver() -> None:
            if self.onerror is not None:
                self.onerror(ErrorEvent(message, filename=self.script_url.serialize()))

        self.page.loop.post(deliver, source=TaskSource.WORKER, label="polyfill-onerror")

    def terminate(self) -> None:
        """No native teardown exists; just stop delivering."""
        self.terminated = True

    @property
    def state(self) -> str:
        """Lifecycle state mirroring the native handle's API."""
        return "terminated" if self.terminated else "running"
