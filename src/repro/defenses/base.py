"""Defense interface and registry.

A defense is anything installable into a :class:`Browser` before pages
exist: it may swap the clock-policy factory, hook page/worker creation,
or replace API implementations.  The registry maps the paper's Table I
column names to factories so the matrix harness can iterate them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import UnknownDefenseError
from ..runtime.browser import Browser
from ..runtime.profiles import BrowserProfile, by_name, vulnerable


class Defense:
    """Base defense: does nothing (legacy browser)."""

    #: Registry/report name.
    name = "none"
    #: Which browser the defense ships on (None = any).
    base_browser: Optional[str] = None

    def install(self, browser: Browser) -> None:
        """Apply the defense to a freshly constructed browser."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Defense {self.name}>"


_registry: Dict[str, Callable[[], Defense]] = {}


def register(name: str, factory: Callable[[], Defense]) -> None:
    """Add a defense factory to the registry."""
    _registry[name] = factory


def create(name: str) -> Defense:
    """Instantiate a registered defense.

    Raises :class:`~repro.errors.UnknownDefenseError` (a ``KeyError``
    subclass) listing :func:`available` backends for unknown names.
    """
    factory = _registry.get(name)
    if factory is None:
        raise UnknownDefenseError(name, available())
    return factory()


def available() -> List[str]:
    """All registered defense names."""
    return sorted(_registry)


def make_browser(
    defense_name: str,
    browser_name: str = "chrome",
    seed: int = 0,
    with_bugs: bool = True,
) -> Browser:
    """Build a browser running a defense, as the Table I setup does.

    ``with_bugs=True`` uses the vulnerable legacy profile (the paper
    downloads the vulnerable browser build and layers the defense on it).
    """
    defense = create(defense_name)
    base = defense.base_browser or browser_name
    profile: BrowserProfile = vulnerable(base) if with_bugs else by_name(base)
    return Browser(profile=profile, defense=defense, seed=seed)
