"""JSKernel wired into the defense registry.

Thin adapter: the real implementation lives in :mod:`repro.kernel`.  The
registry exposes three variants used by the benchmarks:

* ``jskernel`` — the full system (deterministic scheduling + all CVE
  policies), the Table I column;
* ``jskernel-nodet`` — CVE policies only (ablation: timing attacks
  return);
* ``jskernel-nocve`` — deterministic scheduling only (ablation: CVEs
  return).
"""

from __future__ import annotations

from ..kernel.jskernel import JSKernel
from ..kernel.policies import DeterministicSchedulingPolicy, all_cve_policies
from .backend import DefenseBackend, SchedulerSlot, ScopeSlot


class JSKernelDefense(DefenseBackend):
    """The full JSKernel extension.

    The kernel is a *composite* installer: one page hook injects a
    :class:`~repro.kernel.jskernel.JSKernelInstance` that replaces the
    clocks, routes every async delivery through the two-stage scheduler,
    takes over the worker substrate and wraps the remaining APIs — so a
    single scheduler slot ``covers`` all four capabilities.
    """

    name = "jskernel"
    base_browser = None  # browser-agnostic: deployable on all three
    capabilities = frozenset({"clock", "scheduler", "worker", "scope"})

    def __init__(self, kernel: JSKernel = None):
        self.kernel = kernel or JSKernel()

    def scheduler_slot(self, browser) -> SchedulerSlot:
        """Install the kernel into every page of the browser."""
        return SchedulerSlot(
            page_hook=self.kernel.install_into_page,
            covers=frozenset({"clock", "scheduler", "worker", "scope"}),
        )

    def scope_slot(self, browser) -> ScopeSlot:
        """Expose the kernel on the browser (audit/debug surface)."""
        return ScopeSlot(
            browser_hook=lambda b: setattr(b, "jskernel", self.kernel)
        )


class JSKernelNoDeterminism(JSKernelDefense):
    """Ablation: CVE policies without deterministic scheduling."""

    name = "jskernel-nodet"

    def __init__(self):
        super().__init__(JSKernel(policies=all_cve_policies()))


class JSKernelNoCvePolicies(JSKernelDefense):
    """Ablation: deterministic scheduling without CVE policies."""

    name = "jskernel-nocve"

    def __init__(self):
        super().__init__(JSKernel(policies=[DeterministicSchedulingPolicy()]))
