"""JSKernel wired into the defense registry.

Thin adapter: the real implementation lives in :mod:`repro.kernel`.  The
registry exposes three variants used by the benchmarks:

* ``jskernel`` — the full system (deterministic scheduling + all CVE
  policies), the Table I column;
* ``jskernel-nodet`` — CVE policies only (ablation: timing attacks
  return);
* ``jskernel-nocve`` — deterministic scheduling only (ablation: CVEs
  return).
"""

from __future__ import annotations

from ..kernel.jskernel import JSKernel
from ..kernel.policies import DeterministicSchedulingPolicy, all_cve_policies
from .base import Defense


class JSKernelDefense(Defense):
    """The full JSKernel extension."""

    name = "jskernel"
    base_browser = None  # browser-agnostic: deployable on all three

    def __init__(self, kernel: JSKernel = None):
        self.kernel = kernel or JSKernel()

    def install(self, browser) -> None:
        """Install the kernel into every page of the browser."""
        self.kernel.install(browser)
        browser.jskernel = self.kernel


class JSKernelNoDeterminism(JSKernelDefense):
    """Ablation: CVE policies without deterministic scheduling."""

    name = "jskernel-nodet"

    def __init__(self):
        super().__init__(JSKernel(policies=all_cve_policies()))


class JSKernelNoCvePolicies(JSKernelDefense):
    """Ablation: deterministic scheduling without CVE policies."""

    name = "jskernel-nocve"

    def __init__(self):
        super().__init__(JSKernel(policies=[DeterministicSchedulingPolicy()]))
