"""Fuzzyfox (Kohlbrenner & Shacham, USENIX Security 2016).

Two mechanisms, both randomized:

* **fuzzy clocks** — every explicit clock reports a value that only moves
  forward at randomised instants (:class:`FuzzyClockPolicy`), killing the
  clock-edge attack;
* **pause tasks** — randomly sized pause tasks are injected into every
  event loop, degrading every *implicit* clock into a noisy one.  Noise,
  unlike determinism, can be averaged away — which is why Table I still
  marks Fuzzyfox vulnerable to most implicit-clock attacks, and why the
  paper's Figure 3 shows it among the slowest configurations.
"""

from __future__ import annotations

from ..runtime.clock import FuzzyClockPolicy
from ..runtime.simtime import ms
from ..runtime.task import TaskSource
from .backend import ClockSlot, DefenseBackend, SchedulerSlot, ScopeSlot


class Fuzzyfox(DefenseBackend):
    """Fuzzy time + event-loop pause tasks (Firefox variant)."""

    name = "fuzzyfox"
    base_browser = "firefox"
    capabilities = frozenset({"clock", "scheduler", "scope"})

    def __init__(
        self,
        fuzz_resolution_ns: int = ms(1),
        pause_interval_ns: int = ms(1),
        pause_max_cost_ns: int = ms(8),
    ):
        self.fuzz_resolution_ns = fuzz_resolution_ns
        self.pause_interval_ns = pause_interval_ns
        self.pause_max_cost_ns = pause_max_cost_ns

    def clock_slot(self, browser) -> ClockSlot:
        """Fuzzy clocks on every time source, animation/media included."""
        rng = browser.rng.stream("fuzzyfox")
        return ClockSlot(
            policy_factory=lambda: FuzzyClockPolicy(self.fuzz_resolution_ns, rng),
            animation_policy_factory=lambda: FuzzyClockPolicy(
                self.fuzz_resolution_ns, rng
            ),
        )

    def scheduler_slot(self, browser) -> SchedulerSlot:
        """Pause pumps degrade implicit clocks on every event loop."""
        return SchedulerSlot(
            page_hook=lambda page: self._start_pump(browser, page.loop),
            worker_hook=lambda agent: self._start_pump(browser, agent.loop),
        )

    def scope_slot(self, browser) -> ScopeSlot:
        """Compatibility fragility of the heavily patched C++ build.

        Sporadic loading errors (paper §V-B1 attributes Fuzzyfox's
        non-time incompatibilities to exactly this).
        """
        return ScopeSlot(
            page_hook=lambda page: setattr(page, "load_failure_rate", 0.3)
        )

    def _start_pump(self, browser, loop) -> None:
        rng = browser.rng.stream(f"fuzzyfox-pause:{loop.name}")

        def pause() -> None:
            if loop.stopped:
                return
            cost = rng.randint(0, self.pause_max_cost_ns)
            delay = rng.randint(self.pause_interval_ns // 2, self.pause_interval_ns * 2)
            loop.post(
                pause,
                delay=delay,
                cost=cost,
                source=TaskSource.PAUSE,
                label="fuzzyfox-pause",
            )

        loop.post(pause, delay=self.pause_interval_ns, source=TaskSource.PAUSE,
                  label="fuzzyfox-pause")
