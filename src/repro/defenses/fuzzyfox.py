"""Fuzzyfox (Kohlbrenner & Shacham, USENIX Security 2016).

Two mechanisms, both randomized:

* **fuzzy clocks** — every explicit clock reports a value that only moves
  forward at randomised instants (:class:`FuzzyClockPolicy`), killing the
  clock-edge attack;
* **pause tasks** — randomly sized pause tasks are injected into every
  event loop, degrading every *implicit* clock into a noisy one.  Noise,
  unlike determinism, can be averaged away — which is why Table I still
  marks Fuzzyfox vulnerable to most implicit-clock attacks, and why the
  paper's Figure 3 shows it among the slowest configurations.
"""

from __future__ import annotations

from ..runtime.clock import FuzzyClockPolicy
from ..runtime.simtime import ms
from ..runtime.task import TaskSource
from .base import Defense


class Fuzzyfox(Defense):
    """Fuzzy time + event-loop pause tasks (Firefox variant)."""

    name = "fuzzyfox"
    base_browser = "firefox"

    def __init__(
        self,
        fuzz_resolution_ns: int = ms(1),
        pause_interval_ns: int = ms(1),
        pause_max_cost_ns: int = ms(8),
    ):
        self.fuzz_resolution_ns = fuzz_resolution_ns
        self.pause_interval_ns = pause_interval_ns
        self.pause_max_cost_ns = pause_max_cost_ns

    def install(self, browser) -> None:
        """Swap in fuzzy clocks and start pause pumps on every loop."""
        rng = browser.rng.stream("fuzzyfox")
        browser.clock_policy_factory = lambda: FuzzyClockPolicy(
            self.fuzz_resolution_ns, rng
        )
        # Fuzzyfox fuzzes every time source, animation/media time included
        browser.animation_clock_policy_factory = lambda: FuzzyClockPolicy(
            self.fuzz_resolution_ns, rng
        )
        browser.page_hooks.append(lambda page: self._on_page(browser, page))
        browser.worker_hooks.append(lambda agent: self._start_pump(browser, agent.loop))

    def _on_page(self, browser, page) -> None:
        # heavily patched C++: sporadic loading errors (paper §V-B1
        # attributes Fuzzyfox's non-time incompatibilities to exactly this)
        page.load_failure_rate = 0.3
        self._start_pump(browser, page.loop)

    def _start_pump(self, browser, loop) -> None:
        rng = browser.rng.stream(f"fuzzyfox-pause:{loop.name}")

        def pause() -> None:
            if loop.stopped:
                return
            cost = rng.randint(0, self.pause_max_cost_ns)
            delay = rng.randint(self.pause_interval_ns // 2, self.pause_interval_ns * 2)
            loop.post(
                pause,
                delay=delay,
                cost=cost,
                source=TaskSource.PAUSE,
                label="fuzzyfox-pause",
            )

        loop.post(pause, delay=self.pause_interval_ns, source=TaskSource.PAUSE,
                  label="fuzzyfox-pause")
