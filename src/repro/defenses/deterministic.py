"""Shared machinery for deterministic-delivery defense backends.

DeterFox and the DetBrowser backend both enforce deterministic
*cross-origin-observable* delivery on a page's main thread by reusing the
kernel's two-stage scheduler: timers, rAF, fetch and subresource events
go through a per-page :class:`KernelSpace`, and worker→main message
deliveries are re-routed onto deterministic slots while the workers
themselves stay native.  This module is that common core; the two
backends differ only in what *else* they install (DeterFox keeps real
clocks, DetBrowser replaces them).
"""

from __future__ import annotations

from ..kernel.interface import KernelInterface
from ..kernel.space import KernelSpace


def install_deterministic_delivery(page, policy, grid, label: str) -> KernelSpace:
    """Route the page's async completions through a deterministic grid.

    Returns the per-page :class:`KernelSpace` so callers can attach it to
    the page for inspection.
    """
    kspace = KernelSpace(page.loop, policy, grid, label=label)
    interface = KernelInterface(kspace)
    interface.install_timers(page.scope)
    interface.install_raf(page.scope)
    interface.install_fetch(page.scope)
    interface.install_dom_loading(page)
    wrap_worker_messages(page, kspace)
    return kspace


def wrap_worker_messages(page, kspace: KernelSpace) -> None:
    """Same-page determinism covers worker message delivery.

    Worker->main deliveries are re-ordered onto deterministic slots; the
    workers themselves stay native (no kernel threads, none of the
    lifecycle policies — the CVE rows stay open).
    """
    native_worker = page.scope.Worker

    def deterministic_worker(src):
        handle = native_worker(src)
        user = {"handler": None}

        def receiver(event) -> None:
            handler = user["handler"]
            if handler is not None:
                kspace.scheduler.register_confirmed(
                    "message", handler, args=(event,), label="dworker-msg",
                    chain=f"msg:worker-{id(handle)}",
                )

        def trap(fn) -> None:
            # run the native setter first: this is only a scheduling
            # change, the (possibly buggy) native assignment path is
            # untouched
            handle._native_set_onmessage(fn)
            user["handler"] = fn
            handle.set_raw("onmessage", receiver)

        handle.define_setter_trap("onmessage", trap)
        handle.set_raw("onmessage", receiver)
        return handle

    page.scope.Worker = deterministic_worker
