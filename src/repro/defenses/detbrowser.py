"""Deterministic Browser (Cao et al.) as a defense backend.

The same authors' pre-DeterFox design answers the concurrency-attack
threat model with **deterministic clocks** rather than kernel-style
policy enforcement: every explicit clock a thread can read advances by a
fixed quantum per observable operation, so two runs that perform the
same operations read the same times — no physical timing difference
survives into script-visible state.  The backend composes three slots:

* ``clock`` — :class:`~repro.runtime.clock.DeterministicClockPolicy` for
  ``performance.now`` *and* the animation/media clock, one fresh policy
  per scope (= per thread, the paper's per-thread logical clocks);
  page ``Date`` reads are mapped onto the same quantum;
* ``scheduler`` — deterministic timer/rAF/fetch/subresource delivery and
  worker→main message re-routing, sharing DeterFox's machinery
  (:mod:`repro.defenses.deterministic`);
* ``worker`` — SharedArrayBuffer counters are wrapped so reads observe
  the *reader's deterministic clock*, not the writer's true progress:
  the implicit SAB timer degrades into a pure function of read count.

What it deliberately does **not** do — and where it diverges from
JSKernel in the cube — is police the worker *lifecycle* or any other
CVE surface: the memory-safety rows stay exploitable, while both systems
defend the timing rows.  Unlike DeterFox (a Firefox fork), the clock
model is engine-agnostic, so ``base_browser`` is unpinned.
"""

from __future__ import annotations

from ..kernel.policies.deterministic import DeterministicSchedulingPolicy
from ..kernel.policy import CompositePolicy, SchedulingGrid
from ..runtime.clock import DeterministicClockPolicy
from ..runtime.sharedmem import AccessPolicy as SharedMemAccessPolicy
from ..runtime.simtime import MS, us
from .backend import ClockSlot, DefenseBackend, SchedulerSlot, WorkerSlot
from .deterministic import install_deterministic_delivery


class DetBrowser(DefenseBackend):
    """Deterministic per-thread clocks + deterministic delivery."""

    name = "detbrowser"
    base_browser = None  # clock determinism is engine-agnostic

    capabilities = frozenset({"clock", "scheduler", "worker"})

    def __init__(self, quantum_ns: int = us(10)):
        #: Deterministic-clock advance per observable operation.
        self.quantum_ns = quantum_ns
        self.grid = SchedulingGrid()
        self.policy = CompositePolicy([DeterministicSchedulingPolicy()])

    # ------------------------------------------------------------------
    def clock_slot(self, browser) -> ClockSlot:
        """Per-thread deterministic clocks, animation/media included."""
        return ClockSlot(
            policy_factory=lambda: DeterministicClockPolicy(self.quantum_ns),
            animation_policy_factory=lambda: DeterministicClockPolicy(
                self.quantum_ns
            ),
        )

    def scheduler_slot(self, browser) -> SchedulerSlot:
        """Deterministic async delivery on every page's main thread."""
        return SchedulerSlot(page_hook=self._on_page)

    def worker_slot(self, browser) -> WorkerSlot:
        """Map SAB-counter reads onto the reader's deterministic clock."""
        return WorkerSlot(
            page_hook=lambda page: self._wrap_shared(page.scope),
            worker_hook=lambda agent: self._wrap_shared(agent.scope),
        )

    # ------------------------------------------------------------------
    def _on_page(self, page) -> None:
        kspace = install_deterministic_delivery(
            page, self.policy, self.grid, label=f"detbrowser:{page.origin.host}"
        )
        # Date reads advance on the same deterministic quantum.
        page.scope.Date.policy = DeterministicClockPolicy(self.quantum_ns)
        page.detbrowser_kspace = kspace

    def _wrap_shared(self, scope) -> None:
        self._wrap_shared_buffers(scope)
        api = getattr(scope, "sharedmem", None)
        if api is not None:
            api.set_policy(DetSharedMemPolicy(self.quantum_ns))

    def _wrap_shared_buffers(self, scope) -> None:
        native_factory = scope.SharedArrayBuffer
        quantum_ns = self.quantum_ns

        def det_shared_buffer(size: int = 8):
            return DetSharedBuffer(native_factory(size), quantum_ns)

        scope.SharedArrayBuffer = det_shared_buffer


class DetSharedMemPolicy(SharedMemAccessPolicy):
    """Shared-memory policy: counter reads become a metronome.

    The structured-runtime analogue of :class:`DetSharedBuffer`.  The
    policy is installed per scope, so each agent carries its own
    deterministic read counts (the paper's per-thread logical clocks);
    a counter-style load reports the value the declared spin rate would
    have reached at the *reader's* deterministic time — read count ×
    quantum — never the writer's true progress.  Non-counter accesses
    pass through natively: DetBrowser polices clocks, not memory safety,
    which is why the GC-vs-mutator row stays exploitable under it.
    """

    name = "detbrowser"
    guards_gc = False

    def __init__(self, quantum_ns: int):
        self.quantum_ns = quantum_ns
        self._reads = {}

    def counter_value(self, cell, core, raw: int) -> int:
        reads = self._reads.get(cell.addr, 0) + 1
        self._reads[cell.addr] = reads
        activity = core.activity
        if activity is None:
            return raw
        det_ms = (reads * self.quantum_ns) / MS
        return activity.base + int(det_ms * activity.rate_per_ms)


class DetSharedBuffer:
    """SharedArrayBuffer counter read through the deterministic clock.

    The writer side stays native (workers spin at their true rate — the
    defense does not slow them down), but every ``load`` reports the
    value the declared increment rate would have reached at the
    *reader's* deterministic time: ``reads × quantum``.  Two reads
    bracketing a secret-dependent computation therefore always differ by
    exactly one quantum's worth of counts, whatever the computation cost
    — the "fantastic timer" reads as a metronome.
    """

    def __init__(self, native, quantum_ns: int):
        self._native = native
        self.quantum_ns = quantum_ns
        self._reads = 0

    # -- reader side (deterministic) -----------------------------------
    def load(self) -> int:
        """Atomics.load observing deterministic, not true, elapsed time."""
        # charge the native access cost and emit the trace read, but
        # report the deterministic value instead of the true one
        self._native.load()
        self._reads += 1
        det_ms = (self._reads * self.quantum_ns) / MS
        activity = self._native.current_activity
        if activity is not None:
            return activity.base + int(det_ms * activity.rate_per_ms)
        return self._native.load_raw()

    # -- writer side (native fast path, like the kernel's wrapper) -----
    def store(self, value: int) -> None:
        """Atomics.store: delegate to the native counter."""
        self._native.store(value)

    def start_increment_activity(self, rate_per_ms: float) -> None:
        """Writer-side tight loop (native fast path)."""
        self._native.start_increment_activity(rate_per_ms)

    def stop_increment_activity(self) -> None:
        """Stop the writer loop."""
        self._native.stop_increment_activity()

    @property
    def incrementing(self) -> bool:
        """True while a writer activity is running."""
        return self._native.incrementing
