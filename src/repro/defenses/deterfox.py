"""DeterFox (Cao et al., CCS 2017): the deterministic browser, in Firefox.

DeterFox enforces deterministic *cross-origin-observable* event timing
inside Firefox itself.  We model it by reusing the kernel's deterministic
scheduling machinery for asynchronous completions — timers, rAF, fetch,
subresource onload/onerror — compiled into the browser (there is no
policy layer, no worker thread manager, and no clock replacement):

* async deliveries land on deterministic slots → the cache, script
  parsing, image decoding, history sniffing, SVG filtering and floating
  point attacks are defeated, matching its paper;
* ``performance.now`` stays a real (quantised) clock and the window
  postMessage channel stays native → clock-edge, CSS-animation,
  video/WebVTT and loopscan channels remain, and none of the worker
  CVEs are addressed — which is where JSKernel goes beyond it;
* it is a Firefox *fork*: ``base_browser`` is pinned, mirroring the
  paper's point that it cannot simply be carried to Chrome/Edge.

The :mod:`repro.defenses.detbrowser` backend models the same authors'
earlier *Deterministic Browser* design (deterministic clocks); the
delivery machinery they share lives in
:mod:`repro.defenses.deterministic`.
"""

from __future__ import annotations

from ..kernel.policies.deterministic import DeterministicSchedulingPolicy
from ..kernel.policy import CompositePolicy, SchedulingGrid
from .backend import DefenseBackend, SchedulerSlot
from .deterministic import install_deterministic_delivery


class DeterFox(DefenseBackend):
    """Deterministic async delivery, Firefox-only, no kernel layer."""

    name = "deterfox"
    base_browser = "firefox"
    #: One composite page hook: deterministic delivery (scheduler), the
    #: worker-message re-routing (worker) and fork fragility (scope).
    capabilities = frozenset({"scheduler", "worker", "scope"})

    def __init__(self):
        self.grid = SchedulingGrid()
        self.policy = CompositePolicy([DeterministicSchedulingPolicy()])

    def scheduler_slot(self, browser) -> SchedulerSlot:
        """Hook pages; workers are left entirely native."""
        return SchedulerSlot(
            page_hook=self._on_page,
            covers=frozenset({"scheduler", "worker", "scope"}),
        )

    def _on_page(self, page) -> None:
        kspace = install_deterministic_delivery(
            page, self.policy, self.grid, label=f"deterfox:{page.origin.host}"
        )
        # a Firefox fork patched in C++: occasional loading errors (the
        # paper's §V-B1 explanation for DeterFox's app incompatibilities)
        page.load_failure_rate = 0.2
        # NOT installed (the JSKernel delta): kernel clocks, the window
        # self-postMessage channel shared with OTHER pages (loopscan's
        # probe — DeterFox's determinism is per-page), animation/media
        # clocks, SharedArrayBuffer, the kernel thread manager, and every
        # security policy.
        page.deterfox_kspace = kspace
