"""DeterFox (Cao et al., CCS 2017): the deterministic browser.

DeterFox enforces deterministic *cross-origin-observable* event timing
inside Firefox itself.  We model it by reusing the kernel's deterministic
scheduling machinery for asynchronous completions — timers, rAF, fetch,
subresource onload/onerror — compiled into the browser (there is no
policy layer, no worker thread manager, and no clock replacement):

* async deliveries land on deterministic slots → the cache, script
  parsing, image decoding, history sniffing, SVG filtering and floating
  point attacks are defeated, matching its paper;
* ``performance.now`` stays a real (quantised) clock and the window
  postMessage channel stays native → clock-edge, CSS-animation,
  video/WebVTT and loopscan channels remain, and none of the worker
  CVEs are addressed — which is where JSKernel goes beyond it;
* it is a Firefox *fork*: ``base_browser`` is pinned, mirroring the
  paper's point that it cannot simply be carried to Chrome/Edge.
"""

from __future__ import annotations

from ..kernel.interface import KernelInterface
from ..kernel.policies.deterministic import DeterministicSchedulingPolicy
from ..kernel.policy import CompositePolicy, SchedulingGrid
from ..kernel.space import KernelSpace
from .base import Defense


class DeterFox(Defense):
    """Deterministic async delivery, Firefox-only, no kernel layer."""

    name = "deterfox"
    base_browser = "firefox"

    def __init__(self):
        self.grid = SchedulingGrid()
        self.policy = CompositePolicy([DeterministicSchedulingPolicy()])

    def install(self, browser) -> None:
        """Hook pages; workers are left entirely native."""
        browser.page_hooks.append(self._on_page)

    def _on_page(self, page) -> None:
        kspace = KernelSpace(
            page.loop, self.policy, self.grid, label=f"deterfox:{page.origin.host}"
        )
        interface = KernelInterface(kspace)
        interface.install_timers(page.scope)
        interface.install_raf(page.scope)
        interface.install_fetch(page.scope)
        interface.install_dom_loading(page)
        self._wrap_worker_messages(page, kspace)
        # a Firefox fork patched in C++: occasional loading errors (the
        # paper's §V-B1 explanation for DeterFox's app incompatibilities)
        page.load_failure_rate = 0.2
        # NOT installed (the JSKernel delta): kernel clocks, the window
        # self-postMessage channel shared with OTHER pages (loopscan's
        # probe — DeterFox's determinism is per-page), animation/media
        # clocks, SharedArrayBuffer, the kernel thread manager, and every
        # security policy.
        page.deterfox_kspace = kspace

    def _wrap_worker_messages(self, page, kspace: KernelSpace) -> None:
        """Same-page determinism covers worker message delivery.

        Worker->main deliveries are re-ordered onto deterministic slots;
        the workers themselves stay native (no kernel threads, none of
        the lifecycle policies — the CVE rows stay open).
        """
        native_worker = page.scope.Worker

        def deterministic_worker(src):
            handle = native_worker(src)
            user = {"handler": None}

            def receiver(event) -> None:
                handler = user["handler"]
                if handler is not None:
                    kspace.scheduler.register_confirmed(
                        "message", handler, args=(event,), label="dworker-msg",
                        chain=f"msg:worker-{id(handle)}",
                    )

            def trap(fn) -> None:
                # run the native setter first: DeterFox is only a
                # scheduling change, the (possibly buggy) native
                # assignment path is untouched
                handle._native_set_onmessage(fn)
                user["handler"] = fn
                handle.set_raw("onmessage", receiver)

            handle.define_setter_trap("onmessage", trap)
            handle.set_raw("onmessage", receiver)
            return handle

        page.scope.Worker = deterministic_worker
