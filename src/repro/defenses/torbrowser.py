"""Tor Browser: coarse clocks plus onion-routed networking.

Tor Browser's timing defense is its famous 100 ms clamp on
``performance.now`` (exact grid edges — which is why clock-edge and every
implicit clock still work against it), and its dominant performance cost
is circuit latency, which puts it at the slow end of the paper's
Figure 3 CDF.
"""

from __future__ import annotations

from ..runtime.clock import QuantizedClockPolicy
from ..runtime.simtime import ms
from .base import Defense


class TorBrowser(Defense):
    """100 ms clock + high-latency network (Firefox variant)."""

    name = "tor"
    base_browser = "firefox"

    def __init__(
        self,
        clock_resolution_ns: int = ms(100),
        circuit_latency_ns: int = ms(220),
        bandwidth_bytes_per_ms: int = 600,
        js_cost_scale: float = 40.0,
    ):
        self.clock_resolution_ns = clock_resolution_ns
        self.circuit_latency_ns = circuit_latency_ns
        self.bandwidth_bytes_per_ms = bandwidth_bytes_per_ms
        #: Security slider disables the JIT: script work slows ~40x,
        #: which is why Loophole measured event intervals of hundreds of
        #: milliseconds on Tor (Table II's 500/600 ms column).
        self.js_cost_scale = js_cost_scale

    def install(self, browser) -> None:
        """Clamp clocks; slow the JS engine; onion-route the network."""
        browser.clock_policy_factory = lambda: QuantizedClockPolicy(
            self.clock_resolution_ns, name="tor-100ms"
        )
        browser.network.base_latency_ns = self.circuit_latency_ns
        browser.network.jitter_ns = ms(60)
        browser.network.bandwidth_bytes_per_ms = self.bandwidth_bytes_per_ms
        browser.page_hooks.append(
            lambda page: setattr(page.scope, "js_cost_scale", self.js_cost_scale)
        )
        browser.worker_hooks.append(
            lambda agent: setattr(agent.scope, "js_cost_scale", self.js_cost_scale)
        )
