"""Tor Browser: coarse clocks plus onion-routed networking.

Tor Browser's timing defense is its famous 100 ms clamp on
``performance.now`` (exact grid edges — which is why clock-edge and every
implicit clock still work against it), and its dominant performance cost
is circuit latency, which puts it at the slow end of the paper's
Figure 3 CDF.
"""

from __future__ import annotations

from ..runtime.clock import QuantizedClockPolicy
from ..runtime.simtime import ms
from .backend import ClockSlot, DefenseBackend, ScopeSlot


class TorBrowser(DefenseBackend):
    """100 ms clock + high-latency network (Firefox variant)."""

    name = "tor"
    base_browser = "firefox"
    capabilities = frozenset({"clock", "scope"})

    def __init__(
        self,
        clock_resolution_ns: int = ms(100),
        circuit_latency_ns: int = ms(220),
        bandwidth_bytes_per_ms: int = 600,
        js_cost_scale: float = 40.0,
    ):
        self.clock_resolution_ns = clock_resolution_ns
        self.circuit_latency_ns = circuit_latency_ns
        self.bandwidth_bytes_per_ms = bandwidth_bytes_per_ms
        #: Security slider disables the JIT: script work slows ~40x,
        #: which is why Loophole measured event intervals of hundreds of
        #: milliseconds on Tor (Table II's 500/600 ms column).
        self.js_cost_scale = js_cost_scale

    def clock_slot(self, browser) -> ClockSlot:
        """The famous 100 ms clamp (animation clocks stay exact)."""
        return ClockSlot(
            policy_factory=lambda: QuantizedClockPolicy(
                self.clock_resolution_ns, name="tor-100ms"
            )
        )

    def scope_slot(self, browser) -> ScopeSlot:
        """Onion-route the network; security slider disables the JIT."""

        def shape_network(b) -> None:
            b.network.base_latency_ns = self.circuit_latency_ns
            b.network.jitter_ns = ms(60)
            b.network.bandwidth_bytes_per_ms = self.bandwidth_bytes_per_ms

        return ScopeSlot(
            browser_hook=shape_network,
            page_hook=lambda page: setattr(
                page.scope, "js_cost_scale", self.js_cost_scale
            ),
            worker_hook=lambda agent: setattr(
                agent.scope, "js_cost_scale", self.js_cost_scale
            ),
        )
