"""The :class:`Tracer`: structured events on the virtual timeline.

Every event is stamped with a **virtual-time** timestamp in integer
nanoseconds (the :class:`~repro.runtime.simulator.Simulator` clock) and a
``(run, thread)`` coordinate: a *run* is one simulator instance (attacks
spin up a fresh browser per trial, so a matrix capture contains many
runs), a *thread* is one simulated JavaScript thread or kernel row within
it.  Chrome-trace export maps runs to ``pid`` and threads to ``tid``.

Zero overhead when disabled
---------------------------

Instrumentation sites follow the pattern::

    tracer = self.sim.tracer
    if tracer.enabled:
        tracer.instant(...)

so a disabled tracer costs one attribute load and one branch per site and
allocates nothing.  The module-level :data:`NULL_TRACER` is permanently
disabled and shared by every simulator created outside a capture.

Determinism
-----------

Emitted events must never include wall-clock values or process-global
counters (task ids, kernel-event ids): two captures of the same seeded
scenario are required to serialise byte-identically.  Run ids, thread
ids and async-span ids are therefore all allocated per-tracer, in first
-use order, which is itself deterministic.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry


class Tracer:
    """Collects trace events and owns the capture's metrics registry."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: Chrome-trace-shaped event dicts, ``ts``/``dur`` in virtual ns.
        self.events: List[dict] = []
        self.metrics = MetricsRegistry()
        #: run pid -> label ("run-1", ...), insertion-ordered.
        self.runs: Dict[int, str] = {}
        self._next_pid = 1
        self._next_span_id = 1
        self._next_flow_id = 1

    # ------------------------------------------------------------------
    # runs and threads
    # ------------------------------------------------------------------
    def register_run(self, label: str = "") -> int:
        """Allocate a pid for one simulator instance."""
        pid = self._next_pid
        self._next_pid += 1
        self.runs[pid] = label or f"run-{pid}"
        return pid

    def attach(self, sim) -> None:
        """Adopt an already-built simulator (and its browser) into this
        capture.

        Simulators created inside :func:`capture` attach automatically;
        this is for tracing a browser that was constructed earlier.
        """
        sim.tracer = self
        sim.trace_pid = self.register_run() if self.enabled else 0

    def next_span_id(self) -> int:
        """Allocate a tracer-local id for an async (b/n/e) span."""
        span_id = self._next_span_id
        self._next_span_id += 1
        return span_id

    def next_flow_id(self) -> int:
        """Allocate a tracer-local id linking a cause event to its effects.

        Flow ids pair cross-thread event endpoints — a ``postMessage``
        instant with its ``message.receive``, a ``promise.settle`` with its
        reactions — so the happens-before builder can add the edge.  The
        first event emitted with a given flow id is the cause; every later
        event carrying it is an effect.
        """
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        return flow_id

    # ------------------------------------------------------------------
    # event emission (callers must check ``enabled`` first)
    # ------------------------------------------------------------------
    def complete(
        self,
        pid: int,
        thread: str,
        name: str,
        start_ns: int,
        end_ns: int,
        cat: str = "",
        args: Optional[dict] = None,
    ) -> None:
        """A span with known start and end (Chrome phase ``X``)."""
        self.events.append(
            {
                "ph": "X",
                "pid": pid,
                "thread": thread,
                "name": name,
                "cat": cat,
                "ts": start_ns,
                "dur": max(end_ns - start_ns, 0),
                "args": args or {},
            }
        )

    def instant(
        self,
        pid: int,
        thread: str,
        name: str,
        ts_ns: int,
        cat: str = "",
        args: Optional[dict] = None,
    ) -> None:
        """A point event (Chrome phase ``i``, thread-scoped)."""
        self.events.append(
            {
                "ph": "i",
                "s": "t",
                "pid": pid,
                "thread": thread,
                "name": name,
                "cat": cat,
                "ts": ts_ns,
                "args": args or {},
            }
        )

    def counter(
        self,
        pid: int,
        thread: str,
        name: str,
        ts_ns: int,
        values: dict,
        cat: str = "",
    ) -> None:
        """A sampled counter track (Chrome phase ``C``)."""
        self.events.append(
            {
                "ph": "C",
                "pid": pid,
                "thread": thread,
                "name": name,
                "cat": cat,
                "ts": ts_ns,
                "args": dict(values),
            }
        )

    def async_event(
        self,
        phase: str,
        pid: int,
        thread: str,
        name: str,
        span_id: int,
        ts_ns: int,
        cat: str = "",
        args: Optional[dict] = None,
    ) -> None:
        """One leg of an async span (phases ``b``/``n``/``e``).

        Async spans may overlap freely on one thread row, which is what
        the kernel event lifecycle needs: event A can register before B
        yet dispatch after it.
        """
        self.events.append(
            {
                "ph": phase,
                "pid": pid,
                "thread": thread,
                "name": name,
                "cat": cat,
                "id": span_id,
                "ts": ts_ns,
                "args": args or {},
            }
        )

    # ------------------------------------------------------------------
    def thread_table(self) -> Dict[Tuple[int, str], int]:
        """(pid, thread name) -> tid, in first-appearance order."""
        table: Dict[Tuple[int, str], int] = {}
        next_tid: Dict[int, int] = {}
        for event in self.events:
            key = (event["pid"], event["thread"])
            if key not in table:
                tid = next_tid.get(event["pid"], 1)
                table[key] = tid
                next_tid[event["pid"]] = tid + 1
        return table

    def __len__(self) -> int:
        return len(self.events)


#: The permanently disabled tracer shared by untraced simulators.
NULL_TRACER = Tracer(enabled=False)

_active: Optional[Tracer] = None


def current_tracer() -> Tracer:
    """The tracer new simulators should attach to."""
    return _active if _active is not None else NULL_TRACER


@contextmanager
def capture(tracer: Optional[Tracer] = None):
    """Route every simulator built inside the block into one tracer.

    ::

        with capture() as tracer:
            run_table1(...)
        write_chrome_trace(tracer, "trace.json")
    """
    global _active
    if tracer is None:
        tracer = Tracer(enabled=True)
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous
