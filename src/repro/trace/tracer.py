"""The :class:`Tracer`: structured events on the virtual timeline.

Every event is stamped with a **virtual-time** timestamp in integer
nanoseconds (the :class:`~repro.runtime.simulator.Simulator` clock) and a
``(run, thread)`` coordinate: a *run* is one simulator instance (attacks
spin up a fresh browser per trial, so a matrix capture contains many
runs), a *thread* is one simulated JavaScript thread or kernel row within
it.  Chrome-trace export maps runs to ``pid`` and threads to ``tid``.

Zero overhead when disabled
---------------------------

Instrumentation sites follow the pattern::

    tracer = self.sim.tracer
    if tracer.enabled:
        tracer.instant(...)

so a disabled tracer costs one attribute load and one branch per site and
allocates nothing.  The module-level :data:`NULL_TRACER` is permanently
disabled and shared by every simulator created outside a capture.

Determinism
-----------

Emitted events must never include wall-clock values or process-global
counters (task ids, kernel-event ids): two captures of the same seeded
scenario are required to serialise byte-identically.  Run ids, thread
ids and async-span ids are therefore all allocated per-tracer, in first
-use order, which is itself deterministic.

Storage
-------

Events are appended as compact uniform tuples
``(ph, pid, thread, name, cat, ts, extra, args)`` — ``extra`` is the
duration for ``X`` rows and the span id for ``b``/``n``/``e`` rows — and
materialised into the Chrome-trace-shaped dicts consumers expect only
when :attr:`events` is first read past the buffered point.  Emission on
the hot path therefore allocates one tuple instead of one dict, and
exports stay byte-identical (tests/test_trace_buffer.py pins this with
golden digests).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry


class Tracer:
    """Collects trace events and owns the capture's metrics registry."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: Compact event rows (see module docstring); read via ``events``.
        self._buffer: List[tuple] = []
        #: Materialised prefix of ``_buffer`` as Chrome-trace-shaped dicts.
        self._events: List[dict] = []
        self.metrics = MetricsRegistry()
        #: run pid -> label ("run-1", ...), insertion-ordered.
        self.runs: Dict[int, str] = {}
        self._next_pid = 1
        self._next_span_id = 1
        self._next_flow_id = 1

    # ------------------------------------------------------------------
    # runs and threads
    # ------------------------------------------------------------------
    def register_run(self, label: str = "") -> int:
        """Allocate a pid for one simulator instance."""
        pid = self._next_pid
        self._next_pid += 1
        self.runs[pid] = label or f"run-{pid}"
        return pid

    def attach(self, sim) -> None:
        """Adopt an already-built simulator (and its browser) into this
        capture.

        Simulators created inside :func:`capture` attach automatically;
        this is for tracing a browser that was constructed earlier.
        """
        sim.tracer = self
        sim.trace_pid = self.register_run() if self.enabled else 0

    def next_span_id(self) -> int:
        """Allocate a tracer-local id for an async (b/n/e) span."""
        span_id = self._next_span_id
        self._next_span_id += 1
        return span_id

    def next_flow_id(self) -> int:
        """Allocate a tracer-local id linking a cause event to its effects.

        Flow ids pair cross-thread event endpoints — a ``postMessage``
        instant with its ``message.receive``, a ``promise.settle`` with its
        reactions — so the happens-before builder can add the edge.  The
        first event emitted with a given flow id is the cause; every later
        event carrying it is an effect.
        """
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        return flow_id

    # ------------------------------------------------------------------
    # event emission (callers must check ``enabled`` first)
    # ------------------------------------------------------------------
    def complete(
        self,
        pid: int,
        thread: str,
        name: str,
        start_ns: int,
        end_ns: int,
        cat: str = "",
        args: Optional[dict] = None,
    ) -> None:
        """A span with known start and end (Chrome phase ``X``)."""
        dur = end_ns - start_ns
        self._buffer.append(
            ("X", pid, thread, name, cat, start_ns, dur if dur > 0 else 0, args or {})
        )

    def instant(
        self,
        pid: int,
        thread: str,
        name: str,
        ts_ns: int,
        cat: str = "",
        args: Optional[dict] = None,
    ) -> None:
        """A point event (Chrome phase ``i``, thread-scoped)."""
        self._buffer.append(("i", pid, thread, name, cat, ts_ns, None, args or {}))

    def counter(
        self,
        pid: int,
        thread: str,
        name: str,
        ts_ns: int,
        values: dict,
        cat: str = "",
    ) -> None:
        """A sampled counter track (Chrome phase ``C``)."""
        # ``values`` is copied at emission: callers may mutate it afterwards
        self._buffer.append(("C", pid, thread, name, cat, ts_ns, None, dict(values)))

    def async_event(
        self,
        phase: str,
        pid: int,
        thread: str,
        name: str,
        span_id: int,
        ts_ns: int,
        cat: str = "",
        args: Optional[dict] = None,
    ) -> None:
        """One leg of an async span (phases ``b``/``n``/``e``).

        Async spans may overlap freely on one thread row, which is what
        the kernel event lifecycle needs: event A can register before B
        yet dispatch after it.
        """
        self._buffer.append((phase, pid, thread, name, cat, ts_ns, span_id, args or {}))

    # ------------------------------------------------------------------
    # reading the capture
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[dict]:
        """Chrome-trace-shaped event dicts, ``ts``/``dur`` in virtual ns.

        Materialised lazily from the compact buffer: emission pays one
        tuple append, and the dicts are built once, on first read past
        the previously materialised point.
        """
        events = self._events
        buffer = self._buffer
        done = len(events)
        if done == len(buffer):
            return events
        append = events.append
        for row in buffer[done:] if done else buffer:
            ph, pid, thread, name, cat, ts, extra, args = row
            if ph == "X":
                append(
                    {
                        "ph": "X",
                        "pid": pid,
                        "thread": thread,
                        "name": name,
                        "cat": cat,
                        "ts": ts,
                        "dur": extra,
                        "args": args,
                    }
                )
            elif ph == "i":
                append(
                    {
                        "ph": "i",
                        "s": "t",
                        "pid": pid,
                        "thread": thread,
                        "name": name,
                        "cat": cat,
                        "ts": ts,
                        "args": args,
                    }
                )
            elif ph == "C":
                append(
                    {
                        "ph": "C",
                        "pid": pid,
                        "thread": thread,
                        "name": name,
                        "cat": cat,
                        "ts": ts,
                        "args": args,
                    }
                )
            else:
                append(
                    {
                        "ph": ph,
                        "pid": pid,
                        "thread": thread,
                        "name": name,
                        "cat": cat,
                        "id": extra,
                        "ts": ts,
                        "args": args,
                    }
                )
        return events

    def thread_table(self) -> Dict[Tuple[int, str], int]:
        """(pid, thread name) -> tid, in first-appearance order."""
        table: Dict[Tuple[int, str], int] = {}
        next_tid: Dict[int, int] = {}
        for row in self._buffer:
            key = (row[1], row[2])
            if key not in table:
                pid = row[1]
                tid = next_tid.get(pid, 1)
                table[key] = tid
                next_tid[pid] = tid + 1
        return table

    def __len__(self) -> int:
        return len(self._buffer)


#: The permanently disabled tracer shared by untraced simulators.
NULL_TRACER = Tracer(enabled=False)

_active: Optional[Tracer] = None


def current_tracer() -> Tracer:
    """The tracer new simulators should attach to."""
    return _active if _active is not None else NULL_TRACER


@contextmanager
def capture(tracer: Optional[Tracer] = None):
    """Route every simulator built inside the block into one tracer.

    ::

        with capture() as tracer:
            run_table1(...)
        write_chrome_trace(tracer, "trace.json")
    """
    global _active
    if tracer is None:
        tracer = Tracer(enabled=True)
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous
