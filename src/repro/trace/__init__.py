"""Unified tracing & metrics for the simulated runtime and kernel.

Everything in this package is keyed to **virtual time**: timestamps are
the integer-nanosecond clock of :class:`~repro.runtime.simulator.Simulator`
(converted to microseconds only at Chrome-trace export), never wall time.
A traced quantity therefore describes the *simulated* schedule — task
queueing delays, kernel registration→confirmation→dispatch latencies —
and a seeded scenario captures byte-identically on every run, which makes
a trace both a debugging artefact and a regression fixture.

Usage::

    from repro.trace import capture, write_chrome_trace

    with capture() as tracer:
        ...  # build browsers, run attacks/workloads
    write_chrome_trace(tracer, "trace.json")   # open in Perfetto
    print(tracer.metrics.format())

Simulators created inside :func:`capture` pick the tracer up on
construction; an existing browser can be adopted with
``tracer.attach(browser.sim)``.  Outside a capture every simulator shares
the disabled :data:`NULL_TRACER`, whose cost at each instrumentation site
is one attribute load and one branch.
"""

from .access import state_access
from .export import chrome_trace, dump_chrome_trace, format_timeline, write_chrome_trace
from .metrics import (
    LATENCY_BUCKETS_NS,
    QUEUE_DELAY_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracer import NULL_TRACER, Tracer, capture, current_tracer

__all__ = [
    "LATENCY_BUCKETS_NS",
    "NULL_TRACER",
    "QUEUE_DELAY_BUCKETS_NS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "capture",
    "chrome_trace",
    "current_tracer",
    "dump_chrome_trace",
    "format_timeline",
    "state_access",
    "write_chrome_trace",
]
