"""Shared-state access instrumentation.

The race detector (:mod:`repro.analysis.races`) needs to see every access
to state that more than one simulated thread can reach: native heap
allocations, SharedArrayBuffer counters, indexedDB slots and DOM nodes.
Runtime components report those accesses through :func:`state_access`,
which emits one ``state.access`` instant per operation.

Thread attribution
------------------

An access performed inside a task runs under an execution frame, and the
frame names the JavaScript thread.  Accesses performed by *frameless*
simulator callbacks (native browser work such as worker teardown) are
attributed to a per-dispatch ``native:<label>#<ordinal>`` pseudo-thread
instead (:attr:`~repro.runtime.simulator.Simulator.native_context`).  Each
native dispatch gets its own context, so the happens-before builder never
invents a program-order edge between two unrelated pieces of native work.
"""

from __future__ import annotations

from typing import Optional


def state_access(
    sim,
    obj: str,
    op: str,
    kind: str,
    access: str = "",
    detail: Optional[dict] = None,
) -> None:
    """Record one shared-state access on ``sim``'s tracer.

    ``obj`` is a run-deterministic object identity (e.g. ``heap:0x1000``);
    ``op`` is ``"read"`` or ``"write"`` (what the race detector compares);
    ``kind`` names the state family (``heap``/``sab``/``idb``/``dom``);
    ``access`` is the concrete operation (``free``, ``deref``, ``put``...).
    """
    tracer = sim.tracer
    if not tracer.enabled:
        return
    frame = sim.current_frame
    thread = frame.thread_name if frame is not None else sim.native_context
    args = {"obj": obj, "op": op, "kind": kind}
    if access:
        args["access"] = access
    if detail:
        args.update(detail)
    tracer.instant(
        sim.trace_pid,
        thread,
        "state.access",
        sim.now,
        cat="state",
        args=args,
    )
    tracer.metrics.counter(f"state.accesses.{kind}").inc()
