"""Metrics primitives: counters, gauges and fixed-bucket histograms.

Every value recorded here is derived from **virtual time** or virtual-time
event counts, so a seeded scenario produces identical metrics on every
run.  The registry is deliberately plain: metric objects are created on
demand by name, and :meth:`MetricsRegistry.snapshot` returns nothing but
dicts, lists and numbers so harness reports can embed it directly in
their result payloads (and ``json.dumps`` it without custom encoders).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..telemetry.sketch import QuantileSketch

#: Default buckets for queueing-delay style histograms, in virtual ns
#: (1 µs, 10 µs, 100 µs, 1 ms, 10 ms, 100 ms).
QUEUE_DELAY_BUCKETS_NS: Tuple[int, ...] = (
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
)

#: Default buckets for kernel-stage latencies (same decades).
LATENCY_BUCKETS_NS: Tuple[int, ...] = QUEUE_DELAY_BUCKETS_NS


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter decrement: {amount}")
        self.value += amount


class Gauge:
    """A value that can move both ways (queue depths, live threads)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = value

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (either sign)."""
        self.value += delta


class Histogram:
    """Fixed-bucket histogram.

    Bucket-edge convention: ``bounds`` are **inclusive upper edges**, so
    bucket ``i`` counts values ``v`` with ``bounds[i-1] < v <= bounds[i]``
    (the first bucket has no lower edge).  A value strictly larger than
    the last bound lands in the **overflow bucket**: ``counts`` always has
    ``len(bounds) + 1`` entries and ``counts[-1]`` is the overflow count.
    Snapshots export that overflow count explicitly (the ``overflow``
    key), matching Prometheus's ``+Inf`` bucket minus the last finite one.

    A :class:`~repro.telemetry.sketch.QuantileSketch` can be attached as
    ``sketch``; :meth:`record` then tees every observation into it, which
    is how telemetry runs capture full-fidelity quantiles at existing
    recording sites without a second instrumentation pass.
    """

    __slots__ = ("bounds", "counts", "total", "count", "min", "max", "sketch")

    def __init__(self, bounds: Sequence[int]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted and non-empty: {bounds}")
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.sketch: Optional[QuantileSketch] = None

    def record(self, value: float) -> None:
        """Record one observation."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if self.sketch is not None:
            self.sketch.add(value)


class MetricsRegistry:
    """Name-keyed store of counters, gauges, histograms and sketches.

    Setting :attr:`sketch_observations` **before** recording makes every
    histogram tee its observations into an attached
    :class:`~repro.telemetry.sketch.QuantileSketch`; the sketches then
    ride along in :meth:`snapshot` (a ``"sketches"`` section, present
    only when non-empty so non-telemetry snapshots are unchanged) and
    fold through :meth:`merge_snapshot` like every other metric.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sketches: Dict[str, QuantileSketch] = {}
        #: When true, histograms created (or first touched) afterwards
        #: record into an attached quantile sketch as well.
        self.sketch_observations = False

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str, bounds: Sequence[int] = QUEUE_DELAY_BUCKETS_NS) -> Histogram:
        """The histogram called ``name`` (created on first use).

        ``bounds`` only applies at creation; later calls reuse the
        existing buckets.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(bounds)
        if self.sketch_observations and histogram.sketch is None:
            histogram.sketch = self._sketches.setdefault(name, QuantileSketch())
        return histogram

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """Plain-dict dump of every metric, keys sorted for determinism.

        Histogram entries carry ``counts`` (``len(bounds) + 1`` buckets,
        inclusive upper edges) plus an explicit ``overflow`` — the count
        of values above the last bound, i.e. the ``+Inf`` bucket minus
        the last finite one — so JSON consumers never have to know the
        implicit-last-bucket convention.  A ``"sketches"`` section is
        present only when quantile sketches were recorded or merged.
        """
        snap = {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "overflow": h.counts[-1],
                    "sum": h.total,
                    "count": h.count,
                    "min": h.min,
                    "max": h.max,
                }
                for name, h in sorted(self._histograms.items())
            },
        }
        if self._sketches:
            snap["sketches"] = {
                name: self._sketches[name].to_dict()
                for name in sorted(self._sketches)
            }
        return snap

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The parallel harness runs each worker's cells under a private
        registry and merges the snapshots back in shard order, so a
        parallel run's counters and histograms equal the serial run's.
        Counters add; histogram buckets, sums and counts add (bounds must
        match, the shared defaults guarantee it in practice); gauges are
        last-write-wins — they are instantaneous values, and merging in
        shard order reproduces the serial "final value" semantics.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, bounds=data["bounds"])
            if list(histogram.bounds) != list(data["bounds"]):
                raise ValueError(
                    f"histogram {name!r} bucket mismatch: "
                    f"{list(histogram.bounds)} != {list(data['bounds'])}"
                )
            for i, count in enumerate(data["counts"]):
                histogram.counts[i] += count
            histogram.total += data["sum"]
            histogram.count += data["count"]
            if data["count"]:
                histogram.min = (
                    data["min"] if histogram.min is None else min(histogram.min, data["min"])
                )
                histogram.max = (
                    data["max"] if histogram.max is None else max(histogram.max, data["max"])
                )
        for name, data in snapshot.get("sketches", {}).items():
            sketch = self._sketches.get(name)
            if sketch is None:
                self._sketches[name] = QuantileSketch.from_dict(data)
            else:
                sketch.merge(data)

    def format(self) -> str:
        """Human-readable metrics summary (CLI ``--metrics`` output)."""
        snap = self.snapshot()
        lines = []
        if snap["counters"]:
            lines.append("counters:")
            for name, value in snap["counters"].items():
                lines.append(f"  {name:48s} {value}")
        if snap["gauges"]:
            lines.append("gauges:")
            for name, value in snap["gauges"].items():
                lines.append(f"  {name:48s} {value}")
        if snap["histograms"]:
            lines.append("histograms:")
            for name, data in snap["histograms"].items():
                mean = data["sum"] / data["count"] if data["count"] else 0.0
                lines.append(
                    f"  {name:48s} n={data['count']} mean={mean:.0f} "
                    f"min={data['min']} max={data['max']}"
                )
                edges = [*data["bounds"], "inf"]
                buckets = " ".join(
                    f"<={edge}:{count}" for edge, count in zip(edges, data["counts"]) if count
                )
                if buckets:
                    lines.append(f"    {buckets}")
        if snap.get("sketches"):
            lines.append("sketches:")
            for name, data in snap["sketches"].items():
                sketch = QuantileSketch.from_dict(data)
                quantiles = " ".join(
                    f"{label}={value:.0f}"
                    for label, value in sketch.quantiles().items()
                    if value is not None
                )
                lines.append(
                    f"  {name:48s} n={sketch.count} "
                    f"centroids={sketch.centroid_count()} {quantiles}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"
