"""Exporters: Chrome trace-event JSON and a human-readable timeline.

The Chrome export follows the Trace Event Format (the JSON consumed by
Perfetto and ``chrome://tracing``): one ``pid`` per simulated browser run,
one ``tid`` per simulated thread, ``ts``/``dur`` in microseconds of
**virtual time**.  Serialisation sorts keys and uses fixed separators so
that two captures of the same seeded scenario produce byte-identical
files.
"""

from __future__ import annotations

import json
from typing import List

from .tracer import Tracer


def _us(ts_ns: int) -> float:
    """Virtual ns -> trace-format µs."""
    return ts_ns / 1000


def chrome_trace(tracer: Tracer) -> dict:
    """Build the Chrome trace-event JSON object for a capture."""
    threads = tracer.thread_table()
    events: List[dict] = []
    for pid, label in tracer.runs.items():
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": label},
            }
        )
    for (pid, thread_name), tid in threads.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "args": {"name": thread_name},
            }
        )
    for event in tracer.events:
        out = {
            "ph": event["ph"],
            "name": event["name"],
            "cat": event.get("cat") or "sim",
            "pid": event["pid"],
            "tid": threads[(event["pid"], event["thread"])],
            "ts": _us(event["ts"]),
            "args": event["args"],
        }
        if "dur" in event:
            out["dur"] = _us(event["dur"])
        if "id" in event:
            out["id"] = event["id"]
        if "s" in event:
            out["s"] = event["s"]
        events.append(out)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "virtual",
            "source": "repro (JSKernel reproduction)",
        },
    }


def dump_chrome_trace(tracer: Tracer) -> str:
    """The Chrome trace as a deterministic JSON string."""
    return json.dumps(chrome_trace(tracer), sort_keys=True, separators=(",", ":"))


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    """Write the capture to ``path`` (open it in Perfetto to inspect)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_chrome_trace(tracer))


_PHASE_MARKS = {"X": "span", "i": "mark", "C": "ctr ", "b": "beg ", "n": "mid ", "e": "end "}


def format_timeline(tracer: Tracer, limit: int = 0) -> str:
    """Human-readable dump, one line per event in virtual-time order."""
    indexed = sorted(enumerate(tracer.events), key=lambda pair: (pair[1]["ts"], pair[0]))
    if limit:
        indexed = indexed[:limit]
    lines = []
    for _index, event in indexed:
        run = tracer.runs.get(event["pid"], str(event["pid"]))
        mark = _PHASE_MARKS.get(event["ph"], event["ph"])
        line = (
            f"{event['ts'] / 1e6:12.3f}ms {run:>8s} [{event['thread']}] "
            f"{mark} {event['name']}"
        )
        if event["ph"] == "X":
            line += f" ({event['dur'] / 1e6:.3f}ms)"
        args = event.get("args")
        if args:
            detail = " ".join(f"{key}={value}" for key, value in args.items())
            line += f"  {detail}"
        lines.append(line)
    return "\n".join(lines)
