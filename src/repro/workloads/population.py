"""A seeded, internet-scale population of pages, sessions and browsers.

The Figure-3 workload (:mod:`repro.workloads.alexa`) models a lab of 500
sites; the ROADMAP's campaign service needs an *internet* — millions of
pages with realistic structure, visited by a stream of user sessions
arriving over time, split across a browser traffic mix.  Everything here
is a **pure function of (rank/index, seed)** in the style of
:func:`~repro.workloads.alexa.site_for_rank`: a worker process
regenerates exactly the page it needs from two integers instead of the
parent shipping page descriptions across the process boundary, which is
what lets :meth:`~repro.harness.parallel.ExperimentEngine.stream`
generate-and-retire a 100k-page sweep in flat memory.

The model has three axes:

* **Site archetypes** — pages belong to archetypes (search, social,
  news, video, shop, webapp, docs, blog) whose mix shifts with
  popularity: the head of the rank distribution is search/social/video
  heavy, the long tail is blogs and docs.  An archetype maps onto one of
  the :func:`~repro.workloads.sites.generate_site` weight classes plus
  archetype-specific spreads.
* **User sessions** — a renewal arrival process (seeded exponential
  inter-arrivals) emits sessions; each session picks a browser from the
  traffic mix and visits a geometric number of pages drawn Zipf-style
  from the rank distribution.  :func:`session_stream` is a generator
  with O(1) resident state.
* **Per-browser traffic mix** — page visits split across browser
  configurations (defense registry names) by a seeded weighted choice,
  so a sweep reports per-config load-time quantiles the way Figure 3
  reports per-config CDFs.

Two measurement modes: ``"sim"`` drives the full simulated browser
(:func:`~repro.workloads.alexa.measure_load_time_ms` — the Figure-3
path), ``"model"`` evaluates a closed-form load-time estimate from the
site description (network + parse + DOM + script-task terms with a
seeded ±5% jitter).  The model mode is ~1000x cheaper per page and is
what makes million-page population statistics practical; the bounded-RSS
acceptance test (``tests/test_population.py``) runs it at 50k pages.

Aggregation is sketch-only: :class:`PopulationAggregate` folds each
result into per-config and per-archetype
:class:`~repro.telemetry.sketch.QuantileSketch` instances (load times
observed as integer microseconds, so merged sweeps stay byte-identical
under re-partitioning) and never retains a per-page sample list.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..runtime.rng import hash_seed
from ..telemetry.sketch import QuantileSketch
from .sites import SiteDescription, generate_site, site_stats

__all__ = [
    "ARCHETYPES",
    "BAND_MIX",
    "DEFAULT_BROWSER_MIX",
    "DEFAULT_POPULATION",
    "PopulationAggregate",
    "PopulationModel",
    "Session",
    "archetype_for_rank",
    "band_for_rank",
    "config_for_rank",
    "estimate_load_ms",
    "page_for",
    "population_cells",
    "population_sweep",
    "run_population_page",
    "session_cells",
    "session_stream",
    "zipf_rank",
]

#: Population size assumed when none is given: "the internet".
DEFAULT_POPULATION = 1_000_000

#: Site archetypes: the weight class the site generator uses plus a
#: load-model scale factor (how much heavier a page of this archetype
#: renders than its weight class's baseline).
ARCHETYPES: Dict[str, dict] = {
    "search": {"weight": "light", "scale": 0.8},
    "social": {"weight": "heavy", "scale": 1.1},
    "news": {"weight": "heavy", "scale": 1.2},
    "video": {"weight": "medium", "scale": 1.3},
    "shop": {"weight": "medium", "scale": 1.0},
    "webapp": {"weight": "medium", "scale": 0.9},
    "docs": {"weight": "light", "scale": 0.7},
    "blog": {"weight": "light", "scale": 0.9},
}

#: Archetype mix per popularity band, as integer odds (not normalised).
#: The head of the rank distribution is search/social/video heavy; the
#: long tail is blogs and docs.
BAND_MIX: Dict[str, Tuple[Tuple[str, int], ...]] = {
    "head": (
        ("search", 3), ("social", 3), ("video", 2),
        ("news", 2), ("shop", 1), ("webapp", 1),
    ),
    "torso": (
        ("news", 3), ("shop", 3), ("webapp", 2),
        ("video", 1), ("docs", 1), ("blog", 2),
    ),
    "tail": (
        ("blog", 4), ("docs", 2), ("shop", 1),
        ("news", 1), ("webapp", 1), ("social", 1),
    ),
}

#: Default browser traffic mix (defense registry names -> share).
DEFAULT_BROWSER_MIX: Tuple[Tuple[str, float], ...] = (
    ("legacy-chrome", 0.55),
    ("jskernel", 0.25),
    ("legacy-firefox", 0.10),
    ("jskernel-firefox", 0.05),
    ("tor", 0.05),
)

#: Load-model overhead factor per browser configuration, relative to
#: legacy Chrome (mirrors the Figure-3 CDF separation: JSKernel costs a
#: few percent, fuzzing clocks cost more, Tor the most).
MODEL_CONFIG_OVERHEAD: Dict[str, float] = {
    "legacy-chrome": 1.00,
    "legacy-firefox": 1.02,
    "jskernel": 1.066,
    "jskernel-firefox": 1.087,
    "chromezero": 1.03,
    "detbrowser": 1.045,
    "deterfox": 1.24,
    "fuzzyfox": 1.17,
    "tor": 1.52,
}


_MASK64 = (1 << 64) - 1


def _uniform(seed: int, label: str) -> float:
    """One pure uniform draw in ``[0, 1)`` keyed by ``(seed, label)``.

    A murmur3-style finalizer over the label hash, scaled to the unit
    interval.  The finalizer matters: raw FNV-1a bits are visibly
    structured across sequential labels (``pop:arch:0``, ``pop:arch:1``,
    ...), and constructing a ``random.Random`` per draw — the usual fix
    — would cost more than the whole load model at three or four draws
    per page across 100k+ pages.
    """
    acc = hash_seed(seed, label)
    acc ^= acc >> 33
    acc = (acc * 0xFF51AFD7ED558CCD) & _MASK64
    acc ^= acc >> 33
    acc = (acc * 0xC4CEB9FE1A85EC53) & _MASK64
    acc ^= acc >> 33
    return (acc >> 11) / float(1 << 53)


def _weighted(seed: int, label: str, choices: Sequence[Tuple[str, float]]) -> str:
    """Seeded weighted pick — pure per ``(seed, label)``."""
    total = sum(share for _name, share in choices)
    point = _uniform(seed, label) * total
    acc = 0.0
    for name, share in choices:
        acc += share
        if point < acc:
            return name
    return choices[-1][0]


# ----------------------------------------------------------------------
# pages
# ----------------------------------------------------------------------
def band_for_rank(rank: int, size: int) -> str:
    """Popularity band: top 1% head, next 19% torso, the rest tail."""
    if not 0 <= rank < size:
        raise ValueError(f"rank {rank} outside population of {size}")
    if rank < max(1, size // 100):
        return "head"
    if rank < size // 5:
        return "torso"
    return "tail"


def archetype_for_rank(rank: int, seed: int, size: int = DEFAULT_POPULATION) -> str:
    """The archetype of the page at ``rank`` — pure in ``(rank, seed)``."""
    mix = BAND_MIX[band_for_rank(rank, size)]
    return _weighted(seed, f"pop:arch:{rank}", mix)


def config_for_rank(
    rank: int,
    seed: int,
    mix: Sequence[Tuple[str, float]] = DEFAULT_BROWSER_MIX,
) -> str:
    """The browser configuration a visit to ``rank`` uses (traffic mix)."""
    return _weighted(seed, f"pop:browser:{rank}", mix)


def page_for(rank: int, seed: int, size: int = DEFAULT_POPULATION) -> SiteDescription:
    """The population member at ``rank`` — regenerable anywhere.

    Pure function of ``(rank, seed, size)``: a pool worker (or a serve
    job on another machine) reconstructs the exact page from integers
    instead of receiving the description over a socket.  The archetype
    decides the weight class; the host name carries both for debugging.
    """
    archetype = archetype_for_rank(rank, seed, size)
    weight = ARCHETYPES[archetype]["weight"]
    host = f"{archetype}{rank:07d}.example"
    return generate_site(host, _site_seed(rank, seed), weight)


def _site_seed(rank: int, seed: int) -> int:
    """The generator seed of the page at ``rank``."""
    return hash_seed(seed, f"pop:site:{rank}")


def zipf_rank(u: float, size: int) -> int:
    """Map a uniform draw to a Zipf-ish popularity rank.

    Log-uniform over ``[1, size]`` (``rank = size**u - 1``): the head of
    the distribution is visited exponentially more often than the tail,
    the classic web-traffic shape, with every rank still reachable.
    """
    if size < 1:
        raise ValueError(f"population size must be >= 1, got {size}")
    rank = int(size ** u) - 1
    return min(max(rank, 0), size - 1)


# ----------------------------------------------------------------------
# sessions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Session:
    """One user session: arrival instant, browser, pages visited."""

    index: int
    arrival_s: float
    config: str
    pages: Tuple[int, ...]


@dataclass(frozen=True)
class PopulationModel:
    """The knobs of the population: size, mixes, arrival process."""

    size: int = DEFAULT_POPULATION
    seed: int = 0
    browser_mix: Tuple[Tuple[str, float], ...] = DEFAULT_BROWSER_MIX
    #: Mean session arrival rate (sessions per second of modelled time).
    session_rate_hz: float = 50.0
    #: Mean pages per session (geometric, at least one page).
    mean_pages: float = 4.0


def session_stream(model: PopulationModel, count: Optional[int] = None) -> Iterator[Session]:
    """Yield sessions in arrival order with O(1) resident state.

    Inter-arrival gaps are exponential draws keyed by the session index
    (a seeded renewal process), so the stream is reproducible and each
    session's *gap* is pure per index; arrival instants are the running
    prefix sum, produced lazily.  ``count`` bounds the stream (``None``
    streams forever — callers slice).
    """
    arrival = 0.0
    index = 0
    while count is None or index < count:
        rng = random.Random(hash_seed(model.seed, f"pop:session:{index}"))
        arrival += rng.expovariate(model.session_rate_hz)
        config = _weighted(model.seed, f"pop:sbrowser:{index}", model.browser_mix)
        # geometric page count with mean `mean_pages` (>= 1 page)
        pages = max(1, int(rng.expovariate(1.0 / max(model.mean_pages - 1, 1e-9))) + 1) \
            if model.mean_pages > 1 else 1
        ranks = tuple(zipf_rank(rng.random(), model.size) for _ in range(pages))
        yield Session(index=index, arrival_s=arrival, config=config, pages=ranks)
        index += 1


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
#: Modelled effective bandwidth (bytes of subresource per virtual ms).
MODEL_BYTES_PER_MS = 6_000
#: Modelled script parse cost (ms per 100 kB of script).
MODEL_PARSE_MS_PER_100KB = 1.8
#: Modelled DOM construction cost (ms per 100 nodes).
MODEL_DOM_MS_PER_100_NODES = 0.35


def _estimate(
    total_bytes: int,
    script_bytes: int,
    dom_nodes: int,
    task_ms: float,
    config: str,
    seed: int,
    host: str,
    archetype: Optional[str],
) -> float:
    """The model core over raw site stats (see :func:`estimate_load_ms`)."""
    network_ms = total_bytes / MODEL_BYTES_PER_MS
    parse_ms = script_bytes / 102_400 * MODEL_PARSE_MS_PER_100KB
    dom_ms = dom_nodes / 100 * MODEL_DOM_MS_PER_100_NODES
    base = network_ms + parse_ms + dom_ms + task_ms
    overhead = MODEL_CONFIG_OVERHEAD.get(config, 1.05)
    scale = ARCHETYPES[archetype]["scale"] if archetype else 1.0
    jitter = 0.95 + 0.1 * _uniform(seed, f"pop:jitter:{host}:{config}")
    return base * overhead * scale * jitter


def estimate_load_ms(
    site: SiteDescription,
    config: str,
    seed: int,
    archetype: Optional[str] = None,
) -> float:
    """Closed-form load-time estimate for one visit (no simulator).

    Network, parse, DOM and script-task terms from the site description,
    scaled by the configuration's overhead factor and the archetype's
    render scale, with a seeded ±5% visit jitter.  Roughly three orders
    of magnitude cheaper than a simulated visit — the difference between
    a 500-site lab run and million-page population statistics.
    """
    script_bytes = sum(r.size_bytes for r in site.resources if r.kind == "script")
    task_ms = sum(cost for _delay, cost in site.task_pattern)
    return _estimate(
        site.total_bytes(), script_bytes, site.dom_nodes, task_ms,
        config, seed, site.host, archetype,
    )


def run_population_page(
    rank: int,
    seed: int,
    size: int = DEFAULT_POPULATION,
    mode: str = "model",
    config: str = "",
    visit: int = 0,
) -> dict:
    """One population cell: regenerate the page, measure one visit.

    This is the worker-side body of the ``"population"`` cell kind:
    everything is rebuilt from ``(rank, seed)``, nothing is shipped.
    ``config`` overrides the traffic-mix pick (session-driven visits
    carry their session's browser).
    """
    archetype = archetype_for_rank(rank, seed, size)
    weight = ARCHETYPES[archetype]["weight"]
    host = f"{archetype}{rank:07d}.example"
    chosen = config or config_for_rank(rank, seed)
    visit_seed = hash_seed(seed, f"pop:visit:{rank}:{chosen}:{visit}")
    if mode == "model":
        # the stats path replays generate_site's draw sequence without
        # building the description, so this equals
        # estimate_load_ms(page_for(rank, seed, size), ...) exactly
        total_bytes, script_bytes, dom_nodes, task_ms = site_stats(
            host, _site_seed(rank, seed), weight
        )
        load_ms = _estimate(
            total_bytes, script_bytes, dom_nodes, task_ms,
            chosen, visit_seed, host, archetype,
        )
    elif mode == "sim":
        from .alexa import measure_load_time_ms

        site = generate_site(host, _site_seed(rank, seed), weight)
        load_ms = measure_load_time_ms(chosen, site, seed=visit_seed)
    else:
        raise ValueError(f"unknown population mode {mode!r}; expected 'model' or 'sim'")
    return {
        "rank": rank,
        "archetype": archetype,
        "config": chosen,
        "load_ms": round(load_ms, 3),
    }


# ----------------------------------------------------------------------
# cells + bounded-memory aggregation
# ----------------------------------------------------------------------
def population_cells(
    size: int,
    seed: int = 0,
    mode: str = "model",
    visits: int = 1,
    browser_mix: Optional[Sequence[Tuple[str, float]]] = None,
):
    """Lazily generate one ``"population"`` cell per (rank, visit).

    A generator, deliberately: feeding it to
    :meth:`~repro.harness.parallel.ExperimentEngine.stream` keeps the
    resident cell count bounded by the stream window no matter how
    large ``size`` is.
    """
    from ..harness.parallel import Cell

    for rank in range(size):
        config = ""
        if browser_mix is not None:
            config = config_for_rank(rank, seed, tuple(browser_mix))
        for visit in range(visits):
            yield Cell(
                "population",
                {
                    "rank": rank,
                    "seed": seed,
                    "size": size,
                    "mode": mode,
                    "config": config,
                    "visit": visit,
                },
            )


def session_cells(
    model: PopulationModel,
    sessions: int,
    mode: str = "model",
):
    """One ``"population"`` cell per page visit of ``sessions`` sessions.

    The arrival process decides *which* pages get visited (Zipf over the
    rank distribution) and *with which browser* (the session's pick), so
    the sweep measures what users experience rather than a uniform rank
    scan.
    """
    from ..harness.parallel import Cell

    for session in session_stream(model, count=sessions):
        for visit, rank in enumerate(session.pages):
            yield Cell(
                "population",
                {
                    "rank": rank,
                    "seed": model.seed,
                    "size": model.size,
                    "mode": mode,
                    "config": session.config,
                    "visit": session.index * 131 + visit,
                },
            )


class PopulationAggregate:
    """Bounded-memory aggregation of a population sweep.

    Per-config and per-archetype load-time sketches (observed as integer
    microseconds, so merges are byte-identical under re-partitioning),
    page/error counters, and an error list capped at ``max_errors`` with
    an explicit overflow counter — never a per-page sample list.
    """

    def __init__(self, max_errors: int = 20):
        self.pages = 0
        self.cached = 0
        self.max_errors = max_errors
        self.errors: List[str] = []
        self.error_overflow = 0
        self.by_config: Dict[str, QuantileSketch] = {}
        self.by_archetype: Dict[str, QuantileSketch] = {}

    def add(self, result) -> None:
        """Fold one :class:`~repro.harness.parallel.CellResult` in."""
        if not result.ok:
            if len(self.errors) < self.max_errors:
                self.errors.append(f"{result.cell.label()}: {result.error}")
            else:
                self.error_overflow += 1
            return
        self.pages += 1
        if result.cached:
            self.cached += 1
        payload = result.payload
        micros = int(round(payload["load_ms"] * 1000.0))
        for keyed, key in (
            (self.by_config, payload["config"]),
            (self.by_archetype, payload["archetype"]),
        ):
            sketch = keyed.get(key)
            if sketch is None:
                sketch = keyed[key] = QuantileSketch()
            sketch.add(micros)

    @staticmethod
    def _summary(sketch: QuantileSketch) -> dict:
        quantiles = {
            label: (None if value is None else round(value / 1000.0, 3))
            for label, value in sketch.quantiles().items()
        }
        return {
            "count": sketch.count,
            "mean_ms": round(sketch.mean / 1000.0, 3) if sketch.count else None,
            **quantiles,
        }

    def report(self) -> dict:
        """The deterministic sweep summary (quantiles in ms)."""
        return {
            "pages": self.pages,
            "cached": self.cached,
            "errors": self.errors,
            "error_overflow": self.error_overflow,
            "configs": {
                name: self._summary(self.by_config[name])
                for name in sorted(self.by_config)
            },
            "archetypes": {
                name: self._summary(self.by_archetype[name])
                for name in sorted(self.by_archetype)
            },
        }


def population_sweep(
    size: int,
    seed: int = 0,
    mode: str = "model",
    visits: int = 1,
    sessions: Optional[int] = None,
    browser_mix: Optional[Sequence[Tuple[str, float]]] = None,
    parallel: Optional[int] = None,
    cache=None,
    window: Optional[int] = None,
    engine=None,
) -> dict:
    """Stream a population sweep and return its bounded-memory summary.

    ``sessions`` switches from a uniform rank scan to the session
    arrival process (``sessions`` sessions' worth of page visits).  The
    cell stream and the result stream are both generators; resident
    state is the engine's in-flight window plus the aggregate's
    sketches, independent of ``size``.
    """
    from ..harness.parallel import ExperimentEngine

    if engine is None:
        engine = ExperimentEngine(workers=parallel, cache=cache)
    if sessions is not None:
        model = PopulationModel(
            size=size, seed=seed,
            browser_mix=tuple(browser_mix or DEFAULT_BROWSER_MIX),
        )
        cells = session_cells(model, sessions, mode=mode)
    else:
        cells = population_cells(
            size, seed=seed, mode=mode, visits=visits, browser_mix=browser_mix
        )
    aggregate = PopulationAggregate()
    for result in engine.stream(cells, window=window):
        aggregate.add(result)
    report = aggregate.report()
    report.update(
        {
            "size": size,
            "seed": seed,
            "mode": mode,
            "sessions": sessions,
            "computed": engine.computed,
            "cache_hits": engine.cache_hits,
        }
    )
    return report
