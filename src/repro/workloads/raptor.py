"""Raptor tp6-style loading tests (Table III).

Raptor measures when a page's *hero element* is displayed — modern sites
keep loading after ``onload`` via JavaScript, so the hero element lands
later than the load event.  Each subtest models one of the four
raptor-tp6-1 pages (Amazon, Facebook, Google, Youtube) with a post-onload
script that fetches and installs the hero image.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.stats import mean, stdev
from ..defenses import make_browser
from ..runtime.network import Resource
from ..runtime.origin import parse_url
from ..runtime.rng import hash_seed
from ..runtime.simtime import to_ms
from .sites import SiteDescription, SiteResource, host_site

#: The four raptor-tp6-1 subtests with their relative weights.
SUBTEST_PROFILES = {
    "amazon": dict(scripts=5, script_kb=260, images=14, image_kb=70, tasks=9,
                   cost_ms=1.6, nodes=900, hero_kb=140, hero_work_ms=3.0),
    "facebook": dict(scripts=8, script_kb=420, images=18, image_kb=50, tasks=14,
                     cost_ms=2.2, nodes=1400, hero_kb=90, hero_work_ms=5.0),
    "google": dict(scripts=2, script_kb=140, images=4, image_kb=30, tasks=4,
                   cost_ms=0.8, nodes=300, hero_kb=40, hero_work_ms=1.0),
    "youtube": dict(scripts=9, script_kb=520, images=24, image_kb=90, tasks=18,
                    cost_ms=2.8, nodes=1800, hero_kb=260, hero_work_ms=8.0),
}


def raptor_site(name: str) -> SiteDescription:
    """Build the synthetic tp6 page for one subtest."""
    p = SUBTEST_PROFILES[name]
    resources = [
        SiteResource("script", f"/js/bundle{i}.js", p["script_kb"] * 1024 // p["scripts"])
        for i in range(p["scripts"])
    ]
    resources += [
        SiteResource("img", f"/img/asset{i}.png", p["image_kb"] * 1024)
        for i in range(p["images"])
    ]
    tasks = [((i + 1) * 6.0, p["cost_ms"]) for i in range(p["tasks"])]
    return SiteDescription(
        host=f"{name}.example",
        resources=resources,
        task_pattern=tasks,
        dom_nodes=p["nodes"],
    )


def measure_hero_time_ms(config: str, subtest: str, seed: int = 0) -> float:
    """One load: virtual ms from navigation to the hero element."""
    profile = SUBTEST_PROFILES[subtest]
    site = raptor_site(subtest)
    if config == "jskernel-firefox":
        browser = make_browser("jskernel", browser_name="firefox", seed=seed, with_bugs=False)
    else:
        browser = make_browser(config, seed=seed, with_bugs=False)
    page = browser.open_page(site.url)
    host_site(browser.network, site)
    hero_url = parse_url(f"https://{site.host}/img/hero.png")
    browser.network.host(Resource(hero_url, profile["hero_kb"] * 1024, "image/png"))

    box: Dict[str, int] = {}

    def main_script(scope) -> None:
        document = scope.document
        for i in range(site.dom_nodes // 10):
            div = document.create_element("div")
            document.body.append_child(div)
        for resource in site.resources:
            el = document.create_element("script" if resource.kind == "script" else "img")
            document.body.append_child(el)
            el.set_attribute("src", resource.path)
        for delay_ms, cost_ms in site.task_pattern:
            scope.setTimeout((lambda c: lambda: scope.busy_work(c))(cost_ms), delay_ms)
        page.arm_load_event()

    def install_hero(scope) -> None:
        scope.busy_work(profile["hero_work_ms"])
        hero = scope.document.create_element("img")
        hero.onload = lambda: box.__setitem__("hero_ns", browser.sim.now)
        scope.document.body.append_child(hero)
        hero.set_attribute("src", "/img/hero.png")

    page.run_script(main_script, label=f"raptor:{subtest}")
    page.on_load(lambda: page.run_script(install_hero, label="hero-install"))
    browser.run_until(lambda: "hero_ns" in box)
    return to_ms(box["hero_ns"])


def table3_rows(
    configs: List[str] = ("legacy-chrome", "jskernel", "legacy-firefox", "jskernel-firefox"),
    runs: int = 25,
    seed: int = 0,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """subtest -> config -> {mean, stdev} over runs (first run skipped)."""
    rows: Dict[str, Dict[str, Dict[str, float]]] = {}
    for subtest in SUBTEST_PROFILES:
        rows[subtest] = {}
        for config in configs:
            times = [
                measure_hero_time_ms(config, subtest, hash_seed(seed, f"{subtest}:{config}:{run}"))
                for run in range(runs)
            ][1:]  # skip the first (tab-open) run, as the paper does
            rows[subtest][config] = {"mean": mean(times), "stdev": stdev(times)}
    return rows
