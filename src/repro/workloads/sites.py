"""Synthetic site descriptions.

Real experiments used Alexa sites, raptor-tp6 page recordings and the
loopscan targets (google.com / youtube.com).  Offline, we generate
seeded synthetic equivalents: a :class:`SiteDescription` lists the
resources a site loads and the main-thread task pattern its scripts
produce.  Loading one exercises the network, parser, DOM and renderer;
its task pattern is what the loopscan attack profiles.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..runtime.network import Resource, SimNetwork
from ..runtime.origin import URL, parse_url
from ..runtime.rng import hash_seed


class SiteResource:
    """One subresource: kind decides parse/decode behaviour."""

    __slots__ = ("kind", "path", "size_bytes")

    def __init__(self, kind: str, path: str, size_bytes: int):
        self.kind = kind  # "script" | "img" | "css" | "xhr"
        self.path = path
        self.size_bytes = size_bytes


class SiteDescription:
    """A synthetic website."""

    def __init__(
        self,
        host: str,
        resources: List[SiteResource],
        task_pattern: List[Tuple[float, float]],
        dom_nodes: int = 300,
        post_onload_tasks: int = 0,
        uses_workers: bool = False,
        dynamic_fraction: float = 0.0,
    ):
        self.host = host
        self.resources = resources
        #: Main-thread script tasks as (delay_ms, cost_ms) pairs — the
        #: event-loop fingerprint loopscan profiles.
        self.task_pattern = task_pattern
        self.dom_nodes = dom_nodes
        #: Hero-element-style work continuing after onload (raptor).
        self.post_onload_tasks = post_onload_tasks
        self.uses_workers = uses_workers
        #: Fraction of DOM that is ads/dynamic content (compat §V-B2).
        self.dynamic_fraction = dynamic_fraction

    @property
    def url(self) -> str:
        """Site entry URL."""
        return f"https://{self.host}/"

    def total_bytes(self) -> int:
        """Sum of subresource sizes."""
        return sum(r.size_bytes for r in self.resources)


#: Event-loop task fingerprints for the two loopscan targets (delay, cost)
#: in ms.  Calibrated so the legacy Chrome "maximum event interval" lands
#: near Table II's 4.5 ms (google) and 8.8 ms (youtube).
GOOGLE_TASK_PATTERN: List[Tuple[float, float]] = [
    (2, 1.1), (5, 2.0), (9, 1.4), (13, 4.3), (19, 1.8), (24, 2.2),
    (30, 1.2), (36, 3.1), (43, 1.5), (50, 2.4),
]

YOUTUBE_TASK_PATTERN: List[Tuple[float, float]] = [
    (2, 2.6), (6, 4.1), (11, 8.6), (18, 3.2), (25, 6.9), (33, 2.8),
    (40, 8.1), (48, 5.2), (55, 3.6), (62, 7.4),
]


def loopscan_target(name: str) -> SiteDescription:
    """The loopscan victim sites (google / youtube)."""
    if name == "google":
        pattern = GOOGLE_TASK_PATTERN
    elif name == "youtube":
        pattern = YOUTUBE_TASK_PATTERN
    else:
        raise KeyError(f"unknown loopscan target {name!r}")
    return SiteDescription(
        host=f"{name}.com",
        resources=[SiteResource("script", "/app.js", 400_000)],
        task_pattern=pattern,
    )


#: Weight-class draw profiles shared by :func:`generate_site` and
#: :func:`site_stats` — both must consume the same seeded sequence.
SITE_PROFILES = {
    "light": dict(scripts=(2, 4), script_kb=(20, 120), images=(2, 8),
                  image_kb=(5, 60), tasks=(3, 8), cost=(0.2, 1.5), nodes=(80, 300)),
    "medium": dict(scripts=(3, 8), script_kb=(60, 400), images=(5, 20),
                   image_kb=(10, 150), tasks=(6, 16), cost=(0.3, 3.0), nodes=(200, 900)),
    "heavy": dict(scripts=(6, 14), script_kb=(150, 900), images=(10, 40),
                  image_kb=(20, 400), tasks=(10, 30), cost=(0.5, 6.0), nodes=(600, 2500)),
}


def generate_site(host: str, seed: int, weight: str = "medium") -> SiteDescription:
    """Seeded synthetic site in one of three weight classes."""
    rng = random.Random(hash_seed(seed, host))
    p = SITE_PROFILES[weight]
    resources: List[SiteResource] = []
    for i in range(rng.randint(*p["scripts"])):
        resources.append(
            SiteResource("script", f"/js/app{i}.js", rng.randint(*p["script_kb"]) * 1024)
        )
    for i in range(rng.randint(*p["images"])):
        resources.append(
            SiteResource("img", f"/img/pic{i}.png", rng.randint(*p["image_kb"]) * 1024)
        )
    tasks = []
    t = 0.0
    for _ in range(rng.randint(*p["tasks"])):
        t += rng.uniform(1, 12)
        tasks.append((t, rng.uniform(*p["cost"])))
    return SiteDescription(
        host=host,
        resources=resources,
        task_pattern=tasks,
        dom_nodes=rng.randint(*p["nodes"]),
        post_onload_tasks=rng.randint(0, 4),
        uses_workers=rng.random() < 0.2,
        dynamic_fraction=rng.random() * 0.15,
    )


def site_stats(host: str, seed: int, weight: str = "medium") -> Tuple[int, int, int, float]:
    """``(total_bytes, script_bytes, dom_nodes, task_cost_ms)`` of the site
    :func:`generate_site` would build for the same arguments.

    Consumes the identical seeded draw sequence but allocates nothing —
    the cheap summary closed-form load models need at population scale,
    where building tens of resource objects per page would dominate a
    100k-page sweep.
    """
    rng = random.Random(hash_seed(seed, host))
    p = SITE_PROFILES[weight]
    randint = rng.randint
    script_bytes = 0
    for _ in range(randint(*p["scripts"])):
        script_bytes += randint(*p["script_kb"]) * 1024
    total_bytes = script_bytes
    for _ in range(randint(*p["images"])):
        total_bytes += randint(*p["image_kb"]) * 1024
    uniform = rng.uniform
    cost_lo, cost_hi = p["cost"]
    task_cost_ms = 0.0
    for _ in range(randint(*p["tasks"])):
        uniform(1, 12)  # the task's delay draw; stats only need the cost
        task_cost_ms += uniform(cost_lo, cost_hi)
    return total_bytes, script_bytes, randint(*p["nodes"]), task_cost_ms


def host_site(network: SimNetwork, site: SiteDescription) -> None:
    """Register the site's resources on the simulated network."""
    base = parse_url(site.url)
    for resource in site.resources:
        url = URL(base.origin, resource.path)
        network.host(Resource(url, resource.size_bytes, content_type=resource.kind))


def load_site(browser, site: SiteDescription, page=None):
    """Open and drive ``site`` in ``browser``; returns the page.

    The caller runs the simulation and reads ``page.load_time_ns``.
    """
    host_site(browser.network, site)
    if page is None:
        page = browser.open_page(site.url)

    def main_script(scope) -> None:
        document = scope.document
        # static DOM
        for i in range(site.dom_nodes // 10):
            div = document.create_element("div")
            div.text = f"block-{i}"
            document.body.append_child(div)
        # dynamic content (ads): differs on every visit, defense or not —
        # the control case of the paper's DOM-similarity experiment
        if site.dynamic_fraction > 0.10:
            ad_rng = browser.rng.stream(f"ads:{site.host}")
            for i in range(max(3, int(site.dom_nodes * site.dynamic_fraction) // 6)):
                ad = document.create_element("iframe")
                ad.text = f"ad-{ad_rng.randint(0, 10**9)}"
                document.body.append_child(ad)
        # subresources
        for resource in site.resources:
            if resource.kind == "script":
                el = document.create_element("script")
            elif resource.kind == "img":
                el = document.create_element("img")
            else:
                continue
            document.body.append_child(el)
            el.set_attribute("src", resource.path)
        # script task pattern
        for delay_ms, cost_ms in site.task_pattern:
            scope.setTimeout(
                (lambda cost: lambda: scope.busy_work(cost))(cost_ms), delay_ms
            )
        # arm the load event now that all initial loads are in flight
        page.arm_load_event()

    page.run_script(main_script, label=f"site:{site.host}")
    return page
