"""CodePen-style API-specific compatibility apps (§V-B1).

Twenty small applications — five per searched API (performance.now,
requestAnimationFrame, setTimeout/workers, CSS animation) — each of
which produces an observable report: *functional* outputs (element
counts, computed values, message payloads) and *timing* outputs (FPS,
measured durations).

A defense is "observably different" on an app when a functional output
changes, or a timing output deviates beyond a tolerance from the legacy
browser (the paper's student would notice a broken app or a clearly
wrong FPS counter; small timing drift passes).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from ..defenses import make_browser
from ..runtime.origin import parse_url

#: Relative deviation beyond which a timing output is "observable".
TIMING_TOLERANCE = 0.5


def _app_stopwatch(scope, report: Dict[str, Any], done: Callable) -> None:
    """performance.now #1: a stopwatch measuring a fixed work chunk."""
    start = scope.performance.now()
    scope.busy_work(12.0)
    report["timing:elapsed_ms"] = scope.performance.now() - start
    report["functional:buttons"] = 3
    done()


def _app_lap_timer(scope, report: Dict[str, Any], done: Callable) -> None:
    """performance.now #2: laps across async gaps."""
    laps: List[float] = []
    start = scope.performance.now()

    def lap(index: int) -> None:
        laps.append(scope.performance.now() - start)
        if index < 3:
            scope.setTimeout(lambda: lap(index + 1), 20)
        else:
            report["timing:last_lap_ms"] = laps[-1]
            report["functional:laps"] = len(laps)
            done()

    scope.setTimeout(lambda: lap(1), 20)


def _app_bench_widget(scope, report: Dict[str, Any], done: Callable) -> None:
    """performance.now #3: ops-per-ms micro benchmark widget."""
    start = scope.performance.now()
    operations = 0
    while scope.performance.now() - start < 5.0 and operations < 5_000:
        scope.busy_work(0.01)
        operations += 1
    report["timing:ops"] = operations
    report["functional:rendered"] = True
    done()


def _app_profiler(scope, report: Dict[str, Any], done: Callable) -> None:
    """performance.now #4: section profiler summing segment times."""
    total = 0.0
    for _ in range(5):
        t0 = scope.performance.now()
        scope.busy_work(2.0)
        total += scope.performance.now() - t0
    report["timing:total_ms"] = total
    report["functional:sections"] = 5
    done()


def _app_clock_display(scope, report: Dict[str, Any], done: Callable) -> None:
    """performance.now #5: Date-based clock widget."""
    first = scope.Date.now()

    def second_read() -> None:
        report["timing:tick_delta_ms"] = scope.Date.now() - first
        report["functional:format_ok"] = isinstance(first, int)
        done()

    scope.setTimeout(second_read, 50)


def _make_fps_app(frames: int, work_ms: float):
    def app(scope, report: Dict[str, Any], done: Callable) -> None:
        timestamps: List[float] = []

        def frame(timestamp: float) -> None:
            timestamps.append(timestamp)
            scope.busy_work(work_ms)
            if len(timestamps) < frames:
                scope.requestAnimationFrame(frame)
            else:
                duration = timestamps[-1] - timestamps[0]
                report["timing:fps"] = (frames - 1) / duration * 1000.0 if duration > 0 else 0.0
                report["functional:frames"] = frames
                done()

        scope.requestAnimationFrame(frame)

    return app


def _app_worker_pingpong(scope, report: Dict[str, Any], done: Callable) -> None:
    """Workers #1: request/response protocol."""
    def worker_main(ws) -> None:
        ws.onmessage = lambda event: ws.postMessage({"echo": event.data})

    worker = scope.Worker(worker_main)
    replies: List[Any] = []

    def on_message(event) -> None:
        replies.append(event.data)
        if len(replies) == 3:
            report["functional:replies"] = [r["echo"] for r in replies]
            worker.terminate()
            done()

    worker.onmessage = on_message
    for i in range(3):
        worker.postMessage(i)


def _app_worker_compute(scope, report: Dict[str, Any], done: Callable) -> None:
    """Workers #2: background computation result."""
    def worker_main(ws) -> None:
        def on_message(event) -> None:
            ws.busy_work(8.0)
            ws.postMessage(sum(event.data))

        ws.onmessage = on_message

    worker = scope.Worker(worker_main)
    worker.onmessage = lambda event: (
        report.__setitem__("functional:sum", event.data),
        done(),
    )
    worker.postMessage([1, 2, 3, 4])


def _app_timeout_sequencer(scope, report: Dict[str, Any], done: Callable) -> None:
    """Timers #1: ordered step sequencer."""
    steps: List[int] = []
    for i, delay in enumerate((5, 10, 15, 20)):
        scope.setTimeout((lambda n: lambda: steps.append(n))(i), delay)

    def finish() -> None:
        report["functional:order"] = steps
        done()

    scope.setTimeout(finish, 40)


def _app_interval_counter(scope, report: Dict[str, Any], done: Callable) -> None:
    """Timers #2: interval-driven counter stopped after a while."""
    state = {"count": 0}
    interval_id = scope.setInterval(lambda: state.__setitem__("count", state["count"] + 1), 10)

    def finish() -> None:
        scope.clearInterval(interval_id)
        report["timing:ticks"] = state["count"]
        report["functional:stopped"] = True
        done()

    scope.setTimeout(finish, 105)


def _app_debounce(scope, report: Dict[str, Any], done: Callable) -> None:
    """Timers #3: debounce util fires exactly once."""
    state = {"fired": 0, "timer": None}

    def trigger() -> None:
        if state["timer"] is not None:
            scope.clearTimeout(state["timer"])
        state["timer"] = scope.setTimeout(
            lambda: state.__setitem__("fired", state["fired"] + 1), 12
        )

    for delay in (0, 4, 8):
        scope.setTimeout(trigger, delay)

    def finish() -> None:
        report["functional:fired_once"] = state["fired"] == 1
        done()

    scope.setTimeout(finish, 60)


def _make_animation_app(duration_ms: float, sample_at_ms: float):
    def app(scope, report: Dict[str, Any], done: Callable) -> None:
        element = scope.document.create_element("div")
        scope.document.body.append_child(element)
        scope.animate(element, "left", 0.0, 100.0, duration_ms)

        def sample() -> None:
            progress = scope.getComputedStyle(element, "left")
            report["timing:progress"] = progress
            report["functional:animating"] = 0.0 <= progress <= 100.0
            done()

        scope.setTimeout(sample, sample_at_ms)

    return app


def _with_asset(app: Callable, asset_path: str) -> Callable:
    """Wrap an app so it also loads an image asset.

    A failed load is a *functional* difference — the class of breakage
    the paper attributes to the C++-patched defenses (loading errors of
    images, objects, background).
    """

    def wrapped(scope, report: Dict[str, Any], done: Callable) -> None:
        state = {"asset": None, "app": False}

        def maybe_done() -> None:
            if state["asset"] is not None and state["app"]:
                report["functional:asset_loaded"] = state["asset"]
                done()

        image = scope.document.create_element("img")
        image.onload = lambda: (state.__setitem__("asset", True), maybe_done())
        image.onerror = lambda: (state.__setitem__("asset", False), maybe_done())
        scope.document.body.append_child(image)
        image.set_attribute("src", asset_path)

        app(scope, report, lambda: (state.__setitem__("app", True), maybe_done()))

    return wrapped


def _app_video_progress(scope, report: Dict[str, Any], done: Callable) -> None:
    """Animation #5: video progress bar."""
    video = scope.createVideo(30_000.0)
    video.play()

    def sample() -> None:
        report["timing:position_s"] = video.current_time
        report["functional:playing"] = video.playing
        done()

    scope.setTimeout(sample, 80)


#: The 20 apps: name -> (API family, app callable).
CODEPEN_APPS: Dict[str, Tuple[str, Callable]] = {
    "stopwatch": ("performance.now", _app_stopwatch),
    "lap-timer": ("performance.now", _app_lap_timer),
    "bench-widget": ("performance.now", _app_bench_widget),
    "profiler": ("performance.now", _app_profiler),
    "clock-display": ("performance.now", _app_clock_display),
    "fps-meter": ("requestAnimationFrame", _make_fps_app(8, 1.0)),
    "particle-field": ("requestAnimationFrame",
                       _with_asset(_make_fps_app(10, 4.0), "/assets/sprites.png")),
    "parallax": ("requestAnimationFrame",
                 _with_asset(_make_fps_app(6, 2.0), "/assets/background.png")),
    "canvas-spinner": ("requestAnimationFrame",
                       _with_asset(_make_fps_app(8, 6.0), "/assets/spinner.png")),
    "game-loop": ("requestAnimationFrame", _make_fps_app(12, 3.0)),
    "worker-pingpong": ("workers", _app_worker_pingpong),
    "worker-compute": ("workers", _app_worker_compute),
    "timeout-sequencer": ("workers", _app_timeout_sequencer),
    "interval-counter": ("workers", _app_interval_counter),
    "debounce": ("workers", _app_debounce),
    "tween-linear": ("css-animation", _make_animation_app(200.0, 50.0)),
    "tween-long": ("css-animation", _make_animation_app(1000.0, 120.0)),
    "progress-bar": ("css-animation",
                     _with_asset(_make_animation_app(400.0, 90.0), "/assets/icon.png")),
    "loading-spinner": ("css-animation",
                        _with_asset(_make_animation_app(600.0, 40.0), "/assets/throbber.png")),
    "video-progress": ("css-animation", _app_video_progress),
}


ASSET_PATHS = (
    "/assets/sprites.png",
    "/assets/background.png",
    "/assets/spinner.png",
    "/assets/icon.png",
    "/assets/throbber.png",
)


def run_app(config: str, app_name: str, seed: int = 0) -> Dict[str, Any]:
    """Run one app under one configuration; returns its report."""
    browser = make_browser(config, seed=seed, with_bugs=False)
    page = browser.open_page("https://codepen.example/")
    for asset in ASSET_PATHS:
        browser.network.host_simple(
            parse_url(f"https://codepen.example{asset}"), 12_000, "image/png"
        )
    report: Dict[str, Any] = {}
    box: Dict[str, bool] = {}
    _family, app = CODEPEN_APPS[app_name]
    page.run_script(lambda scope: app(scope, report, lambda: box.__setitem__("done", True)))
    browser.run_until(lambda: "done" in box)
    return report


def observable_difference(legacy: Dict[str, Any], under_defense: Dict[str, Any]) -> List[str]:
    """Fields a user would notice differing (see module docstring)."""
    differences: List[str] = []
    for key, legacy_value in legacy.items():
        value = under_defense.get(key)
        if key.startswith("functional:"):
            if value != legacy_value:
                differences.append(key)
        else:  # timing:
            if isinstance(legacy_value, (int, float)) and isinstance(value, (int, float)):
                base = abs(float(legacy_value))
                if base < 1e-9:
                    if abs(float(value)) > 1e-9:
                        differences.append(key)
                elif abs(float(value) - float(legacy_value)) / base > TIMING_TOLERANCE:
                    differences.append(key)
            elif value != legacy_value:
                differences.append(key)
    return differences


def compat_survey(
    config: str, baseline: str = "legacy-firefox", seed: int = 0
) -> Dict[str, List[str]]:
    """app -> list of observable differences for ``config``."""
    results: Dict[str, List[str]] = {}
    for app_name in CODEPEN_APPS:
        legacy = run_app(baseline, app_name, seed)
        defended = run_app(config, app_name, seed)
        results[app_name] = observable_difference(legacy, defended)
    return results


def apps_with_differences(survey: Dict[str, List[str]]) -> int:
    """Paper's headline number: apps out of 20 with observable diffs."""
    return sum(1 for diffs in survey.values() if diffs)
