"""Synthetic workloads standing in for the paper's test corpora."""

from .alexa import (
    FIGURE3_CONFIGS,
    alexa_population,
    figure3_series,
    measure_load_time_ms,
    measure_population,
)
from .codepen import (
    CODEPEN_APPS,
    apps_with_differences,
    compat_survey,
    observable_difference,
    run_app,
)
from .dromaeo import DROMAEO_TESTS, overhead_report, run_test
from .population import (
    DEFAULT_BROWSER_MIX,
    PopulationAggregate,
    PopulationModel,
    Session,
    archetype_for_rank,
    config_for_rank,
    estimate_load_ms,
    page_for,
    population_cells,
    population_sweep,
    session_cells,
    session_stream,
)
from .raptor import SUBTEST_PROFILES, measure_hero_time_ms, raptor_site, table3_rows
from .sites import (
    SiteDescription,
    SiteResource,
    generate_site,
    host_site,
    load_site,
    loopscan_target,
)
from .workerbench import WORKER_COUNT, measure_worker_creation_ms, worker_overhead_pct

__all__ = [
    "CODEPEN_APPS",
    "DEFAULT_BROWSER_MIX",
    "DROMAEO_TESTS",
    "FIGURE3_CONFIGS",
    "SUBTEST_PROFILES",
    "PopulationAggregate",
    "PopulationModel",
    "Session",
    "SiteDescription",
    "SiteResource",
    "WORKER_COUNT",
    "alexa_population",
    "archetype_for_rank",
    "config_for_rank",
    "estimate_load_ms",
    "page_for",
    "population_cells",
    "population_sweep",
    "session_cells",
    "session_stream",
    "apps_with_differences",
    "compat_survey",
    "figure3_series",
    "generate_site",
    "host_site",
    "load_site",
    "loopscan_target",
    "measure_hero_time_ms",
    "measure_load_time_ms",
    "measure_population",
    "measure_worker_creation_ms",
    "observable_difference",
    "overhead_report",
    "raptor_site",
    "run_app",
    "run_test",
    "table3_rows",
    "worker_overhead_pct",
]
