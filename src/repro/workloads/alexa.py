"""Alexa-Top-500-like population of synthetic sites (Figure 3).

The paper loads the Alexa Top 500 in seven browser configurations and
plots the loading-time CDF.  We generate a seeded population of sites in
three weight classes (roughly matching the head/torso/tail of popular
sites) and measure ``Page.load_time_ns`` per configuration.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..defenses import make_browser
from ..runtime.rng import hash_seed
from ..runtime.simtime import to_ms
from .sites import SiteDescription, generate_site, load_site

#: Figure 3's browser configurations (defense registry names).
FIGURE3_CONFIGS = [
    "legacy-chrome",
    "jskernel",            # Chrome with JSKernel (browser-agnostic default)
    "chromezero",
    "legacy-firefox",
    "jskernel-firefox",    # Firefox with JSKernel
    "deterfox",
    "tor",
    "fuzzyfox",
]


def site_for_rank(rank: int, count: int, seed: int) -> SiteDescription:
    """The population member at ``rank``, derivable independently.

    Site generation is a pure function of ``(rank, count, seed)``, which
    is what lets the parallel engine regenerate a single site inside a
    worker instead of shipping the whole population across the process
    boundary.
    """
    if rank < count * 0.2:
        weight = "light"
    elif rank < count * 0.75:
        weight = "medium"
    else:
        weight = "heavy"
    return generate_site(f"site{rank:03d}.example", hash_seed(seed, str(rank)), weight)


def alexa_population(count: int = 500, seed: int = 0) -> List[SiteDescription]:
    """Generate the seeded site population."""
    return [site_for_rank(rank, count, seed) for rank in range(count)]


def _browser_for(config: str, seed: int):
    if config == "jskernel-firefox":
        browser = make_browser("jskernel", browser_name="firefox", seed=seed, with_bugs=False)
    else:
        browser = make_browser(config, seed=seed, with_bugs=False)
    return browser


def measure_load_time_ms(config: str, site: SiteDescription, seed: int = 0) -> float:
    """One visit: virtual ms from navigation to the load event."""
    browser = _browser_for(config, seed)
    page = browser.open_page(site.url)
    load_site(browser, site, page=page)
    browser.run_until(lambda: page.loaded)
    # drain a little so defense-level deferred work is accounted
    return to_ms(page.load_time_ns)


def measure_site_average(
    config: str,
    site: SiteDescription,
    visits: int = 3,
    seed: int = 0,
) -> float:
    """One Figure 3 cell: a site's load time averaged over ``visits``."""
    times = [
        measure_load_time_ms(config, site, hash_seed(seed, f"{site.host}:{visit}"))
        for visit in range(visits)
    ]
    return sum(times) / len(times)


def measure_population(
    config: str,
    sites: List[SiteDescription],
    visits: int = 3,
    seed: int = 0,
) -> List[float]:
    """Average load time per site over ``visits`` (the Figure 3 series)."""
    return [measure_site_average(config, site, visits, seed) for site in sites]


def figure3_series(
    site_count: int = 500,
    visits: int = 3,
    seed: int = 0,
    configs: Optional[List[str]] = None,
    parallel: Optional[int] = None,
    cache=None,
) -> Dict[str, List[float]]:
    """config name -> per-site average load times (for the CDF).

    Every ``(config, site)`` visit-average is an independent experiment
    cell.  The cell list is a *generator* fed to
    :meth:`~repro.harness.parallel.ExperimentEngine.stream`, so the
    sweep shards across ``parallel`` worker processes with only the
    in-flight window resident — the same path the population sweeps
    use — while results still arrive in submission order (per-config
    series keep their rank order).
    """
    from ..harness.parallel import Cell, ExperimentEngine

    configs = list(configs or FIGURE3_CONFIGS)
    cells = (
        Cell(
            "alexa",
            {"config": config, "rank": rank, "site_count": int(site_count),
             "visits": int(visits), "seed": seed},
        )
        for config in configs
        for rank in range(site_count)
    )
    series: Dict[str, List[float]] = {config: [] for config in configs}
    for result in ExperimentEngine(workers=parallel, cache=cache).stream(cells):
        if not result.ok:
            raise RuntimeError(f"alexa cell {result.cell.label()} failed: {result.error}")
        series[result.cell.params["config"]].append(result.payload["avg_ms"])
    return series
