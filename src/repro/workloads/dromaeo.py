"""Dromaeo-like JavaScript micro-benchmark suite (§V-A1).

Dromaeo scores many small tests — math, strings, data structures, DOM
operations.  Each test here runs a fixed workload against a page scope
and reports its *virtual-time* duration; the overhead of a defense is
the relative slowdown versus the legacy browser.

The interesting structure from the paper: most tests barely touch any
kernel-wrapped API (median overhead 0.30%), while the DOM-attribute test
crosses the kernel boundary on every operation and pays ~21%.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..analysis.stats import mean, median
from ..defenses import make_browser
from ..runtime.simtime import to_ms


def _test_math_cordic(scope) -> None:
    """Pure computation: no API calls at all."""
    for _ in range(40):
        scope.busy_work(0.05)


def _test_string_base64(scope) -> None:
    """String churn: pure computation plus occasional console logging."""
    for i in range(25):
        scope.busy_work(0.08)
        if i % 10 == 0:
            scope.console.log("chunk", i)


def _test_array_ops(scope) -> None:
    """Array manipulation: pure computation."""
    for _ in range(60):
        scope.busy_work(0.03)


def _test_regexp(scope) -> None:
    """Regex scanning: pure computation in larger chunks."""
    for _ in range(12):
        scope.busy_work(0.18)


def _test_dom_modify(scope) -> None:
    """createElement/appendChild churn (native DOM, not wrapped)."""
    document = scope.document
    for i in range(120):
        el = document.create_element("div")
        document.body.append_child(el)


def _test_dom_query(scope) -> None:
    """Tree traversal (native DOM)."""
    document = scope.document
    for i in range(30):
        el = document.create_element("span")
        document.body.append_child(el)
    for _ in range(40):
        document.get_elements_by_tag("span")
        scope.busy_work(0.01)


def _test_dom_attr(scope) -> None:
    """The kernel-boundary hammer: computed-style reads per operation.

    getComputedStyle is one of the wrapped APIs, so every iteration
    crosses into the kernel — the Dromaeo test the paper reports at
    ~21% overhead.
    """
    document = scope.document
    el = document.create_element("div")
    document.body.append_child(el)
    el.set_style("left", "10")
    for _ in range(400):
        scope.getComputedStyle(el, "left")


def _test_timers(scope) -> None:
    """setTimeout registration/cancellation churn (wrapped API)."""
    for _ in range(150):
        timer_id = scope.setTimeout(lambda: None, 50)
        scope.clearTimeout(timer_id)


DROMAEO_TESTS: Dict[str, Callable] = {
    "math-cordic": _test_math_cordic,
    "string-base64": _test_string_base64,
    "array-ops": _test_array_ops,
    "regexp-dna": _test_regexp,
    "dom-modify": _test_dom_modify,
    "dom-query": _test_dom_query,
    "dom-attr": _test_dom_attr,
    "timers": _test_timers,
}


def run_test(config: str, test_name: str, seed: int = 0) -> float:
    """Virtual-time duration (ms) of one test under one configuration."""
    browser = make_browser(config, seed=seed, with_bugs=False)
    page = browser.open_page("https://dromaeo.example/")
    box: Dict[str, float] = {}

    def runner(scope) -> None:
        start = browser.sim.now
        DROMAEO_TESTS[test_name](scope)
        box["duration_ms"] = to_ms(browser.sim.now - start)

    page.run_script(runner, label=f"dromaeo:{test_name}")
    browser.run_until(lambda: "duration_ms" in box)
    return box["duration_ms"]


def overhead_report(
    config: str = "jskernel", baseline: str = "legacy-chrome", seed: int = 0
) -> Dict[str, object]:
    """Per-test overhead of ``config`` vs ``baseline`` + summary stats."""
    overheads: Dict[str, float] = {}
    for test_name in DROMAEO_TESTS:
        base = run_test(baseline, test_name, seed)
        with_defense = run_test(config, test_name, seed)
        overheads[test_name] = (with_defense - base) / base * 100.0
    values = list(overheads.values())
    return {
        "per_test": overheads,
        "average_pct": mean(values),
        "median_pct": median(values),
        "worst_test": max(overheads, key=lambda k: overheads[k]),
        "worst_pct": max(values),
    }
