"""Worker-creation benchmark (§V-A1, pmav.eu web worker test).

Dromaeo has no workers, so the paper additionally creates 16 workers and
measures creation time with and without JSKernel (average overhead 0.9%
over 5 repeats).  Creation time = construction until every worker has
answered a ping.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.stats import mean
from ..defenses import make_browser
from ..runtime.rng import hash_seed
from ..runtime.simtime import to_ms

WORKER_COUNT = 16


def measure_worker_creation_ms(config: str, count: int = WORKER_COUNT, seed: int = 0) -> float:
    """Virtual ms from first construction to the last ready ping."""
    browser = make_browser(config, seed=seed, with_bugs=False)
    page = browser.open_page("https://workerbench.example/")
    box: Dict[str, int] = {"ready": 0}

    def bench(scope) -> None:
        box["start"] = browser.sim.now

        def worker_main(ws) -> None:
            def on_ping(event) -> None:
                # the pmav benchmark's workers do real work before replying
                ws.busy_work(20.0)
                ws.postMessage("pong")

            ws.onmessage = on_ping

        for _ in range(count):
            worker = scope.Worker(worker_main)
            worker.onmessage = _make_on_ready(worker)
            worker.postMessage("ping")

    def _make_on_ready(worker):
        def on_ready(_event) -> None:
            box["ready"] += 1
            if box["ready"] == count:
                box["end"] = browser.sim.now

        return on_ready

    page.run_script(bench, label="worker-bench")
    browser.run_until(lambda: "end" in box)
    return to_ms(box["end"] - box["start"])


def worker_overhead_pct(
    config: str = "jskernel",
    baseline: str = "legacy-chrome",
    repeats: int = 5,
    seed: int = 0,
) -> Dict[str, float]:
    """Average creation times and the relative overhead."""
    base_times: List[float] = []
    defense_times: List[float] = []
    for repeat in range(repeats):
        run_seed = hash_seed(seed, f"workerbench:{repeat}")
        base_times.append(measure_worker_creation_ms(baseline, seed=run_seed))
        defense_times.append(measure_worker_creation_ms(config, seed=run_seed))
    base_avg = mean(base_times)
    defense_avg = mean(defense_times)
    return {
        "baseline_ms": base_avg,
        "defense_ms": defense_avg,
        "overhead_pct": (defense_avg - base_avg) / base_avg * 100.0,
    }
