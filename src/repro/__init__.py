"""JSKernel reproduction (DSN 2020).

A simulated browser JavaScript runtime plus a faithful implementation of
JSKernel — the kernel-like structure that interposes on every timing- and
concurrency-relevant API to defeat web concurrency attacks — together
with the baseline defenses, all 22 Table I attacks, and harnesses that
regenerate every table and figure of the paper's evaluation.

Quickstart::

    from repro import Browser, JSKernel, vulnerable

    browser = Browser(profile=vulnerable("chrome"))
    JSKernel().install(browser)
    page = browser.open_page("https://example.com/")
    page.run_script(lambda scope: scope.setTimeout(lambda: None, 10))
    browser.run()

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .errors import (
    BrowserCrash,
    CrossOriginLeak,
    DoubleFreeError,
    KernelError,
    NullDerefError,
    PolicyError,
    ReproError,
    SecurityError,
    SimulationError,
    UseAfterFreeError,
)
from .kernel import CompositePolicy, JSKernel, Policy, SchedulingGrid
from .kernel.policies import (
    DeterministicSchedulingPolicy,
    ErrorSanitizerPolicy,
    FuzzySchedulingPolicy,
    PrivateModeStoragePolicy,
    TransferNeuterPolicy,
    WorkerLifecyclePolicy,
    WorkerXhrOriginPolicy,
    all_cve_policies,
)
from .runtime import (
    Browser,
    BrowserProfile,
    Page,
    SimImage,
    Simulator,
    by_name,
    chrome,
    edge,
    firefox,
    vulnerable,
)

__version__ = "1.0.0"

__all__ = [
    "Browser",
    "BrowserCrash",
    "BrowserProfile",
    "CompositePolicy",
    "CrossOriginLeak",
    "DeterministicSchedulingPolicy",
    "DoubleFreeError",
    "ErrorSanitizerPolicy",
    "FuzzySchedulingPolicy",
    "JSKernel",
    "KernelError",
    "NullDerefError",
    "Page",
    "Policy",
    "PolicyError",
    "PrivateModeStoragePolicy",
    "ReproError",
    "SchedulingGrid",
    "SecurityError",
    "SimImage",
    "SimulationError",
    "Simulator",
    "TransferNeuterPolicy",
    "UseAfterFreeError",
    "WorkerLifecyclePolicy",
    "WorkerXhrOriginPolicy",
    "all_cve_policies",
    "by_name",
    "chrome",
    "edge",
    "firefox",
    "vulnerable",
    "__version__",
]
