"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``matrix [--full]``      — regenerate (a slice of) Table I
* ``table2``               — SVG filtering + loopscan measurements
* ``figure2``              — script-parsing size sweep
* ``dromaeo``              — JSKernel Dromaeo overhead report
* ``compat``               — API-compat counts + DOM similarity (small)
* ``attacks``              — list every attack row
* ``defenses``             — list every registered defense
* ``trace``                — capture a Chrome trace of a scenario::

      python -m repro trace <matrix|table2|dromaeo|attack NAME>
                            [--out FILE] [--timeline] [--defense NAME]

Any command also accepts ``--metrics``: the run is captured under a
tracer and a metrics summary (task counts, queueing-delay and kernel
latency histograms) is printed afterwards.
"""

from __future__ import annotations

import sys

from .analysis.tables import render_series, render_table
from .attacks import attack_names, create as create_attack
from .attacks.registry import EXTENSION_ATTACKS
from .defenses import available
from .harness import (
    api_compat_counts,
    dom_similarity_survey,
    dromaeo_overhead,
    figure2_script_parsing,
    run_table1,
    table2_svg_loopscan,
)
from .trace import Tracer, capture, format_timeline, write_chrome_trace


def _cmd_matrix(args) -> None:
    if "--full" in args:
        result = run_table1()
    else:
        result = run_table1(
            attacks=["cache-attack", "clock-edge", "loopscan", "cve-2018-5092"],
            defenses=["legacy-chrome", "fuzzyfox", "deterfox", "tor", "chromezero", "jskernel"],
        )
    print(result.render())
    print(f"\nagreement with the paper: {result.agreement():.2%}")


def _cmd_table2(_args) -> None:
    table = table2_svg_loopscan(runs=3)
    rows = [
        [d, v["svg_low_ms"], v["svg_high_ms"], v["loopscan_google_ms"], v["loopscan_youtube_ms"]]
        for d, v in table.items()
        if d != "metrics"
    ]
    print(render_table(
        ["defense", "svg low", "svg high", "loops google", "loops youtube"], rows,
        title="Table II (ms)",
    ))


def _cmd_figure2(_args) -> None:
    series = figure2_script_parsing(
        sizes=[2 * 1024 * 1024, 6 * 1024 * 1024, 10 * 1024 * 1024]
    )
    print(render_series(series, title="Figure 2: reported time (ms) per size (MB)"))


def _cmd_dromaeo(_args) -> None:
    report = dromaeo_overhead()
    rows = [[name, f"{pct:+.2f}%"] for name, pct in report["per_test"].items()]
    print(render_table(["test", "overhead"], rows, title="Dromaeo overhead (JSKernel)"))
    print(f"average {report['average_pct']:+.2f}%  median {report['median_pct']:+.2f}%")


def _cmd_compat(_args) -> None:
    counts = api_compat_counts()
    for config, count in counts.items():
        print(f"{config:10s}: {count:2d}/20 apps with observable differences")
    survey = dom_similarity_survey(site_count=15)
    print(f"DOM similarity >= 99%: {survey['fraction_above']:.0%} of sites")


def _cmd_attacks(_args) -> None:
    for name in attack_names():
        print(name)
    for cls in EXTENSION_ATTACKS:
        print(f"{cls.name}  (extension)")


def _cmd_defenses(_args) -> None:
    for name in available():
        print(name)


TRACE_USAGE = (
    "usage: python -m repro trace <matrix|table2|dromaeo|attack NAME> "
    "[--out FILE] [--timeline] [--defense NAME]"
)


def _flag_value(args, flag, default):
    """Pop ``--flag VALUE`` from ``args`` (in place)."""
    if flag not in args:
        return default
    index = args.index(flag)
    if index + 1 >= len(args):
        print(TRACE_USAGE)
        raise SystemExit(2)
    value = args[index + 1]
    del args[index : index + 2]
    return value


def _cmd_trace(args) -> None:
    """Capture one scenario under a tracer and export Chrome trace JSON."""
    args = list(args)
    out = _flag_value(args, "--out", "trace.json")
    defense = _flag_value(args, "--defense", "jskernel")
    timeline = "--timeline" in args
    if timeline:
        args.remove("--timeline")
    show_metrics = "--metrics" in args
    if show_metrics:
        args.remove("--metrics")
    if not args:
        print(TRACE_USAGE)
        raise SystemExit(2)
    target = args[0]

    tracer = Tracer()
    with capture(tracer):
        if target == "matrix":
            # a narrow Table I slice: tracing the full matrix would
            # collect events from hundreds of browser runs
            run_table1(
                attacks=["cache-attack", "cve-2018-5092"],
                defenses=["legacy-chrome", "jskernel"],
            )
        elif target == "table2":
            table2_svg_loopscan(runs=1)
        elif target == "dromaeo":
            dromaeo_overhead()
        elif target == "attack":
            if len(args) < 2:
                print(TRACE_USAGE)
                raise SystemExit(2)
            create_attack(args[1]).run(defense)
        else:
            print(TRACE_USAGE)
            raise SystemExit(2)

    write_chrome_trace(tracer, out)
    threads = len(tracer.thread_table())
    print(
        f"wrote {out}: {len(tracer.events)} events across "
        f"{len(tracer.runs)} runs / {threads} threads "
        "(load in https://ui.perfetto.dev or chrome://tracing)"
    )
    if timeline:
        print(format_timeline(tracer))
    if show_metrics:
        print(tracer.metrics.format())


COMMANDS = {
    "matrix": _cmd_matrix,
    "table2": _cmd_table2,
    "figure2": _cmd_figure2,
    "dromaeo": _cmd_dromaeo,
    "compat": _cmd_compat,
    "attacks": _cmd_attacks,
    "defenses": _cmd_defenses,
    "trace": _cmd_trace,
}


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help") or args[0] not in COMMANDS:
        print(__doc__)
        return 0 if args and args[0] in ("-h", "--help") else 1
    command, rest = args[0], args[1:]
    if command != "trace" and "--metrics" in rest:
        rest.remove("--metrics")
        tracer = Tracer()
        with capture(tracer):
            COMMANDS[command](rest)
        print()
        print(tracer.metrics.format())
    else:
        COMMANDS[command](rest)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
