"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``matrix [--full]``      — regenerate (a slice of) Table I
* ``table2``               — SVG filtering + loopscan measurements
* ``figure2``              — script-parsing size sweep
* ``bench``                — serial-vs-parallel matrix baseline::

      python -m repro bench [--full] [--parallel N] [--out FILE]

  Times the same Table I cells serially and sharded over N workers,
  asserts the results are identical, exercises the warm-cache path, and
  writes a ``BENCH_matrix.json`` wall-clock baseline artifact.
* ``bench core``           — discrete-event hot-path microbenchmarks::

      python -m repro bench core [--out FILE] [--scale F | --quick]
                                 [--repeats N] [--only NAME,NAME,...]
                                 [--check BASELINE] [--tolerance F]

  Seeded events/sec microbenchmarks (raw dispatch, timer storms, the
  timer-wheel out-of-order storm, pre-compiled setTimeout chains,
  worker ping-pong, kernel scheduling, traced-vs-untraced overhead)
  written to ``BENCH_core.json``.  ``--check`` compares against a
  committed baseline and exits non-zero on a >20% normalised
  events/sec drop (``--tolerance`` overrides the 0.20; see
  ``benchmarks/baselines/``).
* ``dromaeo``              — JSKernel Dromaeo overhead report
* ``compat``               — API-compat counts + DOM similarity (small)
* ``attacks``              — list every attack row
* ``defenses``             — list every registered defense
* ``trace``                — capture a Chrome trace of a scenario::

      python -m repro trace <matrix|table2|dromaeo|attack NAME>
                            [--out FILE] [--timeline] [--defense NAME]

* ``analyze``              — causal analysis of one scenario's trace::

      python -m repro analyze <races|determinism|critpath> <attack>
                              [--defense NAME] [--seed N] [--seeds N,N,...]
                              [--json] [--out FILE]

* ``fuzz``                 — schedule-space exploration of one scenario::

      python -m repro fuzz [--attack NAME] [--defense NAME] [--seed N]
                           [--budget N] [--strategy mixed|jitter|priority|targeted]
                           [--out DIR] [--max-witnesses N] [--no-minimize]
                           [--max-events N] [--check-determinism]
                           [--vs DEFENSE] [--replay FILE]

  Perturbs the schedule and injects faults for ``--budget`` trials,
  checks the oracle batteries (races, crashes, leakage, determinism,
  kernel dispatch-order invariant), minimizes the failing trials with
  delta debugging, and writes replayable JSON witnesses into ``--out``.
  ``--replay FILE`` re-runs one witness twice and verifies the verdict.
  ``--vs DEFENSE`` switches to *differential* mode: every trial runs
  under both ``--defense`` and ``--vs`` with byte-identical perturbation
  and fault specs, and a witness is any schedule where one defense holds
  while the other leaks (the DetBrowser divergence hunt).

* ``population``           — streamed internet-scale load-time sweep::

      python -m repro population [--size N] [--seed N] [--mode model|sim]
                                 [--visits N] [--sessions N] [--window N]
                                 [--parallel N] [--json] [--out FILE]

  Sweeps a seeded population of ``--size`` pages (site archetypes whose
  mix shifts with popularity rank; see ``repro.workloads.population``)
  through the engine's bounded-window streaming path and prints
  per-config / per-archetype load-time quantiles from mergeable
  sketches — resident memory is independent of ``--size``.
  ``--sessions N`` switches from a uniform rank scan to a seeded user-
  session arrival process (Zipf page picks, per-session browser from
  the traffic mix).  ``--mode model`` (default) evaluates the closed-
  form load-time model; ``--mode sim`` drives the full simulated
  browser (Figure-3 path, ~1000x slower).

* ``serve``                — long-running experiment service::

      python -m repro serve --socket PATH              # server (foreground)
      python -m repro serve --socket PATH --submit JOB [--out FILE]
      python -m repro serve --socket PATH --ping | --status |
                            --cancel JOB_ID | --shutdown

  Accepts experiment jobs as JSON lines over a local unix socket and
  streams incremental results plus telemetry snapshots back on the
  same connection (see ``repro.serve`` for the frame schema).  ``JOB``
  is an inline JSON job spec, ``@FILE`` or ``-`` for stdin, e.g.
  ``'{"kind": "population", "size": 5000}'``.  Jobs can be cancelled
  mid-flight; a disconnecting client cancels its own job; ``--shutdown``
  stops the server gracefully.

* ``cube``                 — the defense × attack cube::

      python -m repro cube [--full] [--attacks A,B,...] [--defenses X,Y,...]
                           [--seed N] [--json] [--out FILE]

  Every cell runs under a private tracer, so alongside the Table I style
  verdict each cell carries an overhead profile (event-loop queue-delay
  CDF, kernel stage latencies, task counts).  Cells where the
  JSKernel/DetBrowser pair disagree — by verdict or by overhead shape —
  are reported as first-class divergent cells.  ``--out FILE`` writes the
  JSON cube (the CI artifact), ``--json`` prints it.

Any command also accepts ``--metrics``: the run is captured under a
tracer and a metrics summary (task counts, queueing-delay and kernel
latency histograms) is printed afterwards.

Any command also accepts ``--profile``: the run executes under
``cProfile``, a ``PROFILE_<command>.pstats`` dump is written for
offline digging, and the top 20 functions by cumulative time are
printed.

The experiment commands (``matrix``, ``table2``, ``figure2``, ``bench``,
``fuzz``, ``cube``) additionally accept the parallel-engine flags:

* ``--parallel N``   — shard cells over N worker processes (results are
  byte-identical to the serial run; see ``repro.harness.parallel``)
* ``--no-cache``     — disable the content-addressed result cache
* ``--cache-dir D``  — cache root (default ``$REPRO_CACHE_DIR`` or
  ``~/.cache/repro-jskernel``)

and the telemetry flags (see ``repro.telemetry``):

* ``--live``             — repaint a stderr progress line while the run
  executes: cells/sec, cache hit-rate, shard progress, sketch-derived
  running p50/p95 queue delay, ETA
* ``--telemetry-out F``  — write the final merged telemetry snapshot as
  JSON to ``F`` plus a Prometheus text exposition next to it (``.prom``)
* ``--runlog F``         — structured JSONL run log path (span begin/end,
  per-cell outcomes, cache hits, shard lifecycle); any telemetry flag
  implies a run log, defaulting to ``RUN_<command>.jsonl``

Telemetry runs record quantile sketches alongside the exact histograms
(``cube`` cells gain sketch-derived percentiles in their overhead
profiles; the sketch mode is part of the cell parameters, so telemetry
and exact-mode results cache separately and golden fixtures stay
pinned).
"""

from __future__ import annotations

import json
import sys

from .analysis.tables import render_series, render_table
from .attacks import all_attack_names, attack_names, create as create_attack
from .attacks.registry import EXTENSION_ATTACKS
from .defenses import available
from .harness import (
    api_compat_counts,
    dom_similarity_survey,
    dromaeo_overhead,
    figure2_script_parsing,
    run_table1,
    table2_svg_loopscan,
)
from .trace import Tracer, capture, format_timeline, write_chrome_trace


def _engine_flags(args):
    """Pop the parallel-engine flags shared by the experiment commands.

    Returns ``(parallel, cache)``: a worker count (or ``None`` for
    serial) and a cache argument for :func:`repro.harness.as_cache` —
    caching is on by default, ``--no-cache`` turns it off.
    """
    parallel_arg = _flag_value(args, "--parallel", None)
    cache_dir = _flag_value(args, "--cache-dir", "")
    no_cache = "--no-cache" in args
    if no_cache:
        args.remove("--no-cache")
    try:
        parallel = int(parallel_arg) if parallel_arg is not None else None
    except ValueError:
        _die(f"--parallel takes an integer worker count, got {parallel_arg!r}")
    cache = None if no_cache else (cache_dir or True)
    return parallel, cache


def _cmd_matrix(args) -> None:
    args = list(args)
    parallel, cache = _engine_flags(args)
    if "--full" in args:
        result = run_table1(parallel=parallel, cache=cache)
    else:
        result = run_table1(
            attacks=["cache-attack", "clock-edge", "loopscan", "cve-2018-5092"],
            defenses=["legacy-chrome", "fuzzyfox", "deterfox", "tor", "chromezero", "jskernel"],
            parallel=parallel,
            cache=cache,
        )
    print(result.render())
    print(f"\nagreement with the paper: {result.agreement():.2%}")
    print(f"cells: {result.computed_cells} computed, {result.cached_cells} cached")
    for line in result.errors:
        print(f"cell error: {line}", file=sys.stderr)


def _cmd_table2(args) -> None:
    args = list(args)
    parallel, cache = _engine_flags(args)
    table = table2_svg_loopscan(runs=3, parallel=parallel, cache=cache)
    rows = [
        [d, v["svg_low_ms"], v["svg_high_ms"], v["loopscan_google_ms"], v["loopscan_youtube_ms"]]
        for d, v in table.items()
    ]
    print(render_table(
        ["defense", "svg low", "svg high", "loops google", "loops youtube"], rows,
        title="Table II (ms)",
    ))


def _cmd_figure2(args) -> None:
    args = list(args)
    parallel, cache = _engine_flags(args)
    series = figure2_script_parsing(
        sizes=[2 * 1024 * 1024, 6 * 1024 * 1024, 10 * 1024 * 1024],
        parallel=parallel,
        cache=cache,
    )
    print(render_series(series, title="Figure 2: reported time (ms) per size (MB)"))


#: The matrix slice ``bench`` times by default (--full uses all cells).
BENCH_ATTACKS = ["cache-attack", "clock-edge", "loopscan", "svg-filtering", "cve-2018-5092"]
BENCH_DEFENSES = ["legacy-chrome", "fuzzyfox", "deterfox", "tor", "chromezero", "jskernel"]


BENCH_CORE_USAGE = (
    "usage: python -m repro bench core [--out FILE] [--scale F | --quick] "
    "[--repeats N] [--only NAME,NAME,...] [--check BASELINE] [--tolerance F]"
)


def _cmd_bench_core(args) -> None:
    """Hot-path microbenchmarks; writes BENCH_core.json."""
    from .harness.bench_core import (
        DEFAULT_REPEATS,
        REGRESSION_TOLERANCE,
        check_regression,
        format_report,
        run_bench_core,
    )

    out = _flag_value(args, "--out", "BENCH_core.json")
    scale_arg = _flag_value(args, "--scale", "1.0")
    repeats_arg = _flag_value(args, "--repeats", str(DEFAULT_REPEATS))
    only_arg = _flag_value(args, "--only", "")
    baseline_path = _flag_value(args, "--check", "")
    tolerance_arg = _flag_value(args, "--tolerance", str(REGRESSION_TOLERANCE))
    quick = "--quick" in args
    if quick:
        args.remove("--quick")
    if args:
        print(BENCH_CORE_USAGE)
        raise SystemExit(2)
    try:
        scale = 0.1 if quick else float(scale_arg)
        repeats = int(repeats_arg)
        tolerance = float(tolerance_arg)
    except ValueError:
        _die(
            "--scale/--repeats/--tolerance take numbers, got "
            f"{scale_arg!r} / {repeats_arg!r} / {tolerance_arg!r}"
        )
    if not 0 < tolerance < 1:
        _die(f"--tolerance is a fraction in (0, 1), got {tolerance}")
    only = [name for name in only_arg.split(",") if name] or None

    try:
        report = run_bench_core(scale=scale, repeats=repeats, only=only)
    except ValueError as exc:
        _die(str(exc))
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(format_report(report))
    print(f"\nwrote {out}")

    if baseline_path:
        try:
            with open(baseline_path, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            _die(f"cannot load baseline {baseline_path!r}: {exc}")
        failures = check_regression(report, baseline, tolerance=tolerance)
        if failures:
            for line in failures:
                print(f"regression: {line}", file=sys.stderr)
            raise SystemExit(1)
        print(f"no regression vs {baseline_path} (tolerance {tolerance:.0%})")


def _cmd_bench(args) -> None:
    """Serial vs parallel Table I baseline; writes BENCH_matrix.json."""
    import tempfile
    import time

    from .harness import ResultCache

    args = list(args)
    if args and args[0] == "core":
        _cmd_bench_core(args[1:])
        return
    out = _flag_value(args, "--out", "BENCH_matrix.json")
    workers_arg = _flag_value(args, "--parallel", "2")
    try:
        workers = int(workers_arg)
    except ValueError:
        _die(f"--parallel takes an integer worker count, got {workers_arg!r}")
    if workers < 2:
        _die("bench compares serial against a sharded run; --parallel must be >= 2")
    full = "--full" in args
    attacks = None if full else BENCH_ATTACKS
    defenses = None if full else BENCH_DEFENSES

    start = time.perf_counter()
    serial = run_table1(attacks=attacks, defenses=defenses)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = run_table1(attacks=attacks, defenses=defenses, parallel=workers)
    parallel_s = time.perf_counter() - start

    identical = serial.matrix == sharded.matrix and serial.details == sharded.details

    with tempfile.TemporaryDirectory() as tmp:
        run_table1(attacks=attacks, defenses=defenses, parallel=workers, cache=ResultCache(tmp))
        warm = run_table1(attacks=attacks, defenses=defenses, parallel=workers,
                          cache=ResultCache(tmp))
        warm_identical = (
            warm.matrix == serial.matrix and warm.details == serial.details
        )

    cells = sum(len(row) for row in serial.matrix.values())
    report = {
        "cells": cells,
        "workers": workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        "identical": identical,
        "warm_cache_computed": warm.computed_cells,
        "warm_cache_hits": warm.cached_cells,
        "warm_identical": warm_identical,
        "errors": serial.errors + sharded.errors,
    }
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"{cells} cells: serial {serial_s:.2f}s, parallel({workers}) {parallel_s:.2f}s "
        f"({report['speedup']}x), warm cache recomputed {warm.computed_cells} "
        f"(wrote {out})"
    )
    if not identical:
        _die("parallel matrix differs from the serial run")
    if not warm_identical:
        _die("warm-cache matrix differs from the serial run")
    if warm.computed_cells:
        _die(f"warm cache recomputed {warm.computed_cells} cells (expected 0)")


def _cmd_dromaeo(_args) -> None:
    report = dromaeo_overhead()
    rows = [[name, f"{pct:+.2f}%"] for name, pct in report["per_test"].items()]
    print(render_table(["test", "overhead"], rows, title="Dromaeo overhead (JSKernel)"))
    print(f"average {report['average_pct']:+.2f}%  median {report['median_pct']:+.2f}%")


def _cmd_compat(_args) -> None:
    counts = api_compat_counts()
    for config, count in counts.items():
        print(f"{config:10s}: {count:2d}/20 apps with observable differences")
    survey = dom_similarity_survey(site_count=15)
    print(f"DOM similarity >= 99%: {survey['fraction_above']:.0%} of sites")


def _cmd_attacks(_args) -> None:
    for name in attack_names():
        print(name)
    for cls in EXTENSION_ATTACKS:
        print(f"{cls.name}  (extension)")


def _cmd_defenses(_args) -> None:
    for name in available():
        print(name)


TRACE_USAGE = (
    "usage: python -m repro trace <matrix|table2|dromaeo|attack NAME> "
    "[--out FILE] [--timeline] [--defense NAME]"
)

ANALYZE_USAGE = (
    "usage: python -m repro analyze <races|determinism|critpath> <attack> "
    "[--defense NAME] [--seed N] [--seeds N,N,...] [--json] [--out FILE]"
)


def _die(message: str) -> None:
    """Print a clear error to stderr and exit non-zero."""
    print(f"error: {message}", file=sys.stderr)
    raise SystemExit(2)


def _check_attack(name: str) -> str:
    if name not in all_attack_names():
        _die(
            f"unknown attack {name!r}; "
            f"run 'python -m repro attacks' for the list"
        )
    return name


def _check_defense(name: str) -> str:
    if name not in available():
        _die(
            f"unknown defense {name!r}; "
            f"run 'python -m repro defenses' for the list"
        )
    return name


def _flag_value(args, flag, default):
    """Pop ``--flag VALUE`` from ``args`` (in place)."""
    if flag not in args:
        return default
    index = args.index(flag)
    if index + 1 >= len(args):
        print(TRACE_USAGE)
        raise SystemExit(2)
    value = args[index + 1]
    del args[index : index + 2]
    return value


def _cmd_trace(args) -> None:
    """Capture one scenario under a tracer and export Chrome trace JSON."""
    args = list(args)
    out = _flag_value(args, "--out", "trace.json")
    defense = _flag_value(args, "--defense", "jskernel")
    timeline = "--timeline" in args
    if timeline:
        args.remove("--timeline")
    show_metrics = "--metrics" in args
    if show_metrics:
        args.remove("--metrics")
    if not args:
        print(TRACE_USAGE)
        raise SystemExit(2)
    target = args[0]

    tracer = Tracer()
    with capture(tracer):
        if target == "matrix":
            # a narrow Table I slice: tracing the full matrix would
            # collect events from hundreds of browser runs
            run_table1(
                attacks=["cache-attack", "cve-2018-5092"],
                defenses=["legacy-chrome", "jskernel"],
            )
        elif target == "table2":
            table2_svg_loopscan(runs=1)
        elif target == "dromaeo":
            dromaeo_overhead()
        elif target == "attack":
            if len(args) < 2:
                print(TRACE_USAGE)
                raise SystemExit(2)
            create_attack(_check_attack(args[1])).run(_check_defense(defense))
        else:
            print(TRACE_USAGE)
            raise SystemExit(2)

    write_chrome_trace(tracer, out)
    threads = len(tracer.thread_table())
    print(
        f"wrote {out}: {len(tracer.events)} events across "
        f"{len(tracer.runs)} runs / {threads} threads "
        "(load in https://ui.perfetto.dev or chrome://tracing)"
    )
    if timeline:
        print(format_timeline(tracer))
    if show_metrics:
        print(tracer.metrics.format())


def _cmd_analyze(args) -> None:
    """Causal analysis: races, determinism audit, critical-path profile."""
    args = list(args)
    out = _flag_value(args, "--out", "")
    defense = _check_defense(_flag_value(args, "--defense", "jskernel"))
    seed_arg = _flag_value(args, "--seed", "0")
    seeds_arg = _flag_value(args, "--seeds", "0,1,2")
    as_json = "--json" in args
    if as_json:
        args.remove("--json")
    if len(args) < 2:
        print(ANALYZE_USAGE)
        raise SystemExit(2)
    mode, attack = args[0], _check_attack(args[1])
    try:
        seed = int(seed_arg)
        seeds = tuple(int(s) for s in seeds_arg.split(",") if s != "")
    except ValueError:
        _die(f"--seed/--seeds take integers, got {seed_arg!r} / {seeds_arg!r}")

    # imported lazily: the analysers pull in the whole attack registry
    from .analysis.critpath import format_critpath, profile_scenario
    from .analysis.determinism import audit_scenario, format_audit
    from .analysis.races import analyze_scenario, format_races

    if mode == "races":
        report = analyze_scenario(attack, defense, seed=seed)
        rendered = format_races(report)
    elif mode == "determinism":
        if len(seeds) < 2:
            _die(f"determinism audit needs at least two seeds, got {seeds_arg!r}")
        report = audit_scenario(attack, defense, seeds=seeds)
        rendered = format_audit(report)
    elif mode == "critpath":
        report = profile_scenario(attack, defense, seed=seed)
        rendered = format_critpath(report)
    else:
        _die(f"unknown analyze mode {mode!r}; expected races, determinism or critpath")

    payload = json.dumps(report, indent=2, sort_keys=True)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {out}")
    if as_json:
        print(payload)
    else:
        print(rendered)


CUBE_USAGE = (
    "usage: python -m repro cube [--full] [--attacks A,B,...] "
    "[--defenses X,Y,...] [--seed N] [--json] [--out FILE] [--parallel N]"
)

#: The cube slice run by default (--full covers every Table I row).
CUBE_ATTACKS = ["cache-attack", "clock-edge", "loopscan", "sab-timer", "cve-2018-5092"]


def _cmd_cube(args) -> None:
    """Defense × attack cube: verdicts + per-cell overhead CDFs."""
    from .defenses import CUBE_DEFENSES
    from .harness import run_cube

    args = list(args)
    parallel, cache = _engine_flags(args)
    attacks_arg = _flag_value(args, "--attacks", "")
    defenses_arg = _flag_value(args, "--defenses", "")
    seed_arg = _flag_value(args, "--seed", "0")
    out = _flag_value(args, "--out", "")
    as_json = "--json" in args
    if as_json:
        args.remove("--json")
    full = "--full" in args
    if full:
        args.remove("--full")
    if args:
        print(CUBE_USAGE)
        raise SystemExit(2)
    try:
        seed = int(seed_arg)
    except ValueError:
        _die(f"--seed takes an integer, got {seed_arg!r}")

    if attacks_arg:
        attacks = [_check_attack(a) for a in attacks_arg.split(",") if a]
    else:
        attacks = None if full else CUBE_ATTACKS
    if defenses_arg:
        defenses = [_check_defense(d) for d in defenses_arg.split(",") if d]
    else:
        defenses = CUBE_DEFENSES

    from .telemetry import current_run

    result = run_cube(
        attacks=attacks,
        defenses=defenses,
        seed=seed,
        parallel=parallel,
        cache=cache,
        # telemetry runs carry sketch-derived percentiles per cell; the
        # flag is a cell parameter, so the two modes cache separately
        sketches=current_run() is not None,
    )
    payload = json.dumps(result.to_json(), indent=2, sort_keys=True)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {out}")
    if as_json:
        print(payload)
    else:
        print(result.render())
        print(
            f"\ncells: {result.computed_cells} computed, "
            f"{result.cached_cells} cached"
        )
    for line in result.errors:
        print(f"cell error: {line}", file=sys.stderr)


FUZZ_USAGE = (
    "usage: python -m repro fuzz [--attack NAME] [--defense NAME] [--seed N] "
    "[--budget N] [--strategy mixed|jitter|priority|targeted] [--parallel N] "
    "[--out DIR] [--max-witnesses N] [--no-minimize] [--max-events N] "
    "[--check-determinism] [--vs DEFENSE] [--replay FILE]"
)

#: Event backstop for fuzz trials: perturbed schedules can loop where
#: the nominal one terminates, so fail fast (still ~1000x a normal run).
FUZZ_MAX_EVENTS = 2_000_000


def _cmd_fuzz(args) -> None:
    """Schedule-space fuzzing: campaign, minimization, witness replay."""
    import os

    from .explore.campaign import DEFAULT_ATTACK, DEFAULT_DEFENSE, STRATEGIES, run_campaign
    from .explore.minimize import (
        load_witness,
        minimize_witness,
        replay_witness,
        save_witness,
    )
    from .explore.oracles import signature

    args = list(args)
    parallel, cache = _engine_flags(args)
    replay_path = _flag_value(args, "--replay", "")
    attack = _flag_value(args, "--attack", DEFAULT_ATTACK)
    defense = _flag_value(args, "--defense", DEFAULT_DEFENSE)
    vs = _flag_value(args, "--vs", "")
    seed_arg = _flag_value(args, "--seed", "0")
    budget_arg = _flag_value(args, "--budget", "200")
    strategy = _flag_value(args, "--strategy", "mixed")
    out_dir = _flag_value(args, "--out", "witnesses")
    max_witnesses_arg = _flag_value(args, "--max-witnesses", "5")
    max_events_arg = _flag_value(args, "--max-events", "")
    no_minimize = "--no-minimize" in args
    if no_minimize:
        args.remove("--no-minimize")
    check_determinism = None
    if "--check-determinism" in args:
        args.remove("--check-determinism")
        check_determinism = True
    if args:
        print(FUZZ_USAGE)
        raise SystemExit(2)
    def _int_flag(flag: str, value: str) -> int:
        try:
            return int(value)
        except ValueError:
            _die(f"{flag} takes an integer, got {value!r}")

    seed = _int_flag("--seed", seed_arg)
    budget = _int_flag("--budget", budget_arg)
    max_witnesses = _int_flag("--max-witnesses", max_witnesses_arg)
    max_events = (
        _int_flag("--max-events", max_events_arg) if max_events_arg else FUZZ_MAX_EVENTS
    )
    if strategy != "mixed" and strategy not in STRATEGIES:
        _die(f"unknown strategy {strategy!r}; expected 'mixed' or one of {STRATEGIES}")

    # the env var (not a parameter) so pool workers inherit the budget
    os.environ["REPRO_MAX_EVENTS"] = str(max_events)

    if replay_path:
        try:
            witness = load_witness(replay_path)
        except (OSError, ValueError) as exc:
            _die(f"cannot load witness {replay_path!r}: {exc}")
        if not isinstance(witness, dict) or "verdict" not in witness:
            _die(f"{replay_path!r} is not a witness file (no verdict)")
        expected = witness.get("signature") or signature(witness["verdict"])
        verdicts = [replay_witness(witness) for _ in range(2)]
        for i, verdict in enumerate(verdicts, start=1):
            print(f"replay {i}: outcome {verdict['outcome']!r}, "
                  f"failures {verdict['failures']}")
        if any(signature(v) != expected for v in verdicts):
            _die(
                f"witness did not replay: expected signature {expected}, got "
                f"{[signature(v) for v in verdicts]}"
            )
        print(f"witness replays: signature {expected} reproduced twice")
        return

    _check_attack(attack)
    _check_defense(defense)

    if vs:
        from .explore.campaign import run_diff_campaign

        _check_defense(vs)
        report = run_diff_campaign(
            attack=attack,
            defense=defense,
            vs=vs,
            seed=seed,
            budget=budget,
            strategy=strategy,
            parallel=parallel,
            cache=cache,
            max_witnesses=max_witnesses,
        )
        print(
            f"{report['trials']} differential trials of {attack}: "
            f"{defense} vs {vs} (seed {seed}, strategy {strategy}): "
            f"{report['divergent']} divergent schedules"
        )
        if report["failed_shards"]:
            print(
                f"  attempted {report['attempted_trials']} trials; "
                f"{report['failed_shards']} shards failed",
                file=sys.stderr,
            )
        for sig, n in sorted(report["signatures"].items()):
            print(f"  divergence {n:4d}x  [{sig}]")
        print(
            f"  shards: {report['computed_shards']} computed, "
            f"{report['cached_shards']} cached"
        )
        for line in report["errors"]:
            print(f"shard error: {line}", file=sys.stderr)
        if not report["witnesses"]:
            print("no divergent schedules found")
            return
        os.makedirs(out_dir, exist_ok=True)
        for witness in report["witnesses"][:max_witnesses]:
            path = os.path.join(
                out_dir, f"diff-{attack}-{defense}-vs-{vs}-{witness['trial']}.json"
            )
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(witness, handle, indent=2, sort_keys=True)
                handle.write("\n")
            inner = witness["report"]
            print(
                f"wrote {path}  "
                f"[{'+'.join(inner['a']['failures']) or 'held'} / "
                f"{'+'.join(inner['b']['failures']) or 'held'}]"
            )
        return

    report = run_campaign(
        attack=attack,
        defense=defense,
        seed=seed,
        budget=budget,
        strategy=strategy,
        parallel=parallel,
        cache=cache,
        check_determinism=check_determinism,
        max_witnesses=max_witnesses,
    )

    witnesses_found = len(report["witnesses"]) + report["witness_overflow"]
    print(
        f"{report['trials']} trials of {attack} vs {defense} (seed {seed}, "
        f"strategy {strategy}): {witnesses_found} witnesses, "
        f"{report['order_violations']} kernel order violations"
    )
    if report["failed_shards"]:
        print(
            f"  attempted {report['attempted_trials']} trials; "
            f"{report['failed_shards']} shards failed "
            f"({report['attempted_trials'] - report['trials']} trials lost)",
            file=sys.stderr,
        )
    if report["witness_overflow"]:
        print(f"  witness list capped: {report['witness_overflow']} more not kept")
    for outcome, n in sorted(report["outcomes"].items()):
        print(f"  outcome {n:4d}x  {outcome}")
    for sig, n in sorted(report["signatures"].items()):
        print(f"  witness {n:4d}x  [{sig}]")
    print(
        f"  shards: {report['computed_shards']} computed, "
        f"{report['cached_shards']} cached"
    )
    for line in report["errors"]:
        print(f"shard error: {line}", file=sys.stderr)

    if not report["witnesses"]:
        print("no witnesses found (nothing to minimize)")
        return

    os.makedirs(out_dir, exist_ok=True)
    written = []
    for witness in report["witnesses"][:max_witnesses]:
        if no_minimize:
            final = dict(witness, signature=signature(witness["verdict"]))
        else:
            final = minimize_witness(witness)
        path = os.path.join(out_dir, f"witness-{attack}-{witness['trial']}.json")
        save_witness(final, path)
        written.append((path, final))
    for path, final in written:
        stats = final.get("minimized")
        detail = (
            f"minimized {stats['atoms_before']}->{stats['atoms_after']} atoms "
            f"in {stats['tests_run']} tests"
            if stats
            else "unminimized"
        )
        print(f"wrote {path}  [{'+'.join(final['signature'])}]  ({detail})")
    first = written[0][0]
    print(f"replay with: python -m repro fuzz --replay {first}")


POPULATION_USAGE = (
    "usage: python -m repro population [--size N] [--seed N] [--mode model|sim] "
    "[--visits N] [--sessions N] [--window N] [--parallel N] [--json] [--out FILE]"
)


def _cmd_population(args) -> None:
    """Streamed population sweep: per-config/archetype load-time quantiles."""
    from .workloads.population import population_sweep

    args = list(args)
    parallel, cache = _engine_flags(args)
    size_arg = _flag_value(args, "--size", "2000")
    seed_arg = _flag_value(args, "--seed", "0")
    mode = _flag_value(args, "--mode", "model")
    visits_arg = _flag_value(args, "--visits", "1")
    sessions_arg = _flag_value(args, "--sessions", "")
    window_arg = _flag_value(args, "--window", "")
    out = _flag_value(args, "--out", "")
    as_json = "--json" in args
    if as_json:
        args.remove("--json")
    if args:
        print(POPULATION_USAGE)
        raise SystemExit(2)
    try:
        size = int(size_arg)
        seed = int(seed_arg)
        visits = int(visits_arg)
        sessions = int(sessions_arg) if sessions_arg else None
        window = int(window_arg) if window_arg else None
    except ValueError:
        _die("--size/--seed/--visits/--sessions/--window take integers")
    if mode not in ("model", "sim"):
        _die(f"--mode takes 'model' or 'sim', got {mode!r}")

    report = population_sweep(
        size, seed=seed, mode=mode, visits=visits, sessions=sessions,
        parallel=parallel, cache=cache, window=window,
    )
    payload = json.dumps(report, indent=2, sort_keys=True)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {out}")
    if as_json:
        print(payload)
    else:
        rows = [
            [name, stats["count"], stats["mean_ms"], stats["p50"], stats["p95"], stats["p99"]]
            for name, stats in report["configs"].items()
        ]
        print(render_table(
            ["config", "pages", "mean", "p50", "p95", "p99"], rows,
            title=f"Population sweep: {report['pages']} pages, mode {mode} (ms)",
        ))
        rows = [
            [name, stats["count"], stats["mean_ms"], stats["p50"]]
            for name, stats in report["archetypes"].items()
        ]
        print(render_table(["archetype", "pages", "mean", "p50"], rows))
    for line in report["errors"]:
        print(f"cell error: {line}", file=sys.stderr)
    if report["error_overflow"]:
        print(f"... and {report['error_overflow']} more errors", file=sys.stderr)


SERVE_USAGE = (
    "usage: python -m repro serve --socket PATH "
    "[--submit JSON|@FILE|-] [--out FILE] [--ping] [--status] "
    "[--cancel JOB_ID] [--shutdown]"
)


def _cmd_serve(args) -> None:
    """Experiment service over a unix socket — server and client modes."""
    import signal

    from . import serve as serve_mod

    args = list(args)
    socket_path = _flag_value(args, "--socket", "repro-serve.sock")
    submit = _flag_value(args, "--submit", "")
    out = _flag_value(args, "--out", "")
    cancel_id = _flag_value(args, "--cancel", "")
    ping = "--ping" in args
    if ping:
        args.remove("--ping")
    status = "--status" in args
    if status:
        args.remove("--status")
    shutdown = "--shutdown" in args
    if shutdown:
        args.remove("--shutdown")
    if args:
        print(SERVE_USAGE)
        raise SystemExit(2)

    # client modes: one control op, or submit-and-stream
    if ping or status or shutdown or cancel_id:
        op = {"op": "ping"} if ping else \
            {"op": "status"} if status else \
            {"op": "shutdown"} if shutdown else \
            {"op": "cancel", "job_id": cancel_id}
        try:
            print(json.dumps(serve_mod.request(socket_path, op), sort_keys=True))
        except (OSError, ConnectionError) as exc:
            _die(f"cannot reach server at {socket_path!r}: {exc}")
        return
    if submit:
        if submit == "-":
            submit = sys.stdin.read()
        elif submit.startswith("@"):
            with open(submit[1:], "r", encoding="utf-8") as handle:
                submit = handle.read()
        try:
            job = json.loads(submit)
        except ValueError as exc:
            _die(f"--submit takes a JSON job spec: {exc}")
        sink = open(out, "w", encoding="utf-8") if out else None
        final = None
        try:
            for frame in serve_mod.submit_and_stream(socket_path, job):
                line = json.dumps(frame, sort_keys=True)
                print(line)
                if sink is not None:
                    sink.write(line + "\n")
                final = frame
        except (OSError, ConnectionError) as exc:
            _die(f"cannot reach server at {socket_path!r}: {exc}")
        finally:
            if sink is not None:
                sink.close()
                print(f"wrote {out}", file=sys.stderr)
        if final is None or final.get("type") != "done":
            raise SystemExit(1)
        return

    # server mode: run in the foreground until told to stop
    server = serve_mod.ExperimentServer(socket_path)
    server.start()
    print(
        f"serving on {socket_path}  "
        f"(ctrl-c or: python -m repro serve --socket {socket_path} --shutdown)",
        file=sys.stderr,
    )
    signal.signal(signal.SIGTERM, lambda _sig, _frm: server.shutdown())
    try:
        server.wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()


COMMANDS = {
    "matrix": _cmd_matrix,
    "table2": _cmd_table2,
    "figure2": _cmd_figure2,
    "bench": _cmd_bench,
    "dromaeo": _cmd_dromaeo,
    "compat": _cmd_compat,
    "attacks": _cmd_attacks,
    "defenses": _cmd_defenses,
    "trace": _cmd_trace,
    "analyze": _cmd_analyze,
    "fuzz": _cmd_fuzz,
    "cube": _cmd_cube,
    "population": _cmd_population,
    "serve": _cmd_serve,
}


def _run_profiled(command: str, fn, rest) -> None:
    """Run one subcommand under cProfile: pstats dump + top-20 table."""
    import cProfile
    import pstats

    dump = f"PROFILE_{command}.pstats"
    profiler = cProfile.Profile()
    try:
        profiler.runcall(fn, rest)
    finally:
        profiler.dump_stats(dump)
        print(f"\nwrote {dump} (inspect with: python -m pstats {dump})")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(20)


#: Commands the telemetry flags (--live/--telemetry-out/--runlog) apply to.
TELEMETRY_COMMANDS = ("matrix", "table2", "figure2", "bench", "fuzz", "cube", "population")


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help") or args[0] not in COMMANDS:
        print(__doc__)
        return 0 if args and args[0] in ("-h", "--help") else 1
    command, rest = args[0], args[1:]
    profile = "--profile" in rest
    if profile:
        rest.remove("--profile")
    live = "--live" in rest
    if live:
        rest.remove("--live")
    telemetry_out = _flag_value(rest, "--telemetry-out", "")
    runlog = _flag_value(rest, "--runlog", "")
    telemetry_on = live or bool(telemetry_out) or bool(runlog)
    if telemetry_on and command not in TELEMETRY_COMMANDS:
        _die(
            "--live/--telemetry-out/--runlog apply to the experiment commands "
            f"({', '.join(TELEMETRY_COMMANDS)}), not {command!r}"
        )
    run = COMMANDS[command]

    def execute() -> None:
        if command != "trace" and "--metrics" in rest:
            rest.remove("--metrics")
            tracer = Tracer()
            if profile:
                with capture(tracer):
                    _run_profiled(command, run, rest)
            else:
                with capture(tracer):
                    run(rest)
            print()
            print(tracer.metrics.format())
        elif profile:
            _run_profiled(command, run, rest)
        else:
            run(rest)

    if not telemetry_on:
        execute()
        return 0

    from .telemetry import render_summary, telemetry_session, write_telemetry

    runlog_path = runlog or f"RUN_{command}.jsonl"
    with telemetry_session(command, live=live, runlog=runlog_path) as telem:
        execute()
    report = telem.report()
    print(render_summary(report), file=sys.stderr)
    print(f"wrote {runlog_path}", file=sys.stderr)
    if telemetry_out:
        json_path, prom_path = write_telemetry(report, telemetry_out)
        print(f"wrote {json_path} and {prom_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
