"""Per-run fuzz oracles: what counts as a finding.

One fuzz trial = one scenario run under a (perturbation spec, fault
plan).  :func:`evaluate_run` executes the trial traced and derives a
JSON verdict from four oracle batteries:

* **races** — :func:`repro.analysis.races.analyze_races` over every run
  in the capture; any unordered conflicting access pair is a finding,
  with ``use-after-free`` pairs (the CVE-2018-5092 shape) called out;
* **outcome** — the scenario's own summary: ``crash: ...`` /
  escaped-error outcomes tag ``crash``, ``leak obtained`` tags ``leak``;
* **kernel invariant** — under an order-enforcing policy the dispatcher
  must dispatch events in monotone predicted-time order; the dispatcher
  emits a ``kernel.order-violation`` trace instant whenever that fails
  (see :mod:`repro.kernel.dispatcher`), and any such instant is a kernel
  bug by definition;
* **shared memory** — the shared heap emits a ``sharedmem.deadlock``
  instant when its wait-for graph closes a cycle and a
  ``sharedmem.leak`` instant when a cycle-blind collector strands
  unreachable cells (see :mod:`repro.runtime.sharedmem.heap`); these
  become ``deadlock`` / ``shared-leak`` failures.  Both are *liveness*
  findings about the program, not defense escapes, so
  :func:`security_failures` excludes them from differential comparison;
* **determinism** — the trial is run a *second* time with byte-identical
  inputs; any schedule or outcome divergence means the implementation
  leaked nondeterminism (global RNG state, iteration-order dependence) —
  the property every replayable witness rests on.  Enabled by default
  for the defenses that promise deterministic schedules
  (:data:`~repro.harness.audit.DETERMINISTIC_DEFENSES`).

Deliberately **not** findings: ``DeadlockError``/``SimulationError``
outcomes.  A plan that blackholes the response a scenario awaits hangs
it by construction — recording the hang is useful, alarming on it is
noise.

The verdict is a pure function of ``(attack, defense, seed,
perturb_spec, fault_spec)`` — the contract witness replay depends on.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Dict, List, Optional, Tuple

from ..analysis.determinism import Schedule, extract_schedule, schedule_divergence
from ..analysis.hbgraph import run_pids
from ..analysis.races import analyze_races
from ..analysis.scenario import run_traced_scenario
from ..harness.audit import DETERMINISTIC_DEFENSES
from ..runtime.simulator import perturbation
from ..trace import Tracer, current_tracer
from .faults import FaultPlan
from .perturb import make_perturber

#: Escaped-error outcome prefixes that count as crashes.
CRASH_MARKERS = (
    "crash:",
    "UseAfterFreeError:",
    "DoubleFreeError:",
    "NullDerefError:",
    "BrowserCrash:",
)


def traced_run(
    attack: str,
    defense: str,
    seed: int,
    perturb_spec: Optional[dict] = None,
    fault_spec: Optional[dict] = None,
):
    """One scenario run under perturbation + faults, traced.

    Returns ``(tracer, outcome)`` exactly like
    :func:`~repro.analysis.scenario.run_traced_scenario`.

    When an enabled tracer capture is ambient (an engine ``--metrics``
    or telemetry run), the trial's private metrics snapshot — including
    quantile sketches when the ambient registry records them — is folded
    back into it, so fuzz campaigns contribute their event-loop and
    kernel metrics to the merged run telemetry.  The fold happens here,
    on every trial, rather than inside :func:`run_traced_scenario`:
    ``interesting_labels`` memoises that function's results, and a fold
    behind an ``lru_cache`` would fire on misses only, breaking
    serial-vs-parallel metric determinism.
    """
    perturber = make_perturber(perturb_spec)
    plan = FaultPlan.from_dict(fault_spec)
    ambient = current_tracer()
    tracer = Tracer(enabled=True)
    if ambient.enabled:
        tracer.metrics.sketch_observations = ambient.metrics.sketch_observations
    with ExitStack() as stack:
        stack.enter_context(plan.apply())
        if perturber is not None:
            stack.enter_context(perturbation(perturber))
        result = run_traced_scenario(attack, defense, seed=seed, tracer=tracer)
    if ambient.enabled:
        ambient.metrics.merge_snapshot(tracer.metrics.snapshot())
    return result


def kernel_order_violations(events: List[dict]) -> int:
    """How many dispatches broke the predicted-time order invariant."""
    return sum(1 for event in events if event.get("name") == "kernel.order-violation")


def sharedmem_deadlocks(events: List[dict]) -> int:
    """How many wait-for cycles the shared heap detected."""
    return sum(1 for event in events if event.get("name") == "sharedmem.deadlock")


def sharedmem_leaks(events: List[dict]) -> int:
    """How many GC runs stranded unreachable-but-referenced cells."""
    return sum(1 for event in events if event.get("name") == "sharedmem.leak")


def merged_schedule(events: List[dict]) -> Schedule:
    """All runs' dispatch schedules folded into one row-keyed schedule."""
    merged: Dict[str, List[Tuple[str, int]]] = {}
    for pid in run_pids(events):
        for row, seq in extract_schedule(events, pid).items():
            merged.setdefault(row, []).extend(seq)
    return merged


def evaluate_run(
    attack: str,
    defense: str,
    seed: int,
    perturb_spec: Optional[dict] = None,
    fault_spec: Optional[dict] = None,
    check_determinism: Optional[bool] = None,
) -> dict:
    """Run one fuzz trial and return its oracle verdict (JSON-shaped).

    ``check_determinism=None`` auto-enables the replay-divergence oracle
    for determinism-promising defenses.
    """
    if check_determinism is None:
        check_determinism = defense in DETERMINISTIC_DEFENSES

    tracer, outcome = traced_run(attack, defense, seed, perturb_spec, fault_spec)

    races = 0
    uaf_races = 0
    patterns = set()
    for pid in run_pids(tracer.events):
        report = analyze_races(tracer.events, pid=pid)
        races += report["race_count"]
        for race in report["races"]:
            patterns.add(race["pattern"])
            if race["pattern"] == "use-after-free":
                uaf_races += 1

    violations = kernel_order_violations(tracer.events)
    deadlocks = sharedmem_deadlocks(tracer.events)
    shared_leaks = sharedmem_leaks(tracer.events)

    failures = [f"race:{pattern}" for pattern in patterns]
    if outcome.startswith(CRASH_MARKERS):
        failures.append("crash")
    if "leak obtained" in outcome:
        failures.append("leak")
    if violations:
        failures.append("kernel:order-violation")
    if deadlocks:
        failures.append("deadlock")
    if shared_leaks:
        failures.append("shared-leak")

    divergence = None
    if check_determinism:
        tracer2, outcome2 = traced_run(attack, defense, seed, perturb_spec, fault_spec)
        divergence, _first = schedule_divergence(
            merged_schedule(tracer.events), merged_schedule(tracer2.events)
        )
        if divergence or outcome2 != outcome:
            failures.append("nondeterminism")

    failures = sorted(set(failures))
    return {
        "attack": attack,
        "defense": defense,
        "seed": seed,
        "outcome": outcome,
        "races": races,
        "uaf_races": uaf_races,
        "race_patterns": sorted(patterns),
        "order_violations": violations,
        "deadlocks": deadlocks,
        "shared_leaks": shared_leaks,
        "divergence": divergence,
        "failures": failures,
        "interesting": bool(failures),
    }


def signature(verdict: dict) -> List[str]:
    """The failure signature minimization must preserve."""
    return list(verdict["failures"])


def security_failures(verdict: dict) -> List[str]:
    """The defense-outcome part of a verdict's failure signature.

    Crash, leak and race findings say whether the *attack* got through;
    kernel-invariant and nondeterminism findings say whether the
    *implementation* misbehaved.  Differential fuzzing compares only the
    former — a kernel-only invariant can never "diverge" on a defense
    that has no kernel.
    """
    return sorted(
        failure
        for failure in verdict["failures"]
        if failure in ("crash", "leak") or failure.startswith("race:")
    )


def evaluate_divergence(
    attack: str,
    defense_a: str,
    defense_b: str,
    seed: int,
    perturb_spec: Optional[dict] = None,
    fault_spec: Optional[dict] = None,
) -> dict:
    """Run one identical trial under two defenses and compare what escaped.

    The divergence-hunting oracle: same attack, same seed, same
    perturbation spec, same fault plan — the only variable is the
    defense, so a differing :func:`security_failures` signature means one
    defense held a schedule the other leaked on.  Pure function of its
    arguments, like :func:`evaluate_run`.
    """
    verdict_a = evaluate_run(
        attack, defense_a, seed, perturb_spec, fault_spec, check_determinism=False
    )
    verdict_b = evaluate_run(
        attack, defense_b, seed, perturb_spec, fault_spec, check_determinism=False
    )
    escaped_a = security_failures(verdict_a)
    escaped_b = security_failures(verdict_b)
    return {
        "attack": attack,
        "seed": seed,
        "a": {
            "defense": defense_a,
            "failures": escaped_a,
            "outcome": verdict_a["outcome"],
        },
        "b": {
            "defense": defense_b,
            "failures": escaped_b,
            "outcome": verdict_b["outcome"],
        },
        "divergent": escaped_a != escaped_b,
    }


__all__ = [
    "CRASH_MARKERS",
    "evaluate_divergence",
    "evaluate_run",
    "kernel_order_violations",
    "merged_schedule",
    "security_failures",
    "sharedmem_deadlocks",
    "sharedmem_leaks",
    "signature",
    "traced_run",
]
