"""Seeded schedule perturbation strategies.

A perturber is installed ambiently (``with perturbation(p): ...`` from
:mod:`repro.runtime.simulator`) and sees every scheduled callback and
every posted event-loop task.  It may only *delay* events — moving one
earlier could deliver a message before it was sent, exploring schedules
the real platform can never produce.

Determinism contract
--------------------

A perturber's decisions are a pure function of ``(spec, label, n)``
where ``n`` counts prior perturbations of that label (or label class) —
a *per-label stream*, the same construction as
:class:`~repro.runtime.rng.RngService`'s named streams.  A global draw
sequence would entangle unrelated subsystems: one extra network task
would shift every later decision, and the determinism oracle (which
replays a run twice) would see phantom divergence.  Per-label streams
make replays bit-for-bit stable and keep paired runs paired.

Two label families are exempt from perturbation:

* ``*:wake`` — event-loop wakeups are plumbing, not events; the loop's
  tasks are perturbed individually at post time instead (double-jitter
  would skew queue-delay accounting);
* ``fault:*`` — fault-plan trigger points must fire at exactly their
  declared virtual times or witnesses would not replay.

Strategies
----------

* ``jitter`` — with probability ``rate``, delay an event by a uniform
  amount in ``[0, magnitude_ns]``;
* ``priority`` — PCT-style priority schedules, approximated: each label
  *class* (label with digits stripped) is assigned a priority level per
  phase, and lower-priority classes are uniformly held back by
  ``level * step_ns``; priorities reshuffle every ``change_every``
  perturbations of the class (the PCT change points);
* ``targeted`` — explicit reordering rules ``{"match", "delay_ns"}``
  applied to labels containing ``match`` — the campaign derives rule
  candidates from postMessage/timer/worker-lifecycle/network edges of a
  baseline trace (see :func:`repro.explore.campaign.interesting_labels`).

Specs are plain JSON dicts (``{"strategy": ..., ...}``) so they ride in
witness files and cache keys; :func:`make_perturber` rebuilds the
strategy from its spec.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ReproError
from ..runtime.rng import hash_seed
from ..runtime.simtime import ms, us

#: Event-loop wakeup labels (exempt — plumbing, not events).
WAKE_SUFFIX = ":wake"

#: Fault-plan trigger labels (exempt — injection times must stay exact).
FAULT_PREFIX = "fault:"


def exempt_label(label: str) -> bool:
    """Labels the perturbation layer must leave untouched."""
    return not label or label.endswith(WAKE_SUFFIX) or label.startswith(FAULT_PREFIX)


def label_class(label: str) -> str:
    """The label with digits stripped: ``worker-3:boot`` → ``worker-:boot``.

    Collapses per-instance names so a priority schedule treats every
    worker's boot task as one class, as PCT treats threads.
    """
    return "".join(ch for ch in label if not ch.isdigit())


class Perturber:
    """Base strategy: never delays anything (the identity schedule)."""

    strategy = "none"

    def __init__(self) -> None:
        self.dispatches = 0
        self.delays_injected = 0
        self.delay_total_ns = 0

    # -- hook API (called by Simulator / EventLoop) ---------------------
    def perturb(self, sim, at: int, label: str) -> int:
        """The perturbed schedule time for an event nominally at ``at``."""
        if exempt_label(label):
            return at
        delay = self.delay_for(label)
        if delay > 0:
            self.delays_injected += 1
            self.delay_total_ns += delay
        return at + delay

    def on_dispatch(self, label: str) -> None:
        """Dispatch notification (statistics only — see module docstring)."""
        self.dispatches += 1

    # -- strategy API ---------------------------------------------------
    def delay_for(self, label: str) -> int:
        """Extra delay (ns) for the next occurrence of ``label``."""
        return 0

    def spec(self) -> dict:
        """The JSON spec that rebuilds this strategy (witness format)."""
        return {"strategy": self.strategy}

    def stats(self) -> dict:
        """What the strategy actually did during a run."""
        return {
            "dispatches": self.dispatches,
            "delays_injected": self.delays_injected,
            "delay_total_ns": self.delay_total_ns,
        }


class JitterPerturber(Perturber):
    """Random per-event dispatch-delay jitter."""

    strategy = "jitter"

    def __init__(self, seed: int = 0, rate: float = 0.3, magnitude_ns: int = ms(1)):
        super().__init__()
        self.seed = int(seed)
        self.rate = float(rate)
        self.magnitude_ns = int(magnitude_ns)
        self._counts: Dict[str, int] = {}

    def delay_for(self, label: str) -> int:
        n = self._counts.get(label, 0)
        self._counts[label] = n + 1
        h = hash_seed(self.seed, f"{label}#{n}")
        if (h % 10_000) / 10_000.0 >= self.rate:
            return 0
        return (h // 10_000) % (self.magnitude_ns + 1)

    def spec(self) -> dict:
        return {
            "strategy": self.strategy,
            "seed": self.seed,
            "rate": self.rate,
            "magnitude_ns": self.magnitude_ns,
        }


class PriorityPerturber(Perturber):
    """PCT-style priority schedules over label classes."""

    strategy = "priority"

    def __init__(
        self,
        seed: int = 0,
        levels: int = 3,
        step_ns: int = ms(1),
        change_every: int = 16,
    ):
        super().__init__()
        self.seed = int(seed)
        self.levels = max(int(levels), 1)
        self.step_ns = int(step_ns)
        self.change_every = max(int(change_every), 1)
        self._counts: Dict[str, int] = {}

    def delay_for(self, label: str) -> int:
        cls = label_class(label)
        n = self._counts.get(cls, 0)
        self._counts[cls] = n + 1
        phase = n // self.change_every
        level = hash_seed(self.seed, f"prio:{phase}:{cls}") % self.levels
        return level * self.step_ns

    def spec(self) -> dict:
        return {
            "strategy": self.strategy,
            "seed": self.seed,
            "levels": self.levels,
            "step_ns": self.step_ns,
            "change_every": self.change_every,
        }


class TargetedPerturber(Perturber):
    """Explicit reordering rules around chosen schedule edges.

    Each rule is ``{"match": substring, "delay_ns": int}`` and delays
    every event whose label contains ``match``.  Rules are the atoms the
    witness minimizer removes one by one.
    """

    strategy = "targeted"

    def __init__(self, rules: Optional[List[dict]] = None):
        super().__init__()
        self.rules = [
            {"match": str(rule["match"]), "delay_ns": int(rule["delay_ns"])}
            for rule in (rules or [])
        ]

    def delay_for(self, label: str) -> int:
        delay = 0
        for rule in self.rules:
            if rule["match"] in label:
                delay += rule["delay_ns"]
        return delay

    def spec(self) -> dict:
        return {"strategy": self.strategy, "rules": [dict(r) for r in self.rules]}


#: Spec-strategy → constructor-from-spec.
_STRATEGIES = {
    "jitter": lambda spec: JitterPerturber(
        seed=spec.get("seed", 0),
        rate=spec.get("rate", 0.3),
        magnitude_ns=spec.get("magnitude_ns", ms(1)),
    ),
    "priority": lambda spec: PriorityPerturber(
        seed=spec.get("seed", 0),
        levels=spec.get("levels", 3),
        step_ns=spec.get("step_ns", ms(1)),
        change_every=spec.get("change_every", 16),
    ),
    "targeted": lambda spec: TargetedPerturber(rules=spec.get("rules", [])),
}

#: Delay magnitudes trials draw from (spread over the scales that matter:
#: sub-grid, one kernel grid step, a network RTT, a human-visible stall).
DELAY_CHOICES_NS = (us(50), us(500), ms(1), ms(5), ms(20))


def make_perturber(spec: Optional[dict]) -> Optional[Perturber]:
    """Build a strategy from its JSON spec; ``None``/``"none"`` → no-op."""
    if not spec:
        return None
    strategy = spec.get("strategy", "none")
    if strategy == "none":
        return None
    builder = _STRATEGIES.get(strategy)
    if builder is None:
        raise ReproError(
            f"unknown perturbation strategy {strategy!r}; "
            f"expected one of {sorted(_STRATEGIES)} or 'none'"
        )
    return builder(spec)


__all__ = [
    "DELAY_CHOICES_NS",
    "JitterPerturber",
    "Perturber",
    "PriorityPerturber",
    "TargetedPerturber",
    "exempt_label",
    "label_class",
    "make_perturber",
]
