"""Declarative fault plans: what breaks, and at which virtual time.

A :class:`FaultPlan` is a JSON-shaped description of environment faults
to inject into a run:

* ``network`` — :class:`~repro.runtime.network.NetworkFault` windows
  (latency spikes, blackholed responses) keyed by request-issue time and
  URL-path substring;
* ``aborts`` — forced aborts of in-flight requests at a virtual time
  (``SimNetwork.abort_inflight`` — the server resetting connections);
* ``crashes`` — worker crashes at a virtual time
  (:meth:`~repro.runtime.worker.WorkerAgent.crash`).

Plans reach the runtime through the ambient browser interceptor
(:func:`~repro.runtime.browser.browser_intercept`): attack code builds
its browsers internally, and the interceptor arms every one of them at
construction time — after the defense installed, so the plan sees the
final plumbing.  Trigger callbacks are scheduled under ``fault:*``
labels, which the perturbation layer leaves untouched (injection times
must be exact or witnesses would not replay bit-for-bit).

The plan's entries are the atoms witness minimization removes: see
:meth:`FaultPlan.atoms` / :meth:`FaultPlan.subset`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional, Tuple

from ..runtime.browser import browser_intercept
from ..runtime.network import NetworkFault


def _network_entry(raw: dict) -> dict:
    return {
        "kind": str(raw.get("kind", "latency")),
        "from_ns": int(raw.get("from_ns", 0)),
        "until_ns": int(raw["until_ns"]),
        "extra_ns": int(raw.get("extra_ns", 0)),
        "path_contains": str(raw.get("path_contains", "")),
    }


def _abort_entry(raw: dict) -> dict:
    return {
        "at_ns": int(raw["at_ns"]),
        "path_contains": str(raw.get("path_contains", "")),
    }


def _crash_entry(raw: dict) -> dict:
    return {
        "at_ns": int(raw["at_ns"]),
        "worker": int(raw.get("worker", 0)),
        "detail": str(raw.get("detail", "injected worker crash")),
    }


class FaultPlan:
    """A set of environment faults, armed on every browser of a run."""

    def __init__(
        self,
        network: Optional[List[dict]] = None,
        aborts: Optional[List[dict]] = None,
        crashes: Optional[List[dict]] = None,
    ):
        self.network = [_network_entry(f) for f in (network or [])]
        self.aborts = [_abort_entry(a) for a in (aborts or [])]
        self.crashes = [_crash_entry(c) for c in (crashes or [])]

    # -- (de)serialisation ----------------------------------------------
    @classmethod
    def from_dict(cls, data: Optional[dict]) -> "FaultPlan":
        data = data or {}
        return cls(
            network=data.get("network"),
            aborts=data.get("aborts"),
            crashes=data.get("crashes"),
        )

    def to_dict(self) -> dict:
        return {
            "network": [dict(f) for f in self.network],
            "aborts": [dict(a) for a in self.aborts],
            "crashes": [dict(c) for c in self.crashes],
        }

    @property
    def empty(self) -> bool:
        return not (self.network or self.aborts or self.crashes)

    # -- minimization atoms ---------------------------------------------
    def atoms(self) -> List[Tuple[str, int]]:
        """Every removable entry as ``(section, index)``."""
        return (
            [("network", i) for i in range(len(self.network))]
            + [("aborts", i) for i in range(len(self.aborts))]
            + [("crashes", i) for i in range(len(self.crashes))]
        )

    def subset(self, atoms: List[Tuple[str, int]]) -> "FaultPlan":
        """The plan restricted to the given atoms (order preserved)."""
        keep = set(atoms)
        return FaultPlan(
            network=[f for i, f in enumerate(self.network) if ("network", i) in keep],
            aborts=[a for i, a in enumerate(self.aborts) if ("aborts", i) in keep],
            crashes=[c for i, c in enumerate(self.crashes) if ("crashes", i) in keep],
        )

    # -- arming ----------------------------------------------------------
    def arm(self, browser) -> None:
        """Wire this plan into one browser (the interceptor hook)."""
        for entry in self.network:
            browser.network.faults.append(NetworkFault(**entry))
        for entry in self.aborts:
            def fire_abort(entry=entry, browser=browser) -> None:
                browser.network.abort_inflight(entry["path_contains"])

            browser.sim.schedule(entry["at_ns"], fire_abort, label="fault:net-abort")
        for entry in self.crashes:
            def fire_crash(entry=entry, browser=browser) -> None:
                alive = [w for w in browser.workers if w.alive]
                if alive:
                    alive[entry["worker"] % len(alive)].crash(entry["detail"])

            browser.sim.schedule(entry["at_ns"], fire_crash, label="fault:worker-crash")

    @contextmanager
    def apply(self):
        """Arm this plan on every browser built inside the block."""
        if self.empty:
            yield self
            return
        with browser_intercept(self.arm):
            yield self


__all__ = ["FaultPlan"]
