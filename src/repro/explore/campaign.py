"""Budgeted fuzz campaigns over the parallel experiment engine.

A campaign is ``budget`` independent trials of one ``(attack, defense,
seed)`` scenario.  Trial ``i`` derives its own seed with
:func:`~repro.runtime.rng.hash_seed` and generates a (perturbation spec,
fault plan) pair from it, so the whole campaign is a pure function of
its parameters: shards are ordinary
:class:`~repro.harness.parallel.ExperimentEngine` cells (kind
``"fuzz"``), fan out across worker processes, and land in the
content-addressed result cache like any Table I cell — a warm rerun of
a campaign recomputes nothing.

The *event* budget rides separately: fuzz runs lower the simulator's
``max_events`` backstop through ``$REPRO_MAX_EVENTS`` (inherited by pool
workers), so a perturbed schedule that loops where the nominal one
terminates fails fast with its recent dispatch labels instead of
spinning for fifty million events.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.scenario import run_traced_scenario
from ..harness.parallel import Cell, ExperimentEngine
from ..runtime.rng import hash_seed
from ..runtime.simtime import ms
from ..telemetry.spans import span
from .oracles import evaluate_divergence, evaluate_run
from .perturb import DELAY_CHOICES_NS, exempt_label

#: Default fuzz scenario: the schedule-sensitive UAF the paper opens with.
DEFAULT_ATTACK = "cve-2018-5092"
DEFAULT_DEFENSE = "legacy-chrome"

#: Strategy names ``--strategy`` accepts ("mixed" cycles through these).
STRATEGIES = ("jitter", "priority", "targeted")

#: Trials per engine cell (shard): big enough to amortise process
#: dispatch, small enough that a campaign still shards across workers.
DEFAULT_SHARD = 10

#: Horizon (ns) fault times are drawn from — covers the active window of
#: every Table I scenario.
FAULT_HORIZON_NS = ms(500)

#: Task sources whose labels make interesting reordering targets.
TARGET_SOURCES = ("message", "timer", "worker", "network")


@lru_cache(maxsize=32)
def interesting_labels(attack: str, defense: str, seed: int) -> Tuple[str, ...]:
    """Reordering targets from a baseline (unperturbed) traced run.

    Collects the task labels of postMessage/timer/worker-lifecycle/
    network dispatches — the happens-before edge kinds the targeted
    strategy reorders around.  Memoised per process: every trial of a
    shard shares one baseline run.
    """
    tracer, _outcome = run_traced_scenario(attack, defense, seed=seed)
    labels = set()
    for event in tracer.events:
        if event.get("ph") != "X":
            continue
        source = event.get("args", {}).get("source")
        label = event.get("name", "")
        if source in TARGET_SOURCES and not exempt_label(label):
            labels.add(label)
    return tuple(sorted(labels))


def generate_trial(
    attack: str,
    defense: str,
    seed: int,
    index: int,
    strategy: str,
    labels: Tuple[str, ...],
) -> Tuple[dict, dict]:
    """The (perturbation spec, fault spec) pair for trial ``index``.

    Pure function of its arguments: the trial RNG is a private
    ``random.Random`` seeded from the campaign seed and trial index
    (never the global ``random`` state), so a shard recomputes to the
    same specs on every machine.
    """
    trial_seed = hash_seed(seed, f"fuzz:{attack}:{defense}:{index}")
    rng = random.Random(trial_seed)

    chosen = strategy
    if strategy == "mixed":
        chosen = STRATEGIES[index % len(STRATEGIES)]

    if chosen == "jitter":
        perturb_spec = {
            "strategy": "jitter",
            "seed": trial_seed,
            "rate": round(0.15 + rng.random() * 0.5, 3),
            "magnitude_ns": rng.choice(DELAY_CHOICES_NS),
        }
    elif chosen == "priority":
        perturb_spec = {
            "strategy": "priority",
            "seed": trial_seed,
            "levels": rng.choice((2, 3, 4)),
            "step_ns": rng.choice(DELAY_CHOICES_NS),
            "change_every": rng.choice((4, 16, 64)),
        }
    elif chosen == "targeted":
        pool = list(labels)
        rules = []
        if pool:
            for target in rng.sample(pool, k=min(len(pool), rng.randint(1, 4))):
                rules.append(
                    {"match": target, "delay_ns": rng.choice(DELAY_CHOICES_NS)}
                )
        perturb_spec = {"strategy": "targeted", "rules": rules}
    else:
        raise ValueError(
            f"unknown strategy {chosen!r}; expected 'mixed' or one of {STRATEGIES}"
        )

    fault_spec: dict = {"network": [], "aborts": [], "crashes": []}
    if rng.random() < 0.5:  # half the trials also shake the environment
        kind = rng.choice(("latency", "drop", "abort", "crash"))
        at = rng.randrange(FAULT_HORIZON_NS)
        if kind in ("latency", "drop"):
            fault_spec["network"].append(
                {
                    "kind": kind,
                    "from_ns": at,
                    "until_ns": at + rng.choice((ms(5), ms(50), ms(200))),
                    "extra_ns": rng.choice(DELAY_CHOICES_NS) if kind == "latency" else 0,
                    "path_contains": "",
                }
            )
        elif kind == "abort":
            fault_spec["aborts"].append({"at_ns": at, "path_contains": ""})
        else:
            fault_spec["crashes"].append(
                {"at_ns": at, "worker": rng.randrange(4), "detail": "injected worker crash"}
            )
    return perturb_spec, fault_spec


def run_fuzz_cell(
    attack: str,
    defense: str,
    seed: int,
    start: int,
    count: int,
    strategy: str = "mixed",
    check_determinism: Optional[bool] = None,
) -> dict:
    """One campaign shard: trials ``start .. start+count-1`` (JSON-pure)."""
    labels = interesting_labels(attack, defense, seed)
    witnesses: List[dict] = []
    outcomes: Dict[str, int] = {}
    signatures: Dict[str, int] = {}
    order_violations = 0
    for index in range(start, start + count):
        perturb_spec, fault_spec = generate_trial(
            attack, defense, seed, index, strategy, labels
        )
        with span("fuzz.trial", attack=attack, defense=defense, trial=index):
            verdict = evaluate_run(
                attack,
                defense,
                seed,
                perturb_spec=perturb_spec,
                fault_spec=fault_spec,
                check_determinism=check_determinism,
            )
        outcomes[verdict["outcome"]] = outcomes.get(verdict["outcome"], 0) + 1
        order_violations += verdict["order_violations"]
        if verdict["interesting"]:
            sig = "+".join(verdict["failures"])
            signatures[sig] = signatures.get(sig, 0) + 1
            witnesses.append(
                {
                    "attack": attack,
                    "defense": defense,
                    "seed": seed,
                    "trial": index,
                    "strategy": strategy,
                    "perturb": perturb_spec,
                    "faults": fault_spec,
                    "check_determinism": check_determinism,
                    "verdict": verdict,
                }
            )
    return {
        "trials": count,
        "witnesses": witnesses,
        "outcomes": outcomes,
        "signatures": signatures,
        "order_violations": order_violations,
    }


def run_diff_cell(
    attack: str,
    defense: str,
    vs: str,
    seed: int,
    start: int,
    count: int,
    strategy: str = "mixed",
) -> dict:
    """One differential shard: identical trials under two defenses.

    Trial specs are derived from a *combined* defense key so both
    defenses see byte-identical perturbations and fault plans; the
    reordering-target label pool is the union of both baselines so the
    targeted strategy can bite under either.
    """
    pair_key = f"{defense}~vs~{vs}"
    labels = tuple(
        sorted(
            set(interesting_labels(attack, defense, seed))
            | set(interesting_labels(attack, vs, seed))
        )
    )
    witnesses: List[dict] = []
    signatures: Dict[str, int] = {}
    divergent = 0
    for index in range(start, start + count):
        perturb_spec, fault_spec = generate_trial(
            attack, pair_key, seed, index, strategy, labels
        )
        with span("fuzz.diff_trial", attack=attack, defense=defense, vs=vs, trial=index):
            report = evaluate_divergence(
                attack, defense, vs, seed, perturb_spec=perturb_spec, fault_spec=fault_spec
            )
        if report["divergent"]:
            divergent += 1
            sig = (
                "+".join(report["a"]["failures"]) or "held"
            ) + " / " + ("+".join(report["b"]["failures"]) or "held")
            signatures[sig] = signatures.get(sig, 0) + 1
            witnesses.append(
                {
                    "attack": attack,
                    "defense": defense,
                    "vs": vs,
                    "seed": seed,
                    "trial": index,
                    "strategy": strategy,
                    "perturb": perturb_spec,
                    "faults": fault_spec,
                    "report": report,
                }
            )
    return {
        "trials": count,
        "divergent": divergent,
        "witnesses": witnesses,
        "signatures": signatures,
    }


class CampaignAggregate:
    """Bounded-memory campaign accounting shared by both campaign kinds.

    Folds shard payloads as they stream out of the engine.  ``trials``
    counts trials whose shard *succeeded* (the numbers the signature and
    outcome tallies describe); ``attempted_trials`` counts every trial
    the campaign dispatched, failed shards included — the denominator
    progress/ETA must use, and the discrepancy the report surfaces via
    ``failed_shards``.  The witness list is capped at ``max_witnesses``
    (``None`` = unlimited) with an explicit ``witness_overflow`` counter
    so a pathological campaign cannot grow the report without bound.
    """

    def __init__(self, max_witnesses: Optional[int] = None):
        self.max_witnesses = max_witnesses
        self.trials = 0
        self.attempted_trials = 0
        self.failed_shards = 0
        self.witnesses: List[dict] = []
        self.witness_overflow = 0
        self.signatures: Dict[str, int] = {}
        self.errors: List[str] = []

    def admit(self, result) -> Optional[dict]:
        """Fold one shard result; returns the payload when the shard ran."""
        count = int(result.cell.params.get("count", 0))
        self.attempted_trials += count
        if not result.ok:
            self.failed_shards += 1
            self.errors.append(f"{result.cell.label()}: {result.error}")
            return None
        payload = result.payload
        self.trials += payload["trials"]
        for witness in payload["witnesses"]:
            if self.max_witnesses is not None and len(self.witnesses) >= self.max_witnesses:
                self.witness_overflow += 1
            else:
                self.witnesses.append(witness)
        for sig, n in payload["signatures"].items():
            self.signatures[sig] = self.signatures.get(sig, 0) + n
        return payload

    def report(self) -> dict:
        return {
            "trials": self.trials,
            "attempted_trials": self.attempted_trials,
            "failed_shards": self.failed_shards,
            "witnesses": self.witnesses,
            "witness_overflow": self.witness_overflow,
            "signatures": self.signatures,
            "errors": self.errors,
        }


def _shard_cells(kind: str, budget: int, shard_size: int, params: dict) -> List[Cell]:
    """The shard cells of one campaign (``count`` carries the trial count)."""
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    shard_size = max(int(shard_size), 1)
    return [
        Cell(kind, dict(params, start=start, count=min(shard_size, budget - start)))
        for start in range(0, budget, shard_size)
    ]


def run_diff_campaign(
    attack: str = DEFAULT_ATTACK,
    defense: str = "jskernel",
    vs: str = "detbrowser",
    seed: int = 0,
    budget: int = 100,
    strategy: str = "mixed",
    parallel: Optional[int] = None,
    cache=None,
    shard_size: int = DEFAULT_SHARD,
    max_witnesses: Optional[int] = None,
    on_result: Optional[Callable[[int, dict], None]] = None,
) -> dict:
    """Hunt schedules where one defense holds and the other leaks.

    The differential campaign points the fuzzer at a defense *pair*
    (JSKernel vs the DetBrowser backend by default): every trial runs
    twice, once per defense, under identical perturbation + fault specs,
    and trials whose security-failure signatures differ become
    divergence witnesses.  Shards are engine cells (kind ``"fuzz-diff"``)
    streamed through :meth:`~repro.harness.parallel.ExperimentEngine.
    stream`, so ``parallel``/``cache`` behave like every other campaign
    and the resident state is one shard's payload plus the aggregate.
    ``on_result`` is called after every shard with ``(attempted_trials,
    partial report)`` — the serve mode's progress hook.
    """
    cells = _shard_cells(
        "fuzz-diff",
        budget,
        shard_size,
        {"attack": attack, "defense": defense, "vs": vs, "seed": seed,
         "strategy": strategy},
    )
    engine = ExperimentEngine(workers=parallel, cache=cache)
    aggregate = CampaignAggregate(max_witnesses)
    divergent = 0
    for result in engine.stream(cells):
        payload = aggregate.admit(result)
        if payload is not None:
            divergent += payload["divergent"]
        if on_result is not None:
            on_result(aggregate.attempted_trials, _partial(aggregate, engine))

    report = aggregate.report()
    report.update(
        {
            "attack": attack,
            "defense": defense,
            "vs": vs,
            "seed": seed,
            "budget": budget,
            "strategy": strategy,
            "divergent": divergent,
            "computed_shards": engine.computed,
            "cached_shards": engine.cache_hits,
        }
    )
    return report


def run_campaign(
    attack: str = DEFAULT_ATTACK,
    defense: str = DEFAULT_DEFENSE,
    seed: int = 0,
    budget: int = 200,
    strategy: str = "mixed",
    parallel: Optional[int] = None,
    cache=None,
    shard_size: int = DEFAULT_SHARD,
    check_determinism: Optional[bool] = None,
    max_witnesses: Optional[int] = None,
    on_result: Optional[Callable[[int, dict], None]] = None,
) -> dict:
    """Run a full campaign, sharded and streamed over the engine.

    ``budget`` is the trial count.  Returns an aggregate report with
    the witnesses found (un-minimized — see
    :func:`repro.explore.minimize.minimize_witness`), capped at
    ``max_witnesses`` when given.  ``trials`` counts trials of
    successful shards only; ``attempted_trials`` / ``failed_shards``
    surface the difference so progress reporting cannot overstate a
    campaign with poisoned shards.  ``on_result`` is called after every
    shard with ``(attempted_trials, partial report)``.
    """
    cells = _shard_cells(
        "fuzz",
        budget,
        shard_size,
        {"attack": attack, "defense": defense, "seed": seed,
         "strategy": strategy, "check_determinism": check_determinism},
    )
    engine = ExperimentEngine(workers=parallel, cache=cache)
    aggregate = CampaignAggregate(max_witnesses)
    outcomes: Dict[str, int] = {}
    order_violations = 0
    for result in engine.stream(cells):
        payload = aggregate.admit(result)
        if payload is not None:
            order_violations += payload["order_violations"]
            for outcome, n in payload["outcomes"].items():
                outcomes[outcome] = outcomes.get(outcome, 0) + n
        if on_result is not None:
            on_result(aggregate.attempted_trials, _partial(aggregate, engine))

    report = aggregate.report()
    report.update(
        {
            "attack": attack,
            "defense": defense,
            "seed": seed,
            "budget": budget,
            "strategy": strategy,
            "outcomes": outcomes,
            "order_violations": order_violations,
            "computed_shards": engine.computed,
            "cached_shards": engine.cache_hits,
        }
    )
    return report


def _partial(aggregate: CampaignAggregate, engine: ExperimentEngine) -> dict:
    """The in-flight progress view handed to ``on_result`` hooks."""
    return {
        "trials": aggregate.trials,
        "attempted_trials": aggregate.attempted_trials,
        "failed_shards": aggregate.failed_shards,
        "errors": aggregate.errors,
        "computed_shards": engine.computed,
        "cached_shards": engine.cache_hits,
    }


__all__ = [
    "CampaignAggregate",
    "DEFAULT_ATTACK",
    "DEFAULT_DEFENSE",
    "STRATEGIES",
    "generate_trial",
    "interesting_labels",
    "run_campaign",
    "run_diff_campaign",
    "run_diff_cell",
    "run_fuzz_cell",
]
