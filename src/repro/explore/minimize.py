"""Witness minimization (ddmin) and bit-for-bit replay.

A raw witness records everything a failing trial injected — a
perturbation spec plus a fault plan.  Most of it is usually irrelevant:
the trial's jitter touched hundreds of labels but the failure needed
one reordering, or needed nothing at all (the nominal schedule already
fails).  :func:`minimize_witness` delta-debugs the witness's *atoms* —
individual targeted-reorder rules, individual fault entries, the
monolithic jitter/priority spec — down to a subset that still produces
the **same failure signature**, re-running the oracle battery for every
candidate.  Because a verdict is a pure function of the specs
(:mod:`repro.explore.oracles`), every probe is decisive; no "flaky
reproduction" retries are needed.

The minimized witness is a self-contained JSON file::

    {"attack": ..., "defense": ..., "seed": ..., "trial": ...,
     "perturb": {...}, "faults": {...}, "signature": [...],
     "verdict": {...}, "minimized": {"tests_run": ..., ...}}

``python -m repro fuzz --replay witness.json`` re-evaluates it (twice)
and checks the signature still matches — the replayability contract.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional, Tuple

from .faults import FaultPlan
from .oracles import evaluate_run, signature

Atom = Tuple[str, int]


def ddmin(atoms: List[Atom], test: Callable[[List[Atom]], bool]) -> Tuple[List[Atom], int]:
    """Zeller's ddmin: a 1-minimal subset of ``atoms`` still failing ``test``.

    ``test(subset)`` must return True when the subset reproduces the
    failure; the full set is assumed to.  Returns ``(subset,
    tests_run)``.
    """
    tests_run = 0

    def check(subset: List[Atom]) -> bool:
        nonlocal tests_run
        tests_run += 1
        return test(subset)

    if check([]):
        return [], tests_run  # the nominal schedule already fails
    current = list(atoms)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        chunks = [current[i : i + chunk] for i in range(0, len(current), chunk)]
        reduced = False
        for index in range(len(chunks)):
            complement = [a for j, c in enumerate(chunks) if j != index for a in c]
            if complement != current and check(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current, tests_run


# ----------------------------------------------------------------------
# witness atoms
# ----------------------------------------------------------------------
def witness_atoms(witness: dict) -> List[Atom]:
    """The removable components of a witness.

    Targeted rules and fault entries are individually removable; a
    jitter/priority spec is one monolithic ``("perturb", 0)`` atom (its
    per-label decisions are not separable without changing the stream).
    """
    atoms: List[Atom] = []
    perturb = witness.get("perturb") or {}
    strategy = perturb.get("strategy", "none")
    if strategy == "targeted":
        atoms.extend(("rule", i) for i in range(len(perturb.get("rules", []))))
    elif strategy != "none":
        atoms.append(("perturb", 0))
    atoms.extend(FaultPlan.from_dict(witness.get("faults")).atoms())
    return atoms


def build_specs(witness: dict, atoms: List[Atom]) -> Tuple[Optional[dict], dict]:
    """The (perturb spec, fault spec) a subset of atoms describes."""
    keep = set(atoms)
    perturb = witness.get("perturb") or {}
    strategy = perturb.get("strategy", "none")
    if strategy == "targeted":
        rules = [
            rule
            for i, rule in enumerate(perturb.get("rules", []))
            if ("rule", i) in keep
        ]
        perturb_spec: Optional[dict] = (
            dict(perturb, rules=rules) if rules else {"strategy": "none"}
        )
    elif strategy != "none" and ("perturb", 0) in keep:
        perturb_spec = dict(perturb)
    else:
        perturb_spec = {"strategy": "none"}
    fault_atoms = [a for a in keep if a[0] in ("network", "aborts", "crashes")]
    fault_spec = FaultPlan.from_dict(witness.get("faults")).subset(fault_atoms).to_dict()
    return perturb_spec, fault_spec


# ----------------------------------------------------------------------
# minimize / replay
# ----------------------------------------------------------------------
def replay_witness(witness: dict) -> dict:
    """Re-run a witness's trial; returns the fresh oracle verdict."""
    return evaluate_run(
        witness["attack"],
        witness["defense"],
        witness["seed"],
        perturb_spec=witness.get("perturb"),
        fault_spec=witness.get("faults"),
        check_determinism=witness.get("check_determinism"),
    )


def minimize_witness(witness: dict) -> dict:
    """Delta-debug one witness; returns the minimized witness.

    The preserved property is the exact failure signature of the
    original verdict.  The result carries a ``minimized`` block with the
    reduction statistics and keeps the re-evaluated verdict.
    """
    target = signature(witness["verdict"])
    atoms = witness_atoms(witness)

    def test(subset: List[Atom]) -> bool:
        perturb_spec, fault_spec = build_specs(witness, subset)
        verdict = evaluate_run(
            witness["attack"],
            witness["defense"],
            witness["seed"],
            perturb_spec=perturb_spec,
            fault_spec=fault_spec,
            check_determinism=witness.get("check_determinism"),
        )
        return signature(verdict) == target

    minimal, tests_run = ddmin(atoms, test)
    perturb_spec, fault_spec = build_specs(witness, minimal)
    verdict = evaluate_run(
        witness["attack"],
        witness["defense"],
        witness["seed"],
        perturb_spec=perturb_spec,
        fault_spec=fault_spec,
        check_determinism=witness.get("check_determinism"),
    )
    return {
        "attack": witness["attack"],
        "defense": witness["defense"],
        "seed": witness["seed"],
        "trial": witness.get("trial"),
        "strategy": witness.get("strategy"),
        "check_determinism": witness.get("check_determinism"),
        "perturb": perturb_spec,
        "faults": fault_spec,
        "signature": target,
        "verdict": verdict,
        "minimized": {
            "atoms_before": len(atoms),
            "atoms_after": len(minimal),
            "tests_run": tests_run,
        },
    }


def save_witness(witness: dict, path: str) -> None:
    """Write one witness as pretty, key-sorted JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(witness, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_witness(path: str) -> dict:
    """Read a witness file back."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


__all__ = [
    "ddmin",
    "load_witness",
    "minimize_witness",
    "replay_witness",
    "save_witness",
    "witness_atoms",
]
