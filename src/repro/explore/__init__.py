"""Schedule-space exploration: concurrency fuzzing for the simulated web.

The paper's threat model is that a bug fires only under a particular
cross-thread invocation sequence (§II–III); the rest of the repo replays
the single interleaving each attack script happens to produce.  This
package *searches* that space:

* :mod:`~repro.explore.perturb` — seeded schedule perturbation
  strategies hooked into the simulator and event loops;
* :mod:`~repro.explore.faults` — declarative fault plans (network
  latency spikes, dropped/aborted fetches, worker crashes);
* :mod:`~repro.explore.oracles` — per-run verdicts from the analysis
  layer (races, leakage, determinism, kernel dispatch-order invariant);
* :mod:`~repro.explore.campaign` — budgeted campaigns sharded over the
  parallel experiment engine with the result cache;
* :mod:`~repro.explore.minimize` — delta-debugging of failing
  (perturbation, fault-plan) pairs into minimal replayable witnesses.

Entry point: ``python -m repro fuzz``.
"""

from .campaign import run_campaign, run_diff_campaign, run_diff_cell, run_fuzz_cell
from .faults import FaultPlan
from .minimize import minimize_witness, replay_witness
from .oracles import evaluate_divergence, evaluate_run, security_failures
from .perturb import make_perturber

__all__ = [
    "FaultPlan",
    "evaluate_divergence",
    "evaluate_run",
    "make_perturber",
    "minimize_witness",
    "replay_witness",
    "run_campaign",
    "run_diff_campaign",
    "run_diff_cell",
    "run_fuzz_cell",
    "security_failures",
]
