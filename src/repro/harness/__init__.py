"""Experiment harnesses regenerating the paper's tables and figures."""

from .audit import (
    AUDIT_SEEDS,
    DETERMINISTIC_DEFENSES,
    assert_deterministic,
    determinism_matrix,
    determinism_violations,
    render_determinism,
)
from .compat import (
    LAUNCH_BUG_REGRESSIONS,
    api_compat_counts,
    dom_similarity_survey,
    week_long_user_test,
)
from .cache import ResultCache, as_cache, code_fingerprint, default_cache_dir
from .cube import CUBE_PAIR, CubeResult, overhead_profile, run_cube, run_cube_cell
from .matrix import TableOneResult, run_table1
from .parallel import Cell, CellResult, ExperimentEngine, run_cells
from .perf import (
    FIGURE2_DEFENSES,
    FIGURE2_SIZES,
    TABLE2_DEFENSES,
    dromaeo_overhead,
    figure2_script_parsing,
    figure3_cdf,
    table2_svg_loopscan,
    table3_raptor,
    worker_creation_overhead,
)

__all__ = [
    "AUDIT_SEEDS",
    "CUBE_PAIR",
    "CubeResult",
    "DETERMINISTIC_DEFENSES",
    "FIGURE2_DEFENSES",
    "FIGURE2_SIZES",
    "LAUNCH_BUG_REGRESSIONS",
    "TABLE2_DEFENSES",
    "Cell",
    "CellResult",
    "ExperimentEngine",
    "ResultCache",
    "TableOneResult",
    "api_compat_counts",
    "as_cache",
    "assert_deterministic",
    "code_fingerprint",
    "default_cache_dir",
    "determinism_matrix",
    "determinism_violations",
    "dom_similarity_survey",
    "overhead_profile",
    "run_cube",
    "run_cube_cell",
    "dromaeo_overhead",
    "figure2_script_parsing",
    "figure3_cdf",
    "render_determinism",
    "run_cells",
    "run_table1",
    "table2_svg_loopscan",
    "table3_raptor",
    "week_long_user_test",
    "worker_creation_overhead",
]
