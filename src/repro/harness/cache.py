"""Content-addressed on-disk cache for experiment cell results.

Every experiment cell in this reproduction — a Table I ``(attack,
defense, seed)`` run, a determinism-audit seed, a Figure 2 size point, an
Alexa site visit — is a pure function of its parameters and of the code
that computes it.  Virtual time makes each run bit-for-bit reproducible
(the DeterFox argument), so a cached result is exactly as good as a fresh
one, and a warm rerun of a full matrix can skip every cell.

Keying
------

A cell's cache key is the SHA-256 of a canonical JSON document::

    {"kind": <cell kind>, "params": {...}, "code": <code fingerprint>}

where the **code fingerprint** hashes every ``.py`` file under
``src/repro``.  Changing any source file — an attack, a defense, the
scheduler — invalidates the whole cache; changing only a seed or a sweep
parameter invalidates only the affected cells.  Payloads are stored as
JSON, and the engine normalises computed payloads through a JSON
round-trip before returning them, so a cache hit is byte-identical to the
computation it replaced.

Entries are written atomically (temp file + ``os.replace``), so a cache
directory shared between concurrent runs never exposes a torn entry; a
corrupt or unreadable entry is treated as a miss and recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from functools import lru_cache
from typing import Any, Dict, Optional

from ..trace import current_tracer

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-jskernel``."""
    override = os.environ.get(CACHE_DIR_ENV, "")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-jskernel")


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``.py`` source file in the ``repro`` package.

    Files are walked in sorted relative-path order and hashed as
    ``path NUL contents NUL`` so renames and content edits both change
    the digest.  Cached per process — the source tree does not change
    under a running experiment.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    hasher = hashlib.sha256()
    sources = []
    for dirpath, dirnames, filenames in os.walk(package_root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in filenames:
            if filename.endswith(".py"):
                full = os.path.join(dirpath, filename)
                sources.append((os.path.relpath(full, package_root), full))
    for relpath, full in sorted(sources):
        hasher.update(relpath.encode("utf-8"))
        hasher.update(b"\0")
        with open(full, "rb") as handle:
            hasher.update(handle.read())
        hasher.update(b"\0")
    return hasher.hexdigest()[:16]


class ResultCache:
    """Directory of content-addressed cell results.

    The cache tracks its own traffic: :attr:`hits`, :attr:`misses` and
    :attr:`stores` count :meth:`get`/:meth:`put` outcomes, so harness
    callers (and tests) can assert "a warm rerun recomputed zero cells".
    """

    def __init__(self, root: Optional[str] = None):
        self.root = str(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def key(self, kind: str, params: Dict[str, Any]) -> str:
        """Content address of one cell (kind + params + code fingerprint)."""
        blob = json.dumps(
            {"kind": kind, "params": params, "code": code_fingerprint()},
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def path(self, key: str) -> str:
        """On-disk location of one entry (two-level fan-out)."""
        return os.path.join(self.root, key[:2], f"{key}.json")

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """The stored entry for ``key``, or ``None`` on a miss.

        Any read or decode failure counts as a miss: the engine simply
        recomputes and overwrites the entry.
        """
        try:
            with open(self.path(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self._count("misses")
            return None
        if not isinstance(entry, dict) or "payload" not in entry:
            self._count("misses")
            return None
        self._count("hits")
        return entry

    def put(self, key: str, kind: str, params: Dict[str, Any], payload: Any) -> None:
        """Store one computed payload atomically."""
        path = self.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {"kind": kind, "params": params, "payload": payload}
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._count("stores")

    def _count(self, event: str) -> None:
        """Bump one traffic counter, mirrored into the ambient metrics.

        With a capture active, ``--metrics`` output then reports cache
        traffic (``cache.hits`` / ``cache.misses`` / ``cache.stores``)
        alongside the runtime's own counters.
        """
        setattr(self, event, getattr(self, event) + 1)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.metrics.counter(f"cache.{event}").inc()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self.root):
            count += sum(1 for f in filenames if f.endswith(".json"))
        return count

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in filenames:
                if filename.endswith(".json"):
                    try:
                        os.unlink(os.path.join(dirpath, filename))
                        removed += 1
                    except OSError:
                        pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ResultCache {self.root!r} hits={self.hits} "
            f"misses={self.misses} stores={self.stores}>"
        )


def as_cache(cache) -> Optional[ResultCache]:
    """Normalise the harness-level ``cache=`` argument.

    ``None``/``False`` → no cache; ``True`` → cache at the default
    location; a string/path → cache rooted there; a :class:`ResultCache`
    instance → itself.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(str(cache))


__all__ = [
    "CACHE_DIR_ENV",
    "ResultCache",
    "as_cache",
    "code_fingerprint",
    "default_cache_dir",
]
