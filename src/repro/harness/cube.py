"""The defense × attack cube: security verdicts AND overhead, per cell.

Table I answers "does the defense stop the attack?"; the cube adds the
axis the paper never reports — what each defense *costs* while doing it,
and where two defenses that both claim the threat model disagree.  Every
``(attack, defense)`` cell runs under a private tracer so the existing
metrics registry yields a per-cell **overhead profile**: the merged
event-loop queue-delay CDF, kernel stage latencies when a kernel is
installed, and task counts.

The headline comparison is JSKernel vs the DetBrowser backend
(:data:`CUBE_PAIR`): both defend the timing rows, only JSKernel closes
the CVE rows, and their overhead CDFs differ in shape — divergent cells
are first-class results (:meth:`CubeResult.divergent_cells`) and are
pinned by the committed fixture ``tests/golden/cube_expected.json``,
which the ``cube-smoke`` CI job gates on.

Cells run on the PR-3 sharded engine, so ``parallel=N`` and the
content-addressed result cache work exactly as they do for Table I.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..attacks import attack_names
from ..defenses import CUBE_DEFENSES
from ..telemetry.spans import span
from ..trace import Tracer, capture, current_tracer
from .parallel import Cell, ExperimentEngine

#: The head-to-head pair whose disagreements are the headline result.
CUBE_PAIR: Tuple[str, str] = ("jskernel", "detbrowser")

#: Overhead histogram families merged into per-cell CDFs, keyed by the
#: metrics-registry name prefix they aggregate.
OVERHEAD_FAMILIES: Tuple[Tuple[str, str], ...] = (
    ("eventloop.queue_delay_ns.", "queue_delay"),
    ("kernel.confirm_latency_ns.", "kernel_confirm"),
    ("kernel.dispatch_latency_ns.", "kernel_dispatch"),
)

#: Two defended cells whose mean queue delays differ by at least this
#: factor count as an *overhead-profile* divergence.
OVERHEAD_DIVERGENCE_RATIO = 2.0


def overhead_profile(snapshot: dict) -> dict:
    """Distil a metrics snapshot into the cell's overhead profile.

    Histograms of each family share bucket bounds (the registry
    defaults), so merging is bucket-wise addition; each family becomes a
    CDF over the bucket edges plus count/mean summaries.

    When the snapshot carries quantile sketches (a telemetry run — see
    :func:`run_cube_cell`'s ``sketches`` flag), each family additionally
    gets sketch-derived ``p50_ns``/``p95_ns``/``p99_ns`` and the
    serialized sketch itself, so campaign-level percentiles can be
    merged from cell payloads without any raw sample list.  In the
    default exact mode the output is unchanged — the committed golden
    cube fixtures stay pinned.
    """
    from ..telemetry.sketch import QuantileSketch

    profile: dict = {}
    histograms = snapshot.get("histograms", {})
    sketches = snapshot.get("sketches", {})
    for prefix, key in OVERHEAD_FAMILIES:
        merged: Optional[dict] = None
        for name in sorted(histograms):
            if not name.startswith(prefix):
                continue
            data = histograms[name]
            if merged is None:
                merged = {
                    "bounds": list(data["bounds"]),
                    "counts": list(data["counts"]),
                    "sum": data["sum"],
                    "count": data["count"],
                }
            else:
                merged["counts"] = [
                    have + more for have, more in zip(merged["counts"], data["counts"])
                ]
                merged["sum"] += data["sum"]
                merged["count"] += data["count"]
        if merged is None or merged["count"] == 0:
            continue
        cumulative = 0
        cdf = []
        for edge, count in zip([*merged["bounds"], None], merged["counts"]):
            cumulative += count
            cdf.append(
                {"le_ns": edge, "fraction": cumulative / merged["count"]}
            )
        profile[key] = {
            "count": merged["count"],
            "mean_ns": merged["sum"] / merged["count"],
            "cdf": cdf,
        }
        family_sketch: Optional[QuantileSketch] = None
        for name in sorted(sketches):
            if not name.startswith(prefix):
                continue
            data = sketches[name]
            if data["count"] == 0:
                continue
            if family_sketch is None:
                family_sketch = QuantileSketch(
                    accuracy=data["accuracy"], max_centroids=data["max_centroids"]
                )
            family_sketch.merge(data)
        if family_sketch is not None:
            profile[key]["p50_ns"] = family_sketch.quantile(0.5)
            profile[key]["p95_ns"] = family_sketch.quantile(0.95)
            profile[key]["p99_ns"] = family_sketch.quantile(0.99)
            profile[key]["sketch"] = family_sketch.to_dict()
    counters = snapshot.get("counters", {})
    profile["tasks"] = sum(
        value for name, value in counters.items() if name.startswith("eventloop.tasks.")
    )
    profile["kernel_api_calls"] = sum(
        value
        for name, value in counters.items()
        if name.startswith("kernel.api_calls.")
    )
    return profile


def run_cube_cell(attack: str, defense: str, seed: int = 0, sketches: bool = False) -> dict:
    """One cube cell: verdict + overhead profile under a private tracer.

    ``sketches`` turns on quantile-sketch recording for the cell's
    histograms (telemetry mode).  It is an explicit parameter — never
    inferred from ambient state — so the payload stays a pure function
    of the cell parameters and the result cache can key on it; the
    default (exact mode) payload is byte-identical to pre-telemetry
    runs, keeping golden fixtures and warm caches valid.

    The cell's private metrics snapshot is folded into the ambient
    tracer afterwards, so engine-level captures (``--metrics``,
    telemetry runs) see the event-loop and kernel metrics the cell
    produced.
    """
    from ..attacks import create as create_attack

    tracer = Tracer(enabled=True)
    tracer.metrics.sketch_observations = bool(sketches)
    with capture(tracer):
        result = create_attack(attack).run(defense, seed=seed)
    snapshot = tracer.metrics.snapshot()
    ambient = current_tracer()
    if ambient.enabled:
        ambient.metrics.merge_snapshot(snapshot)
    return {
        "defended": result.defended,
        "detail": result.detail,
        "overhead": overhead_profile(snapshot),
    }


class CubeResult:
    """Outcome of a cube run."""

    def __init__(
        self,
        attacks: Sequence[str],
        defenses: Sequence[str],
        seed: int,
        pair: Tuple[str, str] = CUBE_PAIR,
    ):
        self.attacks = list(attacks)
        self.defenses = list(defenses)
        self.seed = seed
        self.pair = pair
        #: attack -> defense -> defended?
        self.verdicts: Dict[str, Dict[str, bool]] = {}
        #: attack -> defense -> detail string
        self.details: Dict[str, Dict[str, str]] = {}
        #: attack -> defense -> overhead profile dict
        self.overhead: Dict[str, Dict[str, dict]] = {}
        #: "attack vs defense: error" strings for poisoned cells.
        self.errors: List[str] = []
        self.computed_cells = 0
        self.cached_cells = 0
        #: Campaign-wide queue-delay sketch (dict form), telemetry runs
        #: only — merged from per-cell sketches, never raw samples.
        self.queue_delay_sketch: Optional[dict] = None

    # ------------------------------------------------------------------
    def divergent_cells(
        self, pair: Optional[Tuple[str, str]] = None
    ) -> List[dict]:
        """Cells where the pair disagrees, by verdict or overhead shape.

        Verdict divergences (one defends, the other leaks) come first;
        overhead divergences (both defend, but mean queue delay differs
        by ≥ :data:`OVERHEAD_DIVERGENCE_RATIO`×) follow.
        """
        left, right = pair or self.pair
        found: List[dict] = []
        for attack in self.attacks:
            row = self.verdicts.get(attack, {})
            if left not in row or right not in row:
                continue
            if row[left] != row[right]:
                found.append(
                    {
                        "attack": attack,
                        "kind": "verdict",
                        left: row[left],
                        right: row[right],
                    }
                )
        for attack in self.attacks:
            row = self.verdicts.get(attack, {})
            if not (row.get(left) and row.get(right)):
                continue
            means = {}
            for defense in (left, right):
                family = self.overhead.get(attack, {}).get(defense, {})
                delay = family.get("queue_delay")
                if delay and delay["mean_ns"] > 0:
                    means[defense] = delay["mean_ns"]
            if len(means) == 2:
                ratio = max(means[left], means[right]) / min(
                    means[left], means[right]
                )
                if ratio >= OVERHEAD_DIVERGENCE_RATIO:
                    found.append(
                        {
                            "attack": attack,
                            "kind": "overhead",
                            left: round(means[left], 1),
                            right: round(means[right], 1),
                            "ratio": round(ratio, 2),
                        }
                    )
        return found

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Text cube: verdict grid plus the pair's divergent cells."""
        width = max((len(a) for a in self.attacks), default=10) + 2
        cols = [d[:12] for d in self.defenses]
        lines = [
            "".ljust(width) + " ".join(c.center(12) for c in cols),
        ]
        for attack in self.attacks:
            row = self.verdicts.get(attack, {})
            marks = []
            for defense in self.defenses:
                if defense not in row:
                    marks.append("?".center(12))
                    continue
                mark = "defended" if row[defense] else "VULNERABLE"
                marks.append(mark.center(12))
            lines.append(attack.ljust(width) + " ".join(marks))
        divergent = self.divergent_cells()
        left, right = self.pair
        lines.append("")
        lines.append(f"divergent cells ({left} vs {right}):")
        if not divergent:
            lines.append("  (none)")
        for cell in divergent:
            if cell["kind"] == "verdict":
                lines.append(
                    f"  {cell['attack']}: {left}="
                    f"{'defended' if cell[left] else 'VULNERABLE'} "
                    f"{right}={'defended' if cell[right] else 'VULNERABLE'}"
                )
            else:
                lines.append(
                    f"  {cell['attack']}: mean queue delay {left}="
                    f"{cell[left]:.0f}ns {right}={cell[right]:.0f}ns "
                    f"(x{cell['ratio']})"
                )
        if self.errors:
            lines.append("")
            lines.append("errors:")
            lines.extend(f"  {err}" for err in self.errors)
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON-ready dump (the ``--json`` payload and CI artifact).

        The ``queue_delay`` campaign summary appears only on telemetry
        (``sketches=True``) runs, so default payloads — and the golden
        fixture built from them — are unchanged.
        """
        payload = {
            "attacks": self.attacks,
            "defenses": self.defenses,
            "seed": self.seed,
            "pair": list(self.pair),
            "verdicts": self.verdicts,
            "details": self.details,
            "overhead": self.overhead,
            "divergent": self.divergent_cells(),
            "errors": self.errors,
            "computed_cells": self.computed_cells,
            "cached_cells": self.cached_cells,
        }
        if self.queue_delay_sketch is not None:
            from ..telemetry.sketch import QuantileSketch

            sketch = QuantileSketch.from_dict(self.queue_delay_sketch)
            payload["queue_delay"] = {
                "quantiles_ns": sketch.quantiles(),
                "count": sketch.count,
                "sketch": self.queue_delay_sketch,
            }
        return payload


def run_cube(
    attacks: Optional[Sequence[str]] = None,
    defenses: Optional[Sequence[str]] = None,
    seed: int = 0,
    parallel: Optional[int] = None,
    cache=None,
    pair: Tuple[str, str] = CUBE_PAIR,
    sketches: bool = False,
) -> CubeResult:
    """Evaluate the defense × attack cube.

    Defaults to every Table I attack × :data:`~repro.defenses.CUBE_DEFENSES`
    (the four prior defenses plus the JSKernel/DetBrowser head-to-head).
    Each cell is a pure function of ``(attack, defense, seed)`` and runs
    on the sharded engine, so ``parallel``/``cache`` behave exactly as
    they do for :func:`~repro.harness.matrix.run_table1`.

    ``sketches=True`` (telemetry mode) records per-cell quantile
    sketches and aggregates a campaign-wide queue-delay sketch; the flag
    becomes part of each cell's parameters **only when set**, so default
    cells keep their pre-telemetry cache keys and golden payloads.
    """
    attacks = list(attacks or attack_names())
    defenses = list(defenses or CUBE_DEFENSES)
    extra = {"sketches": True} if sketches else {}
    cells = [
        Cell("cube", {"attack": attack, "defense": defense, "seed": seed, **extra})
        for attack in attacks
        for defense in defenses
    ]
    engine = ExperimentEngine(workers=parallel, cache=cache)
    with span("cube.run", cells=len(cells), seed=seed):
        results = engine.run(cells)

    outcome = CubeResult(attacks, defenses, seed, pair=pair)
    for attack in attacks:
        outcome.verdicts[attack] = {}
        outcome.details[attack] = {}
        outcome.overhead[attack] = {}
    for result in results:
        attack = result.cell.params["attack"]
        defense = result.cell.params["defense"]
        if result.ok:
            outcome.verdicts[attack][defense] = result.payload["defended"]
            outcome.details[attack][defense] = result.payload["detail"]
            outcome.overhead[attack][defense] = result.payload["overhead"]
        else:
            # poisoned cells count as undefended, like the Table I harness
            outcome.verdicts[attack][defense] = False
            outcome.details[attack][defense] = f"error: {result.error}"
            outcome.overhead[attack][defense] = {}
            outcome.errors.append(f"{attack} vs {defense}: {result.error}")
    outcome.computed_cells = engine.computed
    outcome.cached_cells = engine.cache_hits

    if sketches:
        from ..telemetry.sketch import QuantileSketch

        campaign: Optional[QuantileSketch] = None
        for result in results:
            if not result.ok:
                continue
            data = result.payload["overhead"].get("queue_delay", {}).get("sketch")
            if not data or data["count"] == 0:
                continue
            if campaign is None:
                campaign = QuantileSketch(
                    accuracy=data["accuracy"], max_centroids=data["max_centroids"]
                )
            campaign.merge(data)
        if campaign is not None:
            outcome.queue_delay_sketch = campaign.to_dict()

    tracer = current_tracer()
    if tracer.enabled:
        tracer.metrics.counter("cube.cells").inc(len(cells))
    return outcome


__all__ = [
    "CUBE_PAIR",
    "CubeResult",
    "overhead_profile",
    "run_cube",
    "run_cube_cell",
]
