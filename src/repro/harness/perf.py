"""Performance harness: the §V-A experiments as callable functions.

Each function regenerates one of the paper's performance artefacts and
returns structured data; the ``benchmarks/`` files print them in the
paper's shape.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime.rng import hash_seed
from ..trace import current_tracer
from ..workloads.alexa import FIGURE3_CONFIGS, figure3_series
from ..workloads.dromaeo import overhead_report
from ..workloads.raptor import table3_rows
from ..workloads.workerbench import worker_overhead_pct
from .parallel import Cell, ExperimentEngine

#: Figure 2's file-size sweep (bytes).
FIGURE2_SIZES = tuple(int(mb * 1024 * 1024) for mb in (2, 4, 6, 8, 10))

#: Defenses plotted in Figure 2 (the paper's legend).
FIGURE2_DEFENSES = (
    "legacy-chrome",
    "legacy-firefox",
    "legacy-edge",
    "jskernel",
    "chromezero",
    "tor",
    "fuzzyfox",
)

TABLE2_DEFENSES = (
    "legacy-chrome",
    "legacy-firefox",
    "legacy-edge",
    "fuzzyfox",
    "tor",
    "chromezero",
    "jskernel",
)


def figure2_script_parsing(
    sizes: Sequence[int] = FIGURE2_SIZES,
    defenses: Sequence[str] = FIGURE2_DEFENSES,
    seed: int = 0,
    parallel: Optional[int] = None,
    cache=None,
) -> Dict[str, List[Tuple[float, float]]]:
    """defense -> [(size_mb, reported_time_ms)] series.

    The paper's observation to reproduce: every defense except JSKernel
    shows reported time increasing with file size; JSKernel is flat.
    Every ``(defense, size)`` point is an independent cell, so the sweep
    shards across ``parallel`` workers and caches per point.
    """
    cells = [
        Cell(
            "figure2",
            {"defense": defense, "size": int(size),
             "seed": hash_seed(seed, f"fig2:{defense}:{size}")},
        )
        for defense in defenses
        for size in sizes
    ]
    results = ExperimentEngine(workers=parallel, cache=cache).run(cells)
    series: Dict[str, List[Tuple[float, float]]] = {defense: [] for defense in defenses}
    for result in results:
        if not result.ok:
            raise RuntimeError(f"figure2 cell {result.cell.label()} failed: {result.error}")
        size = result.cell.params["size"]
        series[result.cell.params["defense"]].append(
            (size / 1024 / 1024, result.payload["reported_ms"])
        )
    return series


def table2_svg_loopscan(
    defenses: Sequence[str] = TABLE2_DEFENSES,
    runs: int = 5,
    seed: int = 0,
    parallel: Optional[int] = None,
    cache=None,
) -> Dict[str, Dict[str, float]]:
    """defense -> measured values for the four Table II columns.

    The returned mapping contains **only** defense rows.  (It previously
    smuggled a top-level ``"metrics"`` key in under an active tracer,
    forcing every consumer to skip a fake defense row; metrics now travel
    out-of-band — snapshot ``current_tracer().metrics`` after the call,
    which the parallel engine keeps populated even for sharded runs.)
    """
    cells = [
        Cell("table2", {"defense": defense, "runs": int(runs), "seed": seed})
        for defense in defenses
    ]
    results = ExperimentEngine(workers=parallel, cache=cache).run(cells)
    table: Dict[str, Dict[str, float]] = {}
    for result in results:
        if not result.ok:
            raise RuntimeError(f"table2 cell {result.cell.label()} failed: {result.error}")
        table[result.cell.params["defense"]] = result.payload
    return table


def figure3_cdf(
    site_count: int = 500,
    visits: int = 3,
    seed: int = 0,
    configs: Optional[List[str]] = None,
    parallel: Optional[int] = None,
    cache=None,
) -> Dict[str, List[float]]:
    """The Alexa loading-time series per configuration."""
    return figure3_series(
        site_count=site_count, visits=visits, seed=seed, configs=configs,
        parallel=parallel, cache=cache,
    )


def table3_raptor(runs: int = 25, seed: int = 0) -> Dict[str, Dict[str, Dict[str, float]]]:
    """The raptor-tp6-1 rows."""
    return table3_rows(runs=runs, seed=seed)


def dromaeo_overhead(seed: int = 0) -> Dict[str, object]:
    """The Dromaeo overhead report for JSKernel on Chrome."""
    report = overhead_report(config="jskernel", baseline="legacy-chrome", seed=seed)
    tracer = current_tracer()
    if tracer.enabled:
        report = dict(report)
        report["metrics"] = tracer.metrics.snapshot()
    return report


def worker_creation_overhead(seed: int = 0) -> Dict[str, float]:
    """The 16-worker creation benchmark."""
    return worker_overhead_pct(seed=seed)


__all__ = [
    "FIGURE2_DEFENSES",
    "FIGURE2_SIZES",
    "FIGURE3_CONFIGS",
    "TABLE2_DEFENSES",
    "dromaeo_overhead",
    "figure2_script_parsing",
    "figure3_cdf",
    "table2_svg_loopscan",
    "table3_raptor",
    "worker_creation_overhead",
]
