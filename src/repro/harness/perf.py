"""Performance harness: the §V-A experiments as callable functions.

Each function regenerates one of the paper's performance artefacts and
returns structured data; the ``benchmarks/`` files print them in the
paper's shape.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.stats import mean
from ..attacks.timing.script_parsing import ScriptParsingAttack
from ..attacks.timing.loopscan import LoopscanAttack
from ..attacks.timing.svg_filtering import SvgFilteringAttack
from ..runtime.rng import hash_seed
from ..trace import current_tracer
from ..workloads.alexa import FIGURE3_CONFIGS, figure3_series
from ..workloads.dromaeo import overhead_report
from ..workloads.raptor import table3_rows
from ..workloads.workerbench import worker_overhead_pct

#: Figure 2's file-size sweep (bytes).
FIGURE2_SIZES = tuple(int(mb * 1024 * 1024) for mb in (2, 4, 6, 8, 10))

#: Defenses plotted in Figure 2 (the paper's legend).
FIGURE2_DEFENSES = (
    "legacy-chrome",
    "legacy-firefox",
    "legacy-edge",
    "jskernel",
    "chromezero",
    "tor",
    "fuzzyfox",
)

TABLE2_DEFENSES = (
    "legacy-chrome",
    "legacy-firefox",
    "legacy-edge",
    "fuzzyfox",
    "tor",
    "chromezero",
    "jskernel",
)


def figure2_script_parsing(
    sizes: Sequence[int] = FIGURE2_SIZES,
    defenses: Sequence[str] = FIGURE2_DEFENSES,
    seed: int = 0,
) -> Dict[str, List[Tuple[float, float]]]:
    """defense -> [(size_mb, reported_time_ms)] series.

    The paper's observation to reproduce: every defense except JSKernel
    shows reported time increasing with file size; JSKernel is flat.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    for defense in defenses:
        attack = ScriptParsingAttack()
        points = []
        for size in sizes:
            reported = attack.reported_time_ms(
                defense, size, seed=hash_seed(seed, f"fig2:{defense}:{size}")
            )
            points.append((size / 1024 / 1024, reported))
        series[defense] = points
    return series


def table2_svg_loopscan(
    defenses: Sequence[str] = TABLE2_DEFENSES,
    runs: int = 5,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """defense -> measured values for the four Table II columns."""
    svg = SvgFilteringAttack()
    loopscan = LoopscanAttack()
    table: Dict[str, Dict[str, float]] = {}
    for defense in defenses:
        def avg(attack, secret):
            return mean(
                [
                    attack.run_trial(defense, secret, hash_seed(seed, f"t2:{defense}:{secret}:{i}"))
                    for i in range(runs)
                ]
            )

        table[defense] = {
            "svg_low_ms": avg(svg, "low"),
            "svg_high_ms": avg(svg, "high"),
            "loopscan_google_ms": avg(loopscan, "google"),
            "loopscan_youtube_ms": avg(loopscan, "youtube"),
        }
    tracer = current_tracer()
    if tracer.enabled:
        # extra top-level key, only under an active capture; per-defense
        # consumers must skip it (it is not a defense row)
        table["metrics"] = tracer.metrics.snapshot()
    return table


def figure3_cdf(
    site_count: int = 500,
    visits: int = 3,
    seed: int = 0,
    configs: Optional[List[str]] = None,
) -> Dict[str, List[float]]:
    """The Alexa loading-time series per configuration."""
    return figure3_series(site_count=site_count, visits=visits, seed=seed, configs=configs)


def table3_raptor(runs: int = 25, seed: int = 0) -> Dict[str, Dict[str, Dict[str, float]]]:
    """The raptor-tp6-1 rows."""
    return table3_rows(runs=runs, seed=seed)


def dromaeo_overhead(seed: int = 0) -> Dict[str, object]:
    """The Dromaeo overhead report for JSKernel on Chrome."""
    report = overhead_report(config="jskernel", baseline="legacy-chrome", seed=seed)
    tracer = current_tracer()
    if tracer.enabled:
        report = dict(report)
        report["metrics"] = tracer.metrics.snapshot()
    return report


def worker_creation_overhead(seed: int = 0) -> Dict[str, float]:
    """The 16-worker creation benchmark."""
    return worker_overhead_pct(seed=seed)


__all__ = [
    "FIGURE2_DEFENSES",
    "FIGURE2_SIZES",
    "FIGURE3_CONFIGS",
    "TABLE2_DEFENSES",
    "dromaeo_overhead",
    "figure2_script_parsing",
    "figure3_cdf",
    "table2_svg_loopscan",
    "table3_raptor",
    "worker_creation_overhead",
]
