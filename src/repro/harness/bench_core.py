"""Core microbenchmarks: events/sec through the discrete-event hot path.

``python -m repro bench core`` runs seeded microbenchmarks over the
layers every experiment bottoms out in — raw ``Simulator`` dispatch, the
``EventLoop`` drain, timers, postMessage ping-pong, kernel two-stage
scheduling, and the traced-vs-untraced overhead — and writes
``BENCH_core.json``.

Methodology
-----------

Each benchmark builds a fresh workload per repeat, garbage-collects,
then times one full drain with ``time.perf_counter_ns``.  Reported:

* ``events_per_sec`` — the *best* repeat (least interference);
* ``p50_ns_per_event`` / ``p95_ns_per_event`` — percentiles of the mean
  per-event cost across repeats (spread ⇒ noisy machine);
* ``alloc_blocks_per_event`` — ``sys.getallocatedblocks`` delta per
  event on the median repeat: the zero-alloc-when-untraced invariant
  shows up here as a near-zero value for raw dispatch.

The ``raw-dispatch``, ``timer-storm``, ``wheel`` and ``precompiled``
workloads are also run against the frozen seed implementations
(:mod:`.bench_reference`) in the same process, giving an in-run,
same-machine speedup — the number the ISSUE acceptance criteria refer
to (``wheel``: timer-wheel vs seed-heap dispatch of an out-of-order
storm; ``precompiled``: batch-executed vs seed-interpreted timer
chain).  The reference throughput
doubles as a machine-speed calibration for the CI regression check:
``check_regression`` compares *normalised* throughput (live ÷ reference)
against the committed baseline, so a slower CI runner does not fail the
gate and a faster one does not mask a regression.

Workloads draw any randomness from a seeded private stream
(:mod:`repro.runtime.rng`); two invocations execute identical schedules.
"""

from __future__ import annotations

import gc
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..kernel.policies.deterministic import DeterministicSchedulingPolicy
from ..runtime.compile import TimerChainSpec, compile_chain
from ..kernel.policy import CompositePolicy, SchedulingGrid
from ..kernel.space import KernelSpace
from ..runtime.eventloop import EventLoop
from ..runtime.messaging import make_channel
from ..runtime.rng import RngService
from ..runtime.simulator import Simulator
from ..runtime.timers import TimerRegistry
from ..trace import Tracer, capture
from .bench_reference import ReferenceEventLoop, ReferenceSimulator

#: Benchmark scale at --quick 1 (full scale; --quick shrinks by 10x).
DEFAULT_EVENTS = {
    "raw-dispatch": 200_000,
    "dispatch-chain": 100_000,
    "timer-storm": 30_000,
    "wheel": 100_000,
    "precompiled": 30_000,
    "worker-ping-pong": 10_000,
    "kernel-schedule": 10_000,
    "traced-overhead": 20_000,
}

DEFAULT_REPEATS = 5

#: Fail the CI gate when normalised events/sec drops below this fraction
#: of the committed baseline (ISSUE 5: >20% regression fails).
REGRESSION_TOLERANCE = 0.20


# ----------------------------------------------------------------------
# workloads: each returns (run, events) — run() drains the schedule and
# returns the processed-event count
# ----------------------------------------------------------------------

def _setup_raw_dispatch(n: int, reference: bool) -> Callable[[], int]:
    sim = ReferenceSimulator() if reference else Simulator()
    schedule = sim.schedule

    def _noop() -> None:
        pass

    for i in range(n):
        schedule(i * 1_000, _noop)

    def run() -> int:
        sim.run()
        return sim.events_processed

    return run


def _setup_dispatch_chain(n: int, reference: bool) -> Callable[[], int]:
    sim = ReferenceSimulator() if reference else Simulator()
    remaining = [n]

    def _next() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(sim.dispatch_time + 1_000, _next)

    sim.schedule(0, _next)

    def run() -> int:
        sim.run()
        return sim.events_processed

    return run


def _setup_timer_storm(n: int, reference: bool) -> Callable[[], int]:
    sim = ReferenceSimulator() if reference else Simulator()
    loop_cls = ReferenceEventLoop if reference else EventLoop
    loop = loop_cls(sim, "main", task_dispatch_cost=0)
    timers = TimerRegistry(loop)
    rng = RngService(seed=0).stream("bench.timer-storm")
    fired = [0]

    def _tick() -> None:
        fired[0] += 1

    for _ in range(n):
        timers.set_timeout(_tick, rng.randrange(0, 50))

    def run() -> int:
        sim.run()
        assert fired[0] == n, (fired[0], n)
        return sim.events_processed

    return run


def _setup_wheel(n: int, reference: bool) -> Callable[[], int]:
    """Out-of-order pre-scheduled storm on the simulator's timed lane.

    Every schedule lands at a seeded random time over a wide horizon, so
    nothing takes the in-order FIFO fast path: the live build exercises
    the hierarchical timer wheel end to end (push, slot sort, cascade),
    the reference build the seed's binary heap.
    """
    sim = ReferenceSimulator() if reference else Simulator()
    rng = RngService(seed=0).stream("bench.wheel")
    schedule = sim.schedule
    horizon = n * 2_000

    def _noop() -> None:
        pass

    for _ in range(n):
        schedule(rng.randrange(0, horizon), _noop)

    def run() -> int:
        sim.run()
        return sim.events_processed

    return run


def _setup_precompiled(n: int, reference: bool) -> Callable[[], int]:
    """A statically-known setTimeout chain with microtask reactions.

    The live build runs it through the scenario pre-compiler's batch
    executor; the reference build runs the identical spec interpreted on
    the frozen seed loop (one real timer, wake and dispatch per link).
    Both drains produce the same virtual schedule, so the normalised
    ratio is exactly the pre-compiler's speedup.
    """
    sim = ReferenceSimulator() if reference else Simulator()
    loop_cls = ReferenceEventLoop if reference else EventLoop
    loop = loop_cls(sim, "main", task_dispatch_cost=0)
    timers = TimerRegistry(loop)
    spec = TimerChainSpec.uniform(
        n, delay_ms=1, cost=2_000, micros=2, micro_cost=400
    )
    chain = compile_chain(spec, timers)

    def run() -> int:
        (chain.start_interpreted if reference else chain.start)()
        sim.run()
        assert chain.finished, (chain.mode, chain.links_batched)
        return sim.events_processed

    return run


def _setup_worker_ping_pong(n: int, reference: bool) -> Callable[[], int]:
    sim = ReferenceSimulator() if reference else Simulator()
    loop_cls = ReferenceEventLoop if reference else EventLoop
    main = loop_cls(sim, "main", task_dispatch_cost=0)
    worker = loop_cls(sim, "worker", task_dispatch_cost=0)
    side_main, side_worker = make_channel("bench", main, worker, latency_ns=10_000)
    rounds = [0]

    def _on_worker(event) -> None:
        side_worker.post(event.data + 1)

    def _on_main(event) -> None:
        rounds[0] += 1
        if rounds[0] < n:
            side_main.post(event.data + 1)

    side_worker.add_handler(_on_worker)
    side_main.add_handler(_on_main)

    def run() -> int:
        side_main.post(0)
        sim.run()
        assert rounds[0] == n, (rounds[0], n)
        return sim.events_processed

    return run


def _setup_kernel_schedule(n: int, reference: bool) -> Callable[[], int]:
    sim = ReferenceSimulator() if reference else Simulator()
    loop_cls = ReferenceEventLoop if reference else EventLoop
    loop = loop_cls(sim, "kbench", task_dispatch_cost=0)
    policy = CompositePolicy([DeterministicSchedulingPolicy()])
    kspace = KernelSpace(loop, policy, SchedulingGrid(), label="bench")
    dispatched = [0]

    def _cb() -> None:
        dispatched[0] += 1

    scheduler = kspace.scheduler
    for i in range(n):
        event = scheduler.register("timeout", {"default": _cb}, hint=1_000 * (i + 1))
        scheduler.confirm(event)

    def run() -> int:
        sim.run()
        assert dispatched[0] == n, (dispatched[0], n)
        return sim.events_processed

    return run


def _setup_traced(n: int) -> Callable[[], int]:
    """timer-storm under an enabled tracer (for the overhead ratio)."""
    tracer = Tracer()
    with capture(tracer):
        sim = Simulator()
        loop = EventLoop(sim, "main", task_dispatch_cost=0)
    timers = TimerRegistry(loop)
    rng = RngService(seed=0).stream("bench.timer-storm")
    fired = [0]

    def _tick() -> None:
        fired[0] += 1

    with capture(tracer):
        for _ in range(n):
            timers.set_timeout(_tick, rng.randrange(0, 50))

    def run() -> int:
        with capture(tracer):
            sim.run()
        assert fired[0] == n
        return sim.events_processed

    return run


WORKLOADS: Dict[str, Callable[[int, bool], Callable[[], int]]] = {
    "raw-dispatch": _setup_raw_dispatch,
    "dispatch-chain": _setup_dispatch_chain,
    "timer-storm": _setup_timer_storm,
    "wheel": _setup_wheel,
    "precompiled": _setup_precompiled,
    "worker-ping-pong": _setup_worker_ping_pong,
    "kernel-schedule": _setup_kernel_schedule,
}

#: Workloads also run against the frozen seed implementations.
REFERENCE_WORKLOADS = ("raw-dispatch", "timer-storm", "wheel", "precompiled")


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------

def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(round(fraction * (len(sorted_values) - 1))), len(sorted_values) - 1)
    return sorted_values[index]


def _measure(
    setup: Callable[[], Callable[[], int]], repeats: int
) -> Dict[str, float]:
    samples: List[Tuple[int, int, int]] = []  # (elapsed_ns, events, blocks)
    for _ in range(repeats):
        run = setup()
        gc.collect()
        blocks_before = sys.getallocatedblocks()
        start = time.perf_counter_ns()
        events = run()
        elapsed = time.perf_counter_ns() - start
        blocks = sys.getallocatedblocks() - blocks_before
        samples.append((max(elapsed, 1), events, blocks))
    per_event = sorted(elapsed / events for elapsed, events, _ in samples)
    best = max(events * 1e9 / elapsed for elapsed, events, _ in samples)
    median_blocks = sorted(samples, key=lambda s: s[0])[len(samples) // 2]
    return {
        "events": samples[0][1],
        "repeats": repeats,
        "events_per_sec": round(best, 1),
        "p50_ns_per_event": round(_percentile(per_event, 0.50), 1),
        "p95_ns_per_event": round(_percentile(per_event, 0.95), 1),
        "alloc_blocks_per_event": round(median_blocks[2] / median_blocks[1], 3),
    }


def run_bench_core(
    scale: float = 1.0,
    repeats: int = DEFAULT_REPEATS,
    only: Optional[List[str]] = None,
) -> dict:
    """Run the suite; returns the BENCH_core.json payload."""
    names = only or list(WORKLOADS)
    known = set(WORKLOADS) | {"traced-overhead"}
    unknown = [name for name in names if name not in known]
    if unknown:
        raise ValueError(f"unknown benchmarks {unknown}; expected {sorted(known)}")
    benchmarks: Dict[str, dict] = {}
    for name in names:
        if name == "traced-overhead":
            continue
        n = max(int(DEFAULT_EVENTS[name] * scale), 100)
        setup = WORKLOADS[name]
        benchmarks[name] = _measure(lambda: setup(n, False), repeats)
        if name in REFERENCE_WORKLOADS:
            benchmarks[f"{name}-reference"] = _measure(lambda: setup(n, True), repeats)

    speedups = {
        name: round(
            benchmarks[name]["events_per_sec"]
            / benchmarks[f"{name}-reference"]["events_per_sec"],
            2,
        )
        for name in REFERENCE_WORKLOADS
        if name in benchmarks and f"{name}-reference" in benchmarks
    }

    traced = None
    if only is None or "traced-overhead" in names:
        n = max(int(DEFAULT_EVENTS["traced-overhead"] * scale), 100)
        untraced = _measure(lambda: _setup_timer_storm(n, False), repeats)
        traced_m = _measure(lambda: _setup_traced(n), repeats)
        traced = {
            "untraced_events_per_sec": untraced["events_per_sec"],
            "traced_events_per_sec": traced_m["events_per_sec"],
            "overhead_ratio": round(
                untraced["events_per_sec"] / traced_m["events_per_sec"], 2
            ),
            "traced_alloc_blocks_per_event": traced_m["alloc_blocks_per_event"],
            "untraced_alloc_blocks_per_event": untraced["alloc_blocks_per_event"],
        }

    report = {
        "schema": 2,
        "scale": scale,
        "benchmarks": benchmarks,
        "speedups_vs_seed_reference": speedups,
    }
    if traced is not None:
        report["traced_overhead"] = traced
    return report


# ----------------------------------------------------------------------
# regression gate
# ----------------------------------------------------------------------

def _normalised(report: dict, name: str) -> Optional[float]:
    """Machine-independent throughput: live ÷ in-run seed reference."""
    bench = report.get("benchmarks", {})
    live = bench.get(name, {}).get("events_per_sec")
    ref = bench.get(f"{name}-reference", {}).get("events_per_sec")
    if not live or not ref:
        return None
    return live / ref


def check_regression(
    report: dict, baseline: dict, tolerance: float = REGRESSION_TOLERANCE
) -> List[str]:
    """Compare a fresh report against the committed baseline.

    Returns human-readable failure lines (empty = pass).  Normalised
    (reference-calibrated) throughput is compared where both runs have a
    reference measurement; benchmarks without one fall back to the raw
    events/sec ratio, which is only meaningful on comparable machines.
    """
    failures: List[str] = []
    current = report.get("benchmarks", {})
    previous = baseline.get("benchmarks", {})
    for name in previous:
        if name.endswith("-reference") or name not in current:
            continue
        now_norm = _normalised(report, name)
        then_norm = _normalised(baseline, name)
        if now_norm is not None and then_norm is not None:
            ratio, basis = now_norm / then_norm, "normalised"
        else:
            now_raw = current[name].get("events_per_sec") or 0
            then_raw = previous[name].get("events_per_sec") or 0
            if not now_raw or not then_raw:
                continue
            ratio, basis = now_raw / then_raw, "raw"
        if ratio < 1.0 - tolerance:
            failures.append(
                f"{name}: {basis} events/sec regressed to {ratio:.2f}x of the "
                f"baseline (tolerance {1.0 - tolerance:.2f}x); refresh with "
                "'python -m repro bench core --out "
                "benchmarks/baselines/bench_core_baseline.json' if intended"
            )
    return failures


def format_report(report: dict) -> str:
    """Human-readable table for the CLI."""
    lines = []
    header = (
        f"{'benchmark':22s} {'events':>9s} {'events/sec':>12s} "
        f"{'p50 ns/ev':>10s} {'p95 ns/ev':>10s} {'allocs/ev':>10s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, stats in report["benchmarks"].items():
        lines.append(
            f"{name:22s} {stats['events']:>9d} {stats['events_per_sec']:>12,.0f} "
            f"{stats['p50_ns_per_event']:>10.1f} {stats['p95_ns_per_event']:>10.1f} "
            f"{stats['alloc_blocks_per_event']:>10.3f}"
        )
    speedups = report.get("speedups_vs_seed_reference") or {}
    if speedups:
        lines.append("")
        for name, ratio in speedups.items():
            lines.append(f"speedup vs seed reference [{name}]: {ratio:.2f}x")
    traced = report.get("traced_overhead")
    if traced:
        lines.append(
            f"traced overhead: {traced['overhead_ratio']:.2f}x "
            f"({traced['untraced_events_per_sec']:,.0f} -> "
            f"{traced['traced_events_per_sec']:,.0f} events/sec)"
        )
    return "\n".join(lines)
