"""Parallel sharded execution engine for experiment cells.

The paper's evaluation (§IV–§V) is an embarrassingly parallel grid: every
Table I ``(attack, defense, seed)`` cell, determinism-audit seed, Figure
2 size point and Alexa site visit is a pure deterministic function of its
parameters.  This module shards those cells across a process pool and
reassembles the results in submission order, so a parallel run is
byte-identical to a serial one — determinism is the repo's headline
property, and the engine is itself audited by the existing
:mod:`repro.analysis.determinism` machinery (see ``python -m repro bench``
and ``tests/test_parallel_engine.py``).

Execution model
---------------

* A :class:`Cell` is ``(kind, params)``; each kind names a registered
  runner (a module-level function, so it pickles under both ``fork`` and
  ``spawn`` start methods).
* ``workers <= 1`` runs cells in-process, in order, under whatever tracer
  capture is ambient — exactly the historical serial behaviour.
* ``workers > 1`` dispatches contiguous chunks to a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker runs its
  chunk under a private :class:`~repro.trace.Tracer` when the parent has
  an enabled capture, and the parent merges the per-worker metrics
  snapshots back into the ambient registry **in chunk order**, so
  counters and histograms equal the serial capture's (trace *events* are
  not shipped back — use a serial run when you need the full timeline).
* Every cell is individually guarded: a poisoned cell produces a
  :class:`CellResult` with ``error`` set instead of killing the pool.
* With a :class:`~repro.harness.cache.ResultCache`, cells already on disk
  are never dispatched at all, and fresh results are stored after the
  run; computed payloads are JSON-normalised first so a warm rerun
  returns byte-identical objects.
"""

from __future__ import annotations

import json
import math
import traceback
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..telemetry.run import RunTelemetry, current_run
from ..telemetry.spans import worker_recorder
from ..trace import Tracer, capture, current_tracer
from .cache import ResultCache, as_cache


@dataclass(frozen=True)
class Cell:
    """One experiment cell: a registered kind plus its parameters."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def label(self) -> str:
        """Compact human-readable identity (error messages, reports)."""
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.kind}({inner})"


@dataclass
class CellResult:
    """Outcome of one cell: payload on success, error text on failure."""

    cell: Cell
    payload: Any = None
    error: Optional[str] = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


# ----------------------------------------------------------------------
# cell-kind registry
# ----------------------------------------------------------------------
_RUNNERS: Dict[str, Callable[..., Any]] = {}


def cell_kind(name: str):
    """Register a module-level function as the runner for ``name``."""

    def decorate(fn):
        _RUNNERS[name] = fn
        return fn

    return decorate


@cell_kind("table1")
def _run_table1_cell(attack: str, defense: str, seed: int) -> dict:
    """One Table I cell: did the defense stop the attack?"""
    from ..attacks import create as create_attack

    result = create_attack(attack).run(defense, seed=seed)
    return {"defended": result.defended, "detail": result.detail}


@cell_kind("audit-schedule")
def _run_audit_cell(attack: str, defense: str, seed: int) -> dict:
    """One determinism-audit shard: the dispatch schedule under one seed."""
    from ..analysis.determinism import schedule_for_seed

    schedule, outcome = schedule_for_seed(attack, defense, seed)
    return {"schedule": schedule, "outcome": outcome}


@cell_kind("figure2")
def _run_figure2_cell(defense: str, size: int, seed: int) -> dict:
    """One Figure 2 point: reported parsing time for one file size."""
    from ..attacks.timing.script_parsing import ScriptParsingAttack

    return {"reported_ms": ScriptParsingAttack().reported_time_ms(defense, size, seed=seed)}


@cell_kind("table2")
def _run_table2_cell(defense: str, runs: int, seed: int) -> dict:
    """One Table II row: SVG-filtering and loopscan averages."""
    from ..analysis.stats import mean
    from ..attacks.timing.loopscan import LoopscanAttack
    from ..attacks.timing.svg_filtering import SvgFilteringAttack
    from ..runtime.rng import hash_seed

    svg = SvgFilteringAttack()
    loopscan = LoopscanAttack()

    def avg(attack, secret):
        return mean(
            [
                attack.run_trial(defense, secret, hash_seed(seed, f"t2:{defense}:{secret}:{i}"))
                for i in range(runs)
            ]
        )

    return {
        "svg_low_ms": avg(svg, "low"),
        "svg_high_ms": avg(svg, "high"),
        "loopscan_google_ms": avg(loopscan, "google"),
        "loopscan_youtube_ms": avg(loopscan, "youtube"),
    }


@cell_kind("alexa")
def _run_alexa_cell(config: str, rank: int, site_count: int, visits: int, seed: int) -> dict:
    """One Figure 3 cell: a site's average load time under one config."""
    from ..workloads.alexa import measure_site_average, site_for_rank

    site = site_for_rank(rank, site_count, seed)
    return {"avg_ms": measure_site_average(config, site, visits=visits, seed=seed)}


@cell_kind("population")
def _run_population_cell(
    rank: int,
    seed: int,
    size: int,
    mode: str = "model",
    config: str = "",
    visit: int = 0,
) -> dict:
    """One population-sweep visit (see :mod:`repro.workloads.population`)."""
    from ..workloads.population import run_population_page

    return run_population_page(
        rank, seed, size=size, mode=mode, config=config, visit=visit
    )


@cell_kind("fuzz")
def _run_fuzz_cell(**params) -> dict:
    """One fuzz-campaign shard (see :mod:`repro.explore.campaign`)."""
    from ..explore.campaign import run_fuzz_cell

    return run_fuzz_cell(**params)


@cell_kind("fuzz-diff")
def _run_fuzz_diff_cell(**params) -> dict:
    """One differential fuzz shard (see :mod:`repro.explore.campaign`)."""
    from ..explore.campaign import run_diff_cell

    return run_diff_cell(**params)


@cell_kind("cube")
def _run_cube_cell(attack: str, defense: str, seed: int, sketches: bool = False) -> dict:
    """One defense × attack cube cell: verdict + overhead profile."""
    from ..harness.cube import run_cube_cell

    return run_cube_cell(attack, defense, seed=seed, sketches=sketches)


# ----------------------------------------------------------------------
# worker-side execution
# ----------------------------------------------------------------------
def _jsonify(payload: Any) -> Any:
    """Normalise a payload through a JSON round-trip.

    Guarantees a computed result equals its cached-then-reloaded twin
    (tuples become lists, dict keys become strings) — the invariant the
    byte-identical warm-rerun promise rests on.
    """
    return json.loads(json.dumps(payload))


def _run_cell(spec: Tuple[str, Dict[str, Any]]) -> dict:
    """Run one cell spec; never raises — errors are captured per cell."""
    kind, params = spec
    runner = _RUNNERS.get(kind)
    if runner is None:
        return {"ok": False, "payload": None, "error": f"unknown cell kind {kind!r}"}
    try:
        return {"ok": True, "payload": _jsonify(runner(**params)), "error": None}
    except Exception as exc:
        return {
            "ok": False,
            "payload": None,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


def _run_chunk(
    batch: Tuple[List[Tuple[str, Dict[str, Any]]], bool, bool, int],
) -> Tuple[List[dict], Optional[dict]]:
    """Worker entry point: run a contiguous chunk of cell specs.

    When ``collect_metrics`` is set the chunk runs under a private
    tracer and the metrics snapshot rides back with the results.  When
    ``collect_telemetry`` is set the tracer also records quantile
    sketches, and the worker appends its shard lifecycle and per-cell
    outcomes to the shared run log (the path rides in through
    ``$REPRO_RUNLOG``).
    """
    specs, collect_metrics, collect_telemetry, shard = batch
    # worker_recorder() installs itself as the process-ambient recorder,
    # so a long-lived pool worker reuses one run-log handle across chunks
    recorder = worker_recorder() if collect_telemetry else None

    def execute() -> List[dict]:
        results = []
        for spec in specs:
            outcome = _run_cell(spec)
            if recorder is not None:
                recorder.point(
                    "engine.cell", kind=spec[0], ok=outcome["ok"], cached=False
                )
            results.append(outcome)
        return results

    if not collect_metrics:
        return execute(), None
    tracer = Tracer(enabled=True)
    tracer.metrics.sketch_observations = collect_telemetry
    if recorder is not None:
        with recorder.span("engine.shard", shard=shard, cells=len(specs)):
            with capture(tracer):
                results = execute()
    else:
        with capture(tracer):
            results = execute()
    return results, tracer.metrics.snapshot()


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class ExperimentEngine:
    """Shard experiment cells across workers, with an optional cache.

    ``workers=None``/``0``/``1`` runs serially in-process (the ambient
    tracer capture applies directly); ``workers=N`` fans chunks out to N
    processes.  ``cache`` accepts anything :func:`~repro.harness.cache.as_cache`
    does.  After :meth:`run`, :attr:`computed`, :attr:`cache_hits` and
    :attr:`errors` describe what happened.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache=None,
        chunk_size: Optional[int] = None,
    ):
        self.workers = int(workers) if workers else 0
        self.cache: Optional[ResultCache] = as_cache(cache)
        self.chunk_size = chunk_size
        self.computed = 0
        self.cache_hits = 0
        self.errors = 0

    # ------------------------------------------------------------------
    def run(self, cells: Sequence[Cell]) -> List[CellResult]:
        """Execute every cell; results come back in submission order."""
        cells = list(cells)
        telem = current_run()
        results: List[Optional[CellResult]] = [None] * len(cells)
        # counters accumulate across run() calls; metrics report deltas
        computed_before = self.computed
        cache_hits_before = self.cache_hits
        errors_before = self.errors
        cache_before = (
            (self.cache.hits, self.cache.misses, self.cache.stores)
            if self.cache is not None
            else None
        )
        if telem is not None:
            telem.engine_run_started(len(cells), self.workers)

        pending: List[Tuple[int, Cell]] = []
        keys: Dict[int, str] = {}
        for index, cell in enumerate(cells):
            if self.cache is not None:
                key = self.cache.key(cell.kind, cell.params)
                keys[index] = key
                entry = self.cache.get(key)
                if entry is not None:
                    self.cache_hits += 1
                    results[index] = CellResult(cell, payload=entry["payload"], cached=True)
                    if telem is not None:
                        telem.cell_finished(cell, ok=True, cached=True)
                    continue
            pending.append((index, cell))

        if pending:
            pending_cells = [cell for _i, cell in pending]
            if self.workers > 1:
                raw = self._iter_pool(pending_cells, telem)
            else:
                raw = self._iter_serial(pending_cells, telem)
            for (index, cell), outcome in zip(pending, raw):
                self.computed += 1
                if outcome["ok"]:
                    result = CellResult(cell, payload=outcome["payload"])
                    if self.cache is not None:
                        self.cache.put(keys[index], cell.kind, cell.params, outcome["payload"])
                else:
                    self.errors += 1
                    result = CellResult(cell, error=outcome["error"])
                results[index] = result
                if telem is not None:
                    # the worker (parallel) or the serial loop's span
                    # already logged this cell; just account and repaint
                    telem.cell_finished(
                        cell,
                        ok=outcome["ok"],
                        cached=False,
                        error=outcome["error"],
                        emit=self.workers <= 1,
                    )

        tracer = current_tracer()
        if tracer.enabled:
            # surface engine traffic in --metrics output alongside the
            # cache's own get/put counters (see repro.harness.cache)
            metrics = tracer.metrics
            metrics.counter("engine.cells").inc(len(cells))
            metrics.counter("engine.computed").inc(self.computed - computed_before)
            metrics.counter("engine.cache_hits").inc(self.cache_hits - cache_hits_before)
            if self.errors > errors_before:
                metrics.counter("engine.errors").inc(self.errors - errors_before)
        if telem is not None and cache_before is not None:
            # mirror the ResultCache's own traffic counters (delta for
            # this run) into the snapshot's dedicated cache section —
            # the cache.* counters in the ambient registry stay where
            # they are, and the telemetry metrics section never carries
            # them, so nothing is double-counted
            telem.record_cache_traffic(
                self.cache.hits - cache_before[0],
                self.cache.misses - cache_before[1],
                self.cache.stores - cache_before[2],
            )

        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    # streaming execution
    # ------------------------------------------------------------------

    #: Chunk size :meth:`stream` uses when ``chunk_size`` is unset.
    #: A streaming run does not know its total cell count up front, so a
    #: fixed batch amortises process dispatch while keeping the resident
    #: window small (``window * STREAM_CHUNK`` cells at most).
    STREAM_CHUNK = 32

    def stream(
        self,
        cells: Iterable[Cell],
        window: Optional[int] = None,
    ) -> Iterator[CellResult]:
        """Execute a cell *iterator* with a bounded in-flight window.

        Unlike :meth:`run`, which materialises every cell and result,
        ``stream`` pulls cells lazily, keeps at most ``window`` chunks
        in flight (default ``2 * workers``), and yields each
        :class:`CellResult` as its shard completes — in **submission
        order**, so per-chunk metrics snapshots still merge in shard
        order and the merged telemetry equals a serial run's.  Resident
        state never exceeds the window: a million-cell sweep whose
        consumer aggregates into mergeable sketches runs in flat memory.

        Closing the generator early (``break``, per-job cancellation in
        serve mode) cancels every chunk that has not started and waits
        only for the chunks already running.
        """
        telem = current_run()
        computed_before = self.computed
        cache_hits_before = self.cache_hits
        errors_before = self.errors
        cache_before = (
            (self.cache.hits, self.cache.misses, self.cache.stores)
            if self.cache is not None
            else None
        )
        if telem is not None:
            telem.engine_stream_started(self.workers)
        yielded = 0
        try:
            if self.workers > 1:
                source = self._stream_pool(cells, telem, window)
            else:
                source = self._stream_serial(cells, telem)
            for result in source:
                yielded += 1
                yield result
        finally:
            tracer = current_tracer()
            if tracer.enabled:
                metrics = tracer.metrics
                metrics.counter("engine.cells").inc(yielded)
                metrics.counter("engine.computed").inc(self.computed - computed_before)
                metrics.counter("engine.cache_hits").inc(
                    self.cache_hits - cache_hits_before
                )
                if self.errors > errors_before:
                    metrics.counter("engine.errors").inc(self.errors - errors_before)
            if telem is not None and cache_before is not None:
                telem.record_cache_traffic(
                    self.cache.hits - cache_before[0],
                    self.cache.misses - cache_before[1],
                    self.cache.stores - cache_before[2],
                )

    def _finish_computed(
        self,
        cell: Cell,
        key: Optional[str],
        outcome: dict,
        telem: Optional[RunTelemetry],
        emit: bool,
    ) -> CellResult:
        """Fold one computed outcome into counters/cache/telemetry."""
        self.computed += 1
        if outcome["ok"]:
            result = CellResult(cell, payload=outcome["payload"])
            if self.cache is not None and key is not None:
                self.cache.put(key, cell.kind, cell.params, outcome["payload"])
        else:
            self.errors += 1
            result = CellResult(cell, error=outcome["error"])
        if telem is not None:
            telem.cell_finished(
                cell, ok=outcome["ok"], cached=False, error=outcome["error"], emit=emit
            )
        return result

    def _stream_serial(
        self, cells: Iterable[Cell], telem: Optional[RunTelemetry]
    ) -> Iterator[CellResult]:
        """In-process streaming: one cell resident at a time."""
        for cell in cells:
            if telem is not None:
                telem.cell_admitted()
            key = None
            if self.cache is not None:
                key = self.cache.key(cell.kind, cell.params)
                entry = self.cache.get(key)
                if entry is not None:
                    self.cache_hits += 1
                    if telem is not None:
                        telem.cell_finished(cell, ok=True, cached=True)
                    yield CellResult(cell, payload=entry["payload"], cached=True)
                    continue
            outcome = self._serial_outcome(cell, telem)
            yield self._finish_computed(cell, key, outcome, telem, emit=True)

    def _stream_pool(
        self,
        cells: Iterable[Cell],
        telem: Optional[RunTelemetry],
        window: Optional[int],
    ) -> Iterator[CellResult]:
        """Chunked pool streaming with a bounded in-flight window.

        Cache hits and completed chunks are yielded strictly in
        submission order; admission blocks (on the oldest future) once
        ``window`` chunks are in flight, which is what bounds both the
        pool's backlog and the parent's resident state.
        """
        tracer = current_tracer()
        collect_telemetry = telem is not None
        collect_metrics = tracer.enabled or collect_telemetry
        chunk = self.chunk_size or self.STREAM_CHUNK
        window = int(window) if window else max(2, self.workers * 2)
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")

        #: ("hit", cell, payload) | ("chunk", shard, [(cell, key)...], future)
        out: deque = deque()
        state = {"shard": 0, "in_flight": 0}
        buffer: List[Tuple[Cell, Optional[str]]] = []

        def flush(pool) -> None:
            nonlocal buffer
            if not buffer:
                return
            specs = [(cell.kind, cell.params) for cell, _key in buffer]
            future = pool.submit(
                _run_chunk, (specs, collect_metrics, collect_telemetry, state["shard"])
            )
            out.append(("chunk", state["shard"], buffer, future))
            if telem is not None:
                telem.shards_planned(1)
            state["shard"] += 1
            state["in_flight"] += 1
            buffer = []

        def drain(entry) -> Iterator[CellResult]:
            if entry[0] == "hit":
                _kind, cell, payload = entry
                self.cache_hits += 1
                if telem is not None:
                    telem.cell_finished(cell, ok=True, cached=True)
                yield CellResult(cell, payload=payload, cached=True)
                return
            _kind, shard, batch, future = entry
            chunk_results, snapshot = future.result()
            state["in_flight"] -= 1
            if snapshot is not None:
                ambient = current_tracer()
                if ambient.enabled:
                    ambient.metrics.merge_snapshot(snapshot)
                if telem is not None:
                    telem.merge_metrics(snapshot)
            if telem is not None:
                telem.shard_done(shard, len(chunk_results))
            for (cell, key), outcome in zip(batch, chunk_results):
                yield self._finish_computed(cell, key, outcome, telem, emit=False)

        def ready() -> bool:
            """Is the head of the output queue safe to drain now?

            Hits and completed chunks always are; a pending chunk only
            once the window is full (then we *block* on it — that is
            the flow control).
            """
            if not out:
                return False
            head = out[0]
            if head[0] == "hit" or head[3].done():
                return True
            return state["in_flight"] >= window

        pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            for cell in cells:
                if telem is not None:
                    telem.cell_admitted()
                entry = None
                key = None
                if self.cache is not None:
                    key = self.cache.key(cell.kind, cell.params)
                    entry = self.cache.get(key)
                if entry is not None:
                    # a hit must not overtake buffered misses admitted
                    # before it: seal them into a (possibly short) chunk
                    # first so results stay in strict submission order
                    flush(pool)
                    out.append(("hit", cell, entry["payload"]))
                else:
                    buffer.append((cell, key))
                    if len(buffer) >= chunk:
                        flush(pool)
                while ready():
                    yield from drain(out.popleft())
            flush(pool)
            while out:
                yield from drain(out.popleft())
        finally:
            # an early close (consumer cancelled mid-stream) lands here
            # with futures still queued: cancel what never started, wait
            # only for the chunks already on a worker
            pool.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    def _serial_outcome(self, cell: Cell, telem: Optional[RunTelemetry]) -> dict:
        """Run one cell in-process (the telemetry-aware serial body).

        Without telemetry this is the historical serial path: the cell
        runs directly under the ambient tracer capture.  With telemetry
        the cell runs under a private sketch-recording tracer whose
        snapshot is folded into the telemetry metric set *and* the
        ambient tracer — the same merge semantics as a pool worker, so
        serial and parallel telemetry snapshots are byte-identical
        (trace *events* are not collected in telemetry mode, matching
        the pool).
        """
        spec = (cell.kind, cell.params)
        if telem is None:
            return _run_cell(spec)
        tracer = Tracer(enabled=True)
        tracer.metrics.sketch_observations = True
        recorder = telem.recorder
        if recorder is not None:
            with recorder.span("engine.cell.run", kind=cell.kind):
                with capture(tracer):
                    outcome = _run_cell(spec)
        else:
            with capture(tracer):
                outcome = _run_cell(spec)
        snapshot = tracer.metrics.snapshot()
        telem.merge_metrics(snapshot)
        ambient = current_tracer()
        if ambient.enabled:
            ambient.metrics.merge_snapshot(snapshot)
        return outcome

    def _iter_serial(self, cells: Iterable[Cell], telem: Optional[RunTelemetry]):
        """In-process execution, yielding outcomes one cell at a time."""
        for cell in cells:
            yield self._serial_outcome(cell, telem)

    def _iter_pool(self, cells: List[Cell], telem: Optional[RunTelemetry]):
        """Chunked pool dispatch, yielding outcomes in submission order.

        Per-chunk metrics snapshots merge back in chunk order (both into
        the ambient tracer and the telemetry run), which keeps parallel
        runs metric-identical to serial ones regardless of completion
        order.
        """
        tracer = current_tracer()
        collect_telemetry = telem is not None
        collect_metrics = tracer.enabled or collect_telemetry
        specs = [(cell.kind, cell.params) for cell in cells]
        chunk = self.chunk_size or max(1, math.ceil(len(specs) / (self.workers * 4)))
        batches = [
            (specs[start : start + chunk], collect_metrics, collect_telemetry, shard)
            for shard, start in enumerate(range(0, len(specs), chunk))
        ]
        if telem is not None:
            telem.shards_planned(len(batches))
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            # pool.map preserves batch order, which keeps result assembly
            # and metrics merging deterministic regardless of completion
            # order
            for shard, (chunk_results, snapshot) in enumerate(
                pool.map(_run_chunk, batches)
            ):
                if snapshot is not None:
                    if tracer.enabled:
                        tracer.metrics.merge_snapshot(snapshot)
                    if telem is not None:
                        telem.merge_metrics(snapshot)
                if telem is not None:
                    telem.shard_done(shard, len(chunk_results))
                for outcome in chunk_results:
                    yield outcome


def run_cells(
    cells: Sequence[Cell],
    parallel: Optional[int] = None,
    cache=None,
) -> List[CellResult]:
    """One-shot convenience wrapper around :class:`ExperimentEngine`."""
    return ExperimentEngine(workers=parallel, cache=cache).run(cells)


__all__ = [
    "Cell",
    "CellResult",
    "ExperimentEngine",
    "cell_kind",
    "run_cells",
]
