"""Frozen pre-fast-path implementations for in-run speedup measurement.

``python -m repro bench core`` must report speedups "measured on the same
machine in the same run" — a number that stays meaningful when the
committed baseline file was produced on different hardware.  This module
freezes the *seed* hot paths (single-heap ready queues, per-call label
allocation, O(n) pending scans) as subclasses of the live classes:

* :class:`ReferenceSimulator` — the seed ``schedule``/``step``/``run``
  loop, verbatim;
* :class:`ReferenceEventLoop` — the seed single-heap macrotask queue and
  per-``_arm`` wake-label allocation.

The benchmark suite runs each workload against both the live classes and
these references and reports the ratio.  The CI regression check also
uses the reference throughput as a machine-speed calibration constant.

Do NOT "optimise" this module: its entire value is staying identical to
commit ``c7940fd``'s hot paths.  Behaviour (dispatch order, virtual
timestamps) matches the live classes exactly — only the constant factors
differ — so any workload may be pointed at either implementation.
"""

from __future__ import annotations

import heapq
from typing import Optional

from ..runtime.eventloop import EventLoop
from ..runtime.simulator import (
    ScheduledCall,
    SimulationError,
    Simulator,
    default_max_events,
)
from ..runtime.task import Task


class ReferenceSimulator(Simulator):
    """Seed dispatch core: one heap, no FIFO lane, no bound locals."""

    def schedule(self, at, fn, label=""):
        if at < self._time:
            raise SimulationError(
                f"cannot schedule at {at} before dispatch time {self._time}"
            )
        if self.perturber is not None:
            at = max(self.perturber.perturb(self, at, label), at)
        self._seq += 1
        # sim backref deliberately omitted: the seed kept no live count,
        # and pending_events below re-scans the heap the way the seed did
        call = ScheduledCall(at, self._seq, fn, label)
        heapq.heappush(self._heap, (at, call.seq, call))
        return call

    def step(self) -> bool:
        while self._heap:
            time, _seq, call = heapq.heappop(self._heap)
            if call.cancelled:
                continue
            self._time = time
            self.events_processed += 1
            self._dispatch_label = call.label or "call"
            self._dispatch_ordinal = self.events_processed
            self._recent_labels.append(self._dispatch_label)
            if self.perturber is not None:
                self.perturber.on_dispatch(self._dispatch_label)
            call.fn()
            return True
        return False

    def run(self, until=None, max_events=None) -> None:
        limit = default_max_events() if max_events is None else max_events
        processed = 0
        while self._heap:
            time = self._heap[0][0]
            if until is not None and time > until:
                self._time = until
                return
            if not self.step():
                return
            processed += 1
            if processed > limit:
                raise SimulationError(
                    f"simulation exceeded {limit} events (runaway loop?); "
                    f"last dispatched: {self.recent_dispatch_context()}"
                )
        if until is not None and until > self._time:
            self._time = until

    @property
    def pending_events(self) -> int:
        return sum(1 for _t, _s, c in self._heap if not c.cancelled)


class ReferenceEventLoop(EventLoop):
    """Seed macrotask queue: one heap, wake label rebuilt per arm."""

    def post_task(self, task: Task) -> Task:
        if self.stopped:
            return task
        task.enqueue_time = self.sim.now
        perturber = self.sim.perturber
        if perturber is not None:
            task.ready_time = max(
                perturber.perturb(self.sim, task.ready_time, task.label or task.source.value),
                task.ready_time,
            )
        if task.ready_time < self.sim.dispatch_time:
            task.ready_time = self.sim.dispatch_time
        heapq.heappush(self._queue, (task.ready_time, task.id, task))
        self._arm()
        return task

    def _next_task_time(self) -> Optional[int]:
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        ready = self._queue[0][0]
        return max(ready, self.busy_until, self.sim.dispatch_time)

    def _arm(self) -> None:
        if self.stopped or self._in_task:
            return
        run_at = self._next_task_time()
        if run_at is None:
            return
        if self._wakeup is not None and not self._wakeup.cancelled:
            if self._wakeup.time <= run_at:
                return
            self._wakeup.cancel()
        self._wakeup = self.sim.schedule(run_at, self._wake, label=f"{self.name}:wake")

    def _wake(self) -> None:
        self._wakeup = None
        if self.stopped:
            return
        run_at = self._next_task_time()
        if run_at is None:
            return
        if run_at > self.sim.dispatch_time:
            self._arm()
            return
        _ready, _id, task = heapq.heappop(self._queue)
        if task.cancelled:
            self._arm()
            return
        self._run_task(task)
        self._arm()
