"""Table I harness: run attacks × defenses and compare with the paper."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.tables import render_matrix
from ..attacks import attack_names, create as create_attack
from ..attacks.expected import expected_matrix
from ..defenses import TABLE1_DEFENSES
from ..trace import current_tracer


class TableOneResult:
    """Outcome of a Table I run."""

    def __init__(
        self,
        matrix: Dict[str, Dict[str, bool]],
        details: Dict[str, Dict[str, str]],
        defenses: Sequence[str],
    ):
        #: attack -> defense -> defended?
        self.matrix = matrix
        #: attack -> defense -> result detail string
        self.details = details
        self.defenses = list(defenses)
        #: Metrics snapshot of the run, when captured under an active
        #: tracer (see :mod:`repro.trace`); ``None`` otherwise.
        self.metrics: Optional[dict] = None
        #: attack -> defense -> determinism audit report, populated when
        #: ``run_table1`` is called with ``determinism_seeds``.
        self.determinism: Optional[Dict[str, Dict[str, dict]]] = None

    def determinism_violations(self) -> List[str]:
        """Determinism-promising cells that diverged (empty when clean).

        Returns ``[]`` when the run was not audited.
        """
        if self.determinism is None:
            return []
        from .audit import determinism_violations

        return determinism_violations(self.determinism)

    def agreement(self) -> float:
        """Fraction of cells agreeing with the reconstructed paper matrix."""
        expected = expected_matrix()
        total = 0
        agree = 0
        for attack, row in self.matrix.items():
            for defense, defended in row.items():
                total += 1
                agree += 1 if expected[attack][defense] == defended else 0
        return agree / total if total else 1.0

    def disagreements(self) -> List[str]:
        """Cells differing from the expected matrix."""
        expected = expected_matrix()
        cells = []
        for attack, row in self.matrix.items():
            for defense, defended in row.items():
                if expected[attack][defense] != defended:
                    cells.append(f"{attack} vs {defense}")
        return cells

    def render(self) -> str:
        """Text rendering comparable to the paper's Table I."""
        return render_matrix(self.matrix, self.defenses, expected=expected_matrix())


def run_table1(
    attacks: Optional[Sequence[str]] = None,
    defenses: Optional[Sequence[str]] = None,
    seed: int = 0,
    determinism_seeds: Optional[Sequence[int]] = None,
) -> TableOneResult:
    """Evaluate every (attack, defense) cell.

    The full 22×8 run takes a few seconds of wall time; tests typically
    pass a subset.  Passing ``determinism_seeds`` (≥ 2 seeds) additionally
    audits every cell's dispatch schedule across those seeds and attaches
    the reports as :attr:`TableOneResult.determinism`, letting callers
    assert determinism as a property of the whole matrix run.
    """
    attacks = list(attacks or attack_names())
    defenses = list(defenses or TABLE1_DEFENSES)
    matrix: Dict[str, Dict[str, bool]] = {}
    details: Dict[str, Dict[str, str]] = {}
    for attack_name in attacks:
        matrix[attack_name] = {}
        details[attack_name] = {}
        for defense_name in defenses:
            result = create_attack(attack_name).run(defense_name, seed=seed)
            matrix[attack_name][defense_name] = result.defended
            details[attack_name][defense_name] = result.detail
    outcome = TableOneResult(matrix, details, defenses)
    tracer = current_tracer()
    if tracer.enabled:
        outcome.metrics = tracer.metrics.snapshot()
    if determinism_seeds is not None:
        from .audit import determinism_matrix

        outcome.determinism = determinism_matrix(
            attacks, defenses, seeds=determinism_seeds
        )
    return outcome
