"""Table I harness: run attacks × defenses and compare with the paper."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.tables import render_matrix
from ..attacks import attack_names
from ..attacks.expected import expected_matrix
from ..defenses import TABLE1_DEFENSES
from ..telemetry.spans import span
from ..trace import current_tracer
from .parallel import Cell, ExperimentEngine


class TableOneResult:
    """Outcome of a Table I run."""

    def __init__(
        self,
        matrix: Dict[str, Dict[str, bool]],
        details: Dict[str, Dict[str, str]],
        defenses: Sequence[str],
    ):
        #: attack -> defense -> defended?
        self.matrix = matrix
        #: attack -> defense -> result detail string
        self.details = details
        self.defenses = list(defenses)
        #: Metrics snapshot of the run, when captured under an active
        #: tracer (see :mod:`repro.trace`); ``None`` otherwise.
        self.metrics: Optional[dict] = None
        #: attack -> defense -> determinism audit report, populated when
        #: ``run_table1`` is called with ``determinism_seeds``.
        self.determinism: Optional[Dict[str, Dict[str, dict]]] = None
        #: "attack vs defense: error" strings for cells whose run raised
        #: (the parallel engine captures per-cell failures instead of
        #: aborting the whole matrix); empty on a clean run.
        self.errors: List[str] = []
        #: Engine accounting when the run went through the parallel
        #: engine: cells computed fresh vs. served from the result cache.
        self.computed_cells: int = 0
        self.cached_cells: int = 0

    def determinism_violations(self) -> List[str]:
        """Determinism-promising cells that diverged (empty when clean).

        Returns ``[]`` when the run was not audited.
        """
        if self.determinism is None:
            return []
        from .audit import determinism_violations

        return determinism_violations(self.determinism)

    def agreement(self) -> float:
        """Fraction of cells agreeing with the reconstructed paper matrix.

        Cells outside the paper's Table I (an ablation defense, an
        extension attack) have no expected value and are skipped rather
        than crashing the comparison; only comparable cells count.
        """
        expected = expected_matrix()
        total = 0
        agree = 0
        for attack, row in self.matrix.items():
            expected_row = expected.get(attack)
            if expected_row is None:
                continue
            for defense, defended in row.items():
                if defense not in expected_row:
                    continue
                total += 1
                agree += 1 if expected_row[defense] == defended else 0
        return agree / total if total else 1.0

    def disagreements(self) -> List[str]:
        """Comparable cells differing from the expected matrix."""
        expected = expected_matrix()
        cells = []
        for attack, row in self.matrix.items():
            expected_row = expected.get(attack)
            if expected_row is None:
                continue
            for defense, defended in row.items():
                if defense in expected_row and expected_row[defense] != defended:
                    cells.append(f"{attack} vs {defense}")
        return cells

    def render(self) -> str:
        """Text rendering comparable to the paper's Table I."""
        return render_matrix(self.matrix, self.defenses, expected=expected_matrix())


def run_table1(
    attacks: Optional[Sequence[str]] = None,
    defenses: Optional[Sequence[str]] = None,
    seed: int = 0,
    determinism_seeds: Optional[Sequence[int]] = None,
    parallel: Optional[int] = None,
    cache=None,
) -> TableOneResult:
    """Evaluate every (attack, defense) cell.

    The full 22×8 run takes a few seconds of wall time; tests typically
    pass a subset.  ``parallel=N`` shards the cells over N worker
    processes (every cell is a pure function of ``(attack, defense,
    seed)``, so the result is byte-identical to the serial run); ``cache``
    enables the content-addressed result cache (see
    :mod:`repro.harness.cache`) so warm reruns skip already-computed
    cells.  Passing ``determinism_seeds`` (≥ 2 seeds) additionally audits
    every cell's dispatch schedule across those seeds and attaches the
    reports as :attr:`TableOneResult.determinism`, letting callers assert
    determinism as a property of the whole matrix run.
    """
    attacks = list(attacks or attack_names())
    defenses = list(defenses or TABLE1_DEFENSES)
    cells = [
        Cell("table1", {"attack": attack, "defense": defense, "seed": seed})
        for attack in attacks
        for defense in defenses
    ]
    engine = ExperimentEngine(workers=parallel, cache=cache)
    with span("matrix.run", cells=len(cells), seed=seed):
        results = engine.run(cells)

    matrix: Dict[str, Dict[str, bool]] = {attack: {} for attack in attacks}
    details: Dict[str, Dict[str, str]] = {attack: {} for attack in attacks}
    errors: List[str] = []
    for result in results:
        attack = result.cell.params["attack"]
        defense = result.cell.params["defense"]
        if result.ok:
            matrix[attack][defense] = result.payload["defended"]
            details[attack][defense] = result.payload["detail"]
        else:
            # a poisoned cell reports instead of killing the run; it is
            # counted as undefended so it can never mask a regression
            matrix[attack][defense] = False
            details[attack][defense] = f"error: {result.error}"
            errors.append(f"{attack} vs {defense}: {result.error}")

    outcome = TableOneResult(matrix, details, defenses)
    outcome.errors = errors
    outcome.computed_cells = engine.computed
    outcome.cached_cells = engine.cache_hits
    tracer = current_tracer()
    if tracer.enabled:
        outcome.metrics = tracer.metrics.snapshot()
    if determinism_seeds is not None:
        from .audit import determinism_matrix

        outcome.determinism = determinism_matrix(
            attacks, defenses, seeds=determinism_seeds, parallel=parallel, cache=cache
        )
    return outcome
