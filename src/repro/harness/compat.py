"""Compatibility harness (§V-B).

Three experiments:

* **API-specific test** (§V-B1): run the 20 CodePen-style apps under a
  defense and count observable differences vs the legacy browser.
* **DOM-similarity test** (§V-B2): load Alexa-like sites with and
  without JSKernel, serialise the DOM, and compare cosine similarity;
  sites with dynamic (ad) content fall below the 99% bar even between
  two legacy visits, which is the paper's control.
* **Week-long user test** (§V-B3): a scripted week of daily browsing
  under JSKernel, recording functional failures.  The three launch bugs
  the paper's student hit (worker path handling, Date arithmetic, worker
  location) exist here as regression scenarios that must stay green.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..analysis.stats import cosine_similarity
from ..defenses import make_browser
from ..runtime.rng import hash_seed
from ..workloads.alexa import alexa_population
from ..workloads.codepen import CODEPEN_APPS, apps_with_differences, compat_survey, run_app
from ..workloads.sites import SiteDescription, load_site

SIMILARITY_BAR = 0.99


def _render_dom(config: str, site: SiteDescription, seed: int) -> str:
    browser = make_browser(config, seed=seed, with_bugs=False)
    page = browser.open_page(site.url)
    load_site(browser, site, page=page)
    browser.run_until(lambda: page.loaded)
    # let post-load scripts settle a little
    browser.run(until=browser.sim.dispatch_time + 50_000_000)
    return page.document.serialize()


def dom_similarity_survey(
    site_count: int = 100, seed: int = 0, config: str = "jskernel"
) -> Dict[str, Any]:
    """The §V-B2 experiment.

    Returns per-site similarity for (legacy vs defense) and the control
    (legacy vs legacy, different visits), plus the headline fraction of
    sites above the 99% bar.
    """
    sites = alexa_population(site_count, seed)
    similarities: Dict[str, float] = {}
    control: Dict[str, float] = {}
    for index, site in enumerate(sites):
        s1 = _render_dom("legacy-chrome", site, hash_seed(seed, f"v1:{index}"))
        s2 = _render_dom(config, site, hash_seed(seed, f"v2:{index}"))
        similarities[site.host] = cosine_similarity(s1, s2)
        c1 = _render_dom("legacy-chrome", site, hash_seed(seed, f"c1:{index}"))
        c2 = _render_dom("legacy-chrome", site, hash_seed(seed, f"c2:{index}"))
        control[site.host] = cosine_similarity(c1, c2)
    above = sum(1 for v in similarities.values() if v >= SIMILARITY_BAR)
    below_hosts = [h for h, v in similarities.items() if v < SIMILARITY_BAR]
    # the paper's follow-up: sites below the bar should also differ
    # between two plain visits (dynamic content, not the defense)
    explained = sum(1 for h in below_hosts if control[h] < SIMILARITY_BAR)
    return {
        "similarities": similarities,
        "control": control,
        "fraction_above": above / max(len(sites), 1),
        "below_hosts": below_hosts,
        "below_explained_by_dynamic_content": explained,
    }


def api_compat_counts(seed: int = 0) -> Dict[str, int]:
    """§V-B1 headline: apps (of 20) with observable differences."""
    counts: Dict[str, int] = {}
    for config in ("jskernel", "deterfox", "fuzzyfox"):
        survey = compat_survey(config, baseline="legacy-firefox", seed=seed)
        counts[config] = apps_with_differences(survey)
    return counts


# ----------------------------------------------------------------------
# §V-B3: week-long user test + the three launch-bug regressions
# ----------------------------------------------------------------------

def _regression_worker_relative_path(browser, page) -> bool:
    """Overleaf bug: workers must resolve relative import paths."""
    from ..runtime.network import Resource
    from ..runtime.origin import parse_url

    browser.network.host(
        Resource(
            parse_url(f"{page.base_url.serialize()}assets/compile.js"),
            2_000,
            "text/javascript",
            body=lambda ws_scope: setattr(ws_scope, "compiled", True),
        )
    )
    box: Dict[str, bool] = {}

    def script(scope) -> None:
        def worker_main(ws) -> None:
            ws.importScripts("assets/compile.js")  # relative path
            ws.postMessage("pdf-ready" if getattr(ws, "compiled", False) else "failed")

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: box.__setitem__("result", event.data)

    page.run_script(script)
    browser.run_until(lambda: "result" in box)
    return box["result"] == "pdf-ready"


def _regression_date_weekday(browser, page) -> bool:
    """Google Calendar bug: Date arithmetic must keep weekdays aligned."""
    box: Dict[str, bool] = {}

    def script(scope) -> None:
        day_ms = 86_400_000
        now = scope.Date.now()
        in_a_week = now + 7 * day_ms
        box["result"] = (in_a_week - now) % (7 * day_ms) == 0

    page.run_script(script)
    browser.run_until(lambda: "result" in box)
    return box["result"]


def _regression_worker_location(browser, page) -> bool:
    """Google Maps bug: worker location must be the USER script's URL."""
    box: Dict[str, str] = {}

    def script(scope) -> None:
        def worker_main(ws) -> None:
            ws.postMessage(ws.location)

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: box.__setitem__("location", event.data)

    page.run_script(script)
    browser.run_until(lambda: "location" in box)
    # the bug was the location pointing at the KERNEL worker source
    return "kernel" not in box["location"].lower()


LAUNCH_BUG_REGRESSIONS = {
    "overleaf-worker-relative-path": _regression_worker_relative_path,
    "calendar-date-weekday": _regression_date_weekday,
    "maps-worker-location": _regression_worker_location,
}


def week_long_user_test(days: int = 7, seed: int = 0) -> Dict[str, Any]:
    """A scripted week of browsing under JSKernel.

    Each day runs every CodePen app and the three launch-bug regression
    scenarios; any functional failure is recorded as an issue.
    """
    issues: List[str] = []
    for day in range(days):
        day_seed = hash_seed(seed, f"day:{day}")
        for app_name in CODEPEN_APPS:
            try:
                report = run_app("jskernel", app_name, seed=day_seed)
            except Exception as exc:  # an app crashing is an issue
                issues.append(f"day {day}: {app_name} crashed: {exc}")
                continue
            for key, value in report.items():
                if key.startswith("functional:") and value in (False, None):
                    issues.append(f"day {day}: {app_name} broke {key}")
        for regression_name, regression in LAUNCH_BUG_REGRESSIONS.items():
            browser = make_browser("jskernel", seed=day_seed, with_bugs=False)
            page = browser.open_page("https://webapp.example/")
            try:
                if not regression(browser, page):
                    issues.append(f"day {day}: regression {regression_name}")
            except Exception as exc:
                issues.append(f"day {day}: regression {regression_name} crashed: {exc}")
    return {"days": days, "issues": issues}
