"""Determinism as a harness property.

The matrix harness answers "did the defense stop the attack"; this module
answers the paper's stronger claim — that JSKernel's general policy makes
the dispatch schedule a function of the program alone (§III-D2).  It runs
the determinism auditor (:mod:`repro.analysis.determinism`) over a set of
scenarios and asserts divergence 0 for the defenses that promise it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.determinism import audit_scenario, combine_schedules
from .parallel import Cell, ExperimentEngine

#: Defenses whose scheduling policy promises a seed-independent dispatch
#: schedule (the JSKernel general policy, with or without CVE policies).
DETERMINISTIC_DEFENSES: Tuple[str, ...] = ("jskernel", "jskernel-nocve")

#: Default seed triple for audits (the acceptance bar is ≥ 3 seeds).
AUDIT_SEEDS: Tuple[int, ...] = (0, 1, 2)


def determinism_matrix(
    attacks: Sequence[str],
    defenses: Sequence[str],
    seeds: Sequence[int] = AUDIT_SEEDS,
    parallel: Optional[int] = None,
    cache=None,
) -> Dict[str, Dict[str, dict]]:
    """Audit every (attack, defense) cell; returns the audit reports.

    Every **seed** of every cell is an independent shard: the engine runs
    ``len(attacks) × len(defenses) × len(seeds)`` scenario executions
    (optionally across ``parallel`` workers, optionally cached) and the
    per-seed schedules are recombined here.  A shard that fails surfaces
    as an ``error`` report for its cell — counted as a violation for
    determinism-promising defenses — instead of aborting the audit.
    """
    if len(seeds) < 2:
        raise ValueError("determinism audit needs at least two seeds")
    seeds = [int(seed) for seed in seeds]
    pairs = [(a, d) for a in attacks for d in defenses]
    cells = [
        Cell("audit-schedule", {"attack": attack, "defense": defense, "seed": seed})
        for attack, defense in pairs
        for seed in seeds
    ]
    results = ExperimentEngine(workers=parallel, cache=cache).run(cells)

    reports: Dict[str, Dict[str, dict]] = {attack: {} for attack in attacks}
    cursor = 0
    for attack_name, defense_name in pairs:
        shards = results[cursor : cursor + len(seeds)]
        cursor += len(seeds)
        failed = [shard for shard in shards if not shard.ok]
        if failed:
            reports[attack_name][defense_name] = {
                "scenario": attack_name,
                "defense": defense_name,
                "seeds": list(seeds),
                "error": "; ".join(shard.error for shard in failed),
                # a cell we could not audit can never count as clean
                "divergence": -1,
                "deterministic": False,
                "first_divergence": None,
            }
            continue
        reports[attack_name][defense_name] = combine_schedules(
            attack_name,
            defense_name,
            seeds,
            [shard.payload["schedule"] for shard in shards],
            [shard.payload["outcome"] for shard in shards],
        )
    return reports


def determinism_violations(reports: Dict[str, Dict[str, dict]]) -> List[str]:
    """Cells where a determinism-promising defense diverged.

    Baseline defenses may diverge freely (that is the point of the
    comparison); only :data:`DETERMINISTIC_DEFENSES` are held to 0.
    """
    violations = []
    for attack_name, row in reports.items():
        for defense_name, report in row.items():
            if defense_name in DETERMINISTIC_DEFENSES and report["divergence"] != 0:
                violations.append(
                    f"{attack_name} vs {defense_name}: "
                    f"divergence {report['divergence']}"
                )
    return violations


def assert_deterministic(
    attack_name: str,
    defense_name: str,
    seeds: Sequence[int] = AUDIT_SEEDS,
) -> dict:
    """Audit one cell and raise ``AssertionError`` on divergence."""
    report = audit_scenario(attack_name, defense_name, seeds=tuple(seeds))
    if report["divergence"] != 0:
        raise AssertionError(
            f"{attack_name} vs {defense_name} diverged across seeds "
            f"{list(seeds)}: {report['first_divergence']}"
        )
    return report


def render_determinism(reports: Dict[str, Dict[str, dict]]) -> str:
    """Text table: divergence per cell, with the promise marked."""
    lines = []
    for attack_name, row in reports.items():
        for defense_name, report in row.items():
            promised = defense_name in DETERMINISTIC_DEFENSES
            verdict = "deterministic" if report["deterministic"] else "seed-dependent"
            marker = " [required]" if promised else ""
            lines.append(
                f"{attack_name} vs {defense_name}: divergence "
                f"{report['divergence']} ({verdict}){marker}"
            )
    return "\n".join(lines)
