"""SVG filter operations with content-dependent cost.

The SVG filtering attack (Stone [9], also the DeterFox running example)
exploits the fact that the per-frame cost of filters such as ``feMorphology``
(erode) depends on the *content* of the filtered image — resolution and
pixel values — so frame timing leaks cross-origin pixels.

:class:`SimImage` carries the two secret-bearing parameters: resolution and
a darkness fraction standing in for pixel content.  :func:`filter_cost`
computes the nanosecond paint cost a filter adds to the next frame.
"""

from __future__ import annotations

from ..errors import SimulationError
from .simtime import us

#: Per-pixel base cost of an erode pass, in nanoseconds (calibrated so a
#: 512x512 image costs a few ms, matching Table II's time scale).
ERODE_COST_PER_PIXEL = 14
#: Extra per-pixel cost when the pixel participates in the morphology
#: (content dependence: dark pixels make erode do more work).
ERODE_CONTENT_COST_PER_PIXEL = 22
#: Per-pixel cost of a Gaussian blur pass.
BLUR_COST_PER_PIXEL = 9
#: Fixed setup cost per filter application.
FILTER_SETUP_COST = us(120)


class SimImage:
    """An image with the attributes timing attacks key on."""

    __slots__ = ("width", "height", "dark_fraction", "label", "cross_origin")

    def __init__(
        self,
        width: int,
        height: int,
        dark_fraction: float = 0.5,
        label: str = "image",
        cross_origin: bool = False,
    ):
        if not 0.0 <= dark_fraction <= 1.0:
            raise SimulationError("dark_fraction must be within [0, 1]")
        self.width = width
        self.height = height
        self.dark_fraction = dark_fraction
        self.label = label
        self.cross_origin = cross_origin

    @property
    def pixel_count(self) -> int:
        """Total pixels."""
        return self.width * self.height

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimImage {self.label} {self.width}x{self.height} dark={self.dark_fraction:.2f}>"


def erode_cost(image: SimImage, iterations: int = 1) -> int:
    """Paint cost of ``iterations`` erode passes over ``image``."""
    per_pass = FILTER_SETUP_COST + image.pixel_count * (
        ERODE_COST_PER_PIXEL
        + int(ERODE_CONTENT_COST_PER_PIXEL * image.dark_fraction)
    )
    return per_pass * max(iterations, 1)


def blur_cost(image: SimImage, iterations: int = 1) -> int:
    """Paint cost of ``iterations`` blur passes over ``image``."""
    per_pass = FILTER_SETUP_COST + image.pixel_count * BLUR_COST_PER_PIXEL
    return per_pass * max(iterations, 1)


def filter_cost(name: str, image: SimImage, iterations: int = 1) -> int:
    """Dispatch by SVG filter primitive name."""
    if name in ("erode", "feMorphology"):
        return erode_cost(image, iterations)
    if name in ("blur", "feGaussianBlur"):
        return blur_cost(image, iterations)
    raise SimulationError(f"unknown SVG filter {name!r}")


def subnormal_multiply_cost(values_are_subnormal: bool, count: int) -> int:
    """Cost model for the floating-point timing channel (Andrysco [10]).

    Multiplications on subnormal operands take far longer on real FPUs
    (~25x on the paper-era microarchitectures); pixel-stealing attacks
    detect that difference through frame timing.
    """
    per_op = 120 if values_are_subnormal else 5
    return per_op * count
