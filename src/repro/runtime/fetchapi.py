"""``fetch``, ``Response``, ``AbortController`` / ``AbortSignal``.

The fetch implementation allocates its internal request object on the
simulated native heap.  This is the substrate for CVE-2018-5092 (paper
Listing 2): on a *false worker termination* a buggy browser frees the
native fetch object but forgets to unregister it from the abort signal, so
a later ``abort()`` dereferences a freed pointer.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..errors import ReproError
from .eventloop import EventLoop
from .heap import NativePtr, SimHeap
from .network import NetworkRequest, NetworkResponse, SimNetwork
from .origin import URL, Origin, parse_url
from .promises import SimPromise

#: Cost of calling fetch() (request setup, header serialisation).
FETCH_CALL_COST = 4_000


class AbortError(ReproError):
    """Rejection reason for an aborted fetch."""


class Response:
    """Subset of the Fetch API Response the experiments use."""

    __slots__ = ("url", "status", "body", "from_cache")

    def __init__(self, url: URL, status: int, body: Any, from_cache: bool):
        self.url = url
        self.status = status
        self.body = body
        self.from_cache = from_cache

    @property
    def ok(self) -> bool:
        """True for 2xx statuses."""
        return 200 <= self.status < 300


class NativeFetchRequest:
    """The browser-internal request object (heap-allocated)."""

    def __init__(self, url: URL, network_request: Optional[NetworkRequest]):
        self.url = url
        self.network_request = network_request
        self.settled = False

    def cancel(self) -> None:
        """Abort path: cancel the underlying network transfer."""
        if self.network_request is not None:
            self.network_request.cancel()
        self.settled = True


class AbortSignal:
    """The signal half of AbortController.

    Holds *native pointers* to the requests it can abort — matching the
    browser implementation detail the CVE exploits.
    """

    def __init__(self):
        self.aborted = False
        self._request_ptrs: List[NativePtr] = []
        self._listeners: List[Callable[[], None]] = []

    def register_request(self, ptr: NativePtr) -> None:
        """Wire a fetch's native request to this signal."""
        self._request_ptrs.append(ptr)

    def unregister_request(self, ptr: NativePtr) -> None:
        """Unwire a request (correct browsers do this on free)."""
        if ptr in self._request_ptrs:
            self._request_ptrs.remove(ptr)

    def add_listener(self, listener: Callable[[], None]) -> None:
        """abort-event listener."""
        self._listeners.append(listener)

    @property
    def registered_requests(self) -> List[NativePtr]:
        """Native requests currently wired to this signal."""
        return list(self._request_ptrs)

    def _fire(self, cve: str = "") -> None:
        self.aborted = True
        for ptr in list(self._request_ptrs):
            native = ptr.deref(cve=cve)  # UAF here if a buggy free occurred
            native.cancel()
        for listener in list(self._listeners):
            listener()


class AbortController:
    """``new AbortController()``."""

    def __init__(self):
        self.signal = AbortSignal()

    def abort(self, cve: str = "") -> None:
        """Abort every fetch registered on this controller's signal."""
        self.signal._fire(cve=cve)


class FetchManager:
    """Per-scope fetch implementation.

    Tracks outstanding requests so thread teardown can release them —
    correctly (unregistering from signals) or buggily (leaving dangling
    signal registrations), depending on the browser's bug flags.
    """

    def __init__(
        self,
        loop: EventLoop,
        network: SimNetwork,
        heap: SimHeap,
        base_url: URL,
        origin: Origin,
    ):
        self.loop = loop
        self.network = network
        self.heap = heap
        self.base_url = base_url
        self.origin = origin
        self.outstanding: List[NativePtr] = []
        self._signal_of: dict = {}

    # ------------------------------------------------------------------
    def fetch(self, url: str, options: Optional[dict] = None) -> SimPromise:
        """``fetch(url, {signal})`` → promise of a :class:`Response`."""
        self.loop.sim.consume(FETCH_CALL_COST)
        options = options or {}
        signal: Optional[AbortSignal] = options.get("signal")
        target = parse_url(url, base=self.base_url)
        promise = SimPromise(self.loop, label=f"fetch:{target.path}")

        if signal is not None and signal.aborted:
            promise.reject(AbortError(f"fetch {url} aborted before start"))
            return promise

        native = NativeFetchRequest(target, None)
        ptr = self.heap.alloc(native, "FetchRequest")
        self.outstanding.append(ptr)
        if signal is not None:
            signal.register_request(ptr)
            self._signal_of[ptr.addr] = signal

        def on_complete(response: NetworkResponse) -> None:
            if native.settled:
                return
            native.settled = True
            self._release(ptr, buggy=False)
            if response.ok:
                body = response.resource.body if response.resource else None
                promise.resolve(Response(target, response.status, body, response.from_cache))
            else:
                promise.reject(ReproError(f"fetch {url}: HTTP {response.status}"))

        native.network_request = self.network.request(self.loop, target, on_complete)

        if signal is not None:
            def on_abort() -> None:
                # native.cancel() has already run (the signal dereferenced
                # the request), so key off the promise state instead
                if promise.state == "pending":
                    native.settled = True
                    self._release(ptr, buggy=False)
                    promise.reject(AbortError(f"fetch {url} aborted"))

            signal.add_listener(on_abort)
        return promise

    # ------------------------------------------------------------------
    def release_all(self, buggy: bool) -> None:
        """Free every outstanding native request (thread teardown).

        ``buggy=True`` models CVE-2018-5092: the free happens but the abort
        signal keeps its dangling pointer, so a later abort() is a UAF.
        """
        for ptr in list(self.outstanding):
            self._release(ptr, buggy=buggy)

    def _release(self, ptr: NativePtr, buggy: bool) -> None:
        if ptr not in self.outstanding:
            return
        self.outstanding.remove(ptr)
        signal = self._signal_of.pop(ptr.addr, None)
        if signal is not None and not buggy:
            signal.unregister_request(ptr)
        if not ptr.freed:
            ptr.free()
