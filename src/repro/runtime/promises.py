"""Promises with microtask semantics.

:class:`SimPromise` mirrors the JavaScript ``Promise`` contract the attacks
and the kernel rely on: reactions run as *microtasks* on the owning event
loop, chaining works, and rejections propagate.  It is intentionally small —
no async/await integration, no thenables — because simulated scripts are
written in continuation style.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError
from .eventloop import EventLoop
from .task import Microtask

PENDING = "pending"
FULFILLED = "fulfilled"
REJECTED = "rejected"

#: Cost charged per promise reaction (scheduling + closure call overhead).
REACTION_COST = 300


class SimPromise:
    """A promise bound to an event loop.

    Reactions registered via :meth:`then`/:meth:`catch` run as microtasks on
    the loop, in registration order, after the task that settled the promise.
    """

    __slots__ = ("loop", "label", "state", "value", "_reactions", "_reaction_label")

    def __init__(self, loop: EventLoop, label: str = "promise"):
        self.loop = loop
        self.label = label
        self.state = PENDING
        self.value: Any = None
        self._reactions: List[Tuple[Optional[Callable], Optional[Callable], "SimPromise"]] = []
        # built lazily: promise-heavy workloads flush many reactions and
        # must not pay an f-string per microtask
        self._reaction_label = ""

    # ------------------------------------------------------------------
    # settling
    # ------------------------------------------------------------------
    def resolve(self, value: Any = None) -> None:
        """Fulfil the promise (no-op if already settled)."""
        if self.state != PENDING:
            return
        if isinstance(value, SimPromise):
            value.then(self.resolve, self.reject)
            return
        self.state = FULFILLED
        self.value = value
        self._flush()

    def reject(self, reason: Any = None) -> None:
        """Reject the promise (no-op if already settled)."""
        if self.state != PENDING:
            return
        self.state = REJECTED
        self.value = reason
        self._flush()

    # ------------------------------------------------------------------
    # reactions
    # ------------------------------------------------------------------
    def then(
        self,
        on_fulfilled: Optional[Callable[[Any], Any]] = None,
        on_rejected: Optional[Callable[[Any], Any]] = None,
    ) -> "SimPromise":
        """Register reactions; returns the chained promise."""
        child = SimPromise(self.loop, label=f"{self.label}.then")
        self._reactions.append((on_fulfilled, on_rejected, child))
        if self.state != PENDING:
            self._flush()
        return child

    def catch(self, on_rejected: Callable[[Any], Any]) -> "SimPromise":
        """Register a rejection reaction."""
        return self.then(None, on_rejected)

    def finally_(self, on_settled: Callable[[], Any]) -> "SimPromise":
        """Register a reaction that runs regardless of outcome."""
        return self.then(lambda v: (on_settled(), v)[1], lambda r: (on_settled(), _reraise(r))[1])

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        reactions, self._reactions = self._reactions, []
        if not reactions:
            return
        sim = self.loop.sim
        tracer = sim.tracer
        flow = 0
        if tracer.enabled:
            frame = sim.current_frame
            settler = frame.thread_name if frame is not None else sim.native_context
            if settler != self.loop.name:
                # settled off-thread: record the causal handoff so the
                # happens-before builder can order settle before reactions
                flow = tracer.next_flow_id()
                tracer.instant(
                    sim.trace_pid,
                    settler,
                    "promise.settle",
                    sim.now,
                    cat="promise",
                    args={"promise": self.label, "state": self.state, "flow": flow},
                )
        label = self._reaction_label
        if not label:
            label = self._reaction_label = f"{self.label}:reaction"
        post_microtask = self.loop.post_microtask
        for on_fulfilled, on_rejected, child in reactions:
            if flow:
                fn, args = self._run_traced_reaction, (flow, on_fulfilled, on_rejected, child)
            else:
                fn, args = self._run_reaction, (on_fulfilled, on_rejected, child)
            post_microtask(Microtask(fn, args, cost=REACTION_COST, label=label))

    def _run_traced_reaction(
        self,
        flow: int,
        on_fulfilled: Optional[Callable],
        on_rejected: Optional[Callable],
        child: "SimPromise",
    ) -> None:
        sim = self.loop.sim
        tracer = sim.tracer
        if tracer.enabled:
            tracer.instant(
                sim.trace_pid,
                self.loop.name,
                "promise.reaction",
                sim.now,
                cat="promise",
                args={"promise": self.label, "flow": flow},
            )
        self._run_reaction(on_fulfilled, on_rejected, child)

    def _run_reaction(
        self,
        on_fulfilled: Optional[Callable],
        on_rejected: Optional[Callable],
        child: "SimPromise",
    ) -> None:
        if self.state == FULFILLED:
            handler = on_fulfilled
            passthrough = child.resolve
        elif self.state == REJECTED:
            handler = on_rejected
            passthrough = child.reject
        else:  # pragma: no cover - _flush only fires once settled
            raise SimulationError("reaction ran on a pending promise")
        if handler is None:
            passthrough(self.value)
            return
        try:
            result = handler(self.value)
        except Exception as exc:  # JS semantics: thrown -> rejected child
            child.reject(exc)
            return
        child.resolve(result)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def resolved(cls, loop: EventLoop, value: Any = None) -> "SimPromise":
        """A promise already fulfilled with ``value``."""
        promise = cls(loop)
        promise.resolve(value)
        return promise

    @classmethod
    def rejected_with(cls, loop: EventLoop, reason: Any) -> "SimPromise":
        """A promise already rejected with ``reason``."""
        promise = cls(loop)
        promise.reject(reason)
        return promise

    @classmethod
    def all(cls, loop: EventLoop, promises: List["SimPromise"]) -> "SimPromise":
        """Fulfil with the list of values once every input fulfils."""
        result = cls(loop, label="promise.all")
        values: List[Any] = [None] * len(promises)
        remaining = [len(promises)]
        if not promises:
            result.resolve([])
            return result

        def make_handler(index: int):
            def handler(value: Any) -> None:
                values[index] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    result.resolve(list(values))

            return handler

        for i, promise in enumerate(promises):
            promise.then(make_handler(i), result.reject)
        return result


def _reraise(reason: Any) -> None:
    if isinstance(reason, BaseException):
        raise reason
    raise SimulationError(f"promise rejected: {reason!r}")
