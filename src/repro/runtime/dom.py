"""A small Document Object Model.

Implements exactly the DOM surface the paper's attacks and compatibility
experiments need:

* a tree of :class:`Element` nodes with attributes, styles and children;
* subresource loading (``<script src>``, ``<img src>``) that fires
  ``onload`` / ``onerror`` after network + parse/decode time — the channel
  the van Goethem script-parsing and image-decoding attacks measure;
* ``:visited`` link state consulted during style recalculation — the
  channel history sniffing measures;
* dirty-tracking feeding the renderer's per-frame style/layout/paint cost;
* deterministic serialisation for the DOM-cosine-similarity compatibility
  test (paper §V-B2).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from ..errors import SimulationError
from ..trace import state_access

#: Cost of one createElement call.
CREATE_ELEMENT_COST = 600
#: Cost of one appendChild call (tree mutation, invalidation).
APPEND_CHILD_COST = 900
#: Cost of one attribute read/write.
ATTRIBUTE_ACCESS_COST = 150

_node_ids = itertools.count(1)


class Element:
    """One DOM element."""

    def __init__(self, document: "Document", tag: str):
        self.node_id = next(_node_ids)
        # node_id is process-global (fine for repr, unusable in traces);
        # trace_id restarts per run so captures stay byte-identical
        self.trace_id = document.sim.next_object_seq("dom")
        self.document = document
        self.tag = tag.lower()
        self.attributes: Dict[str, str] = {}
        self.style: Dict[str, str] = {}
        self.children: List["Element"] = []
        self.parent: Optional["Element"] = None
        self.text = ""
        self.onload: Optional[Callable[..., None]] = None
        self.onerror: Optional[Callable[..., None]] = None
        #: Set on <a>/<link> elements by style recalc (history sniffing).
        self.matched_visited = False
        #: Arbitrary payload for simulated media/image elements.
        self.payload: Any = None
        #: Pending paint effects (e.g. SVG filters), consumed per frame.
        self.pending_paint_cost = 0

    @property
    def trace_obj(self) -> str:
        """Run-deterministic object identity for state-access events."""
        return f"dom:{self.tag}#{self.trace_id}"

    def _trace_mutation(self, access: str) -> None:
        state_access(self.document.sim, self.trace_obj, "write", "dom", access=access)

    # ------------------------------------------------------------------
    # attributes / tree
    # ------------------------------------------------------------------
    def set_attribute(self, name: str, value: str) -> None:
        """``el.setAttribute(name, value)``; ``src`` starts a load."""
        self.document.sim.consume(ATTRIBUTE_ACCESS_COST)
        self._trace_mutation("set_attribute")
        self.attributes[name] = value
        self.document.mark_dirty()
        if name == "src" and self.connected:
            self.document.begin_resource_load(self)

    def get_attribute(self, name: str) -> Optional[str]:
        """``el.getAttribute(name)``."""
        self.document.sim.consume(ATTRIBUTE_ACCESS_COST)
        return self.attributes.get(name)

    def set_style(self, prop: str, value: str) -> None:
        """``el.style.prop = value``."""
        self.document.sim.consume(ATTRIBUTE_ACCESS_COST)
        self._trace_mutation("set_style")
        self.style[prop] = value
        self.document.mark_dirty()

    def append_child(self, child: "Element") -> "Element":
        """``el.appendChild(child)``."""
        if child.parent is not None:
            child.parent.children.remove(child)
        self.document.sim.consume(APPEND_CHILD_COST)
        self._trace_mutation("append_child")
        child.parent = self
        self.children.append(child)
        self.document.mark_dirty()
        if child.connected and "src" in child.attributes:
            self.document.begin_resource_load(child)
        return child

    def remove_child(self, child: "Element") -> "Element":
        """``el.removeChild(child)``."""
        if child not in self.children:
            raise SimulationError("removeChild: not a child")
        self.document.sim.consume(APPEND_CHILD_COST)
        self._trace_mutation("remove_child")
        self.children.remove(child)
        child.parent = None
        self.document.mark_dirty()
        return child

    @property
    def connected(self) -> bool:
        """True when the element is attached under the document root."""
        node: Optional[Element] = self
        while node is not None:
            if node is self.document.document_element:
                return True
            node = node.parent
        return False

    # ------------------------------------------------------------------
    # traversal / serialisation
    # ------------------------------------------------------------------
    def descendants(self):
        """Depth-first iterator over the subtree (excluding self)."""
        for child in self.children:
            yield child
            yield from child.descendants()

    def serialize(self) -> str:
        """Deterministic HTML-ish serialisation (compat similarity test)."""
        attrs = "".join(
            f' {name}="{value}"' for name, value in sorted(self.attributes.items())
        )
        inner = self.text + "".join(child.serialize() for child in self.children)
        return f"<{self.tag}{attrs}>{inner}</{self.tag}>"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Element <{self.tag}> #{self.node_id} children={len(self.children)}>"


class Document:
    """The per-page document.

    The page wires ``resource_loader`` (called with an element whose ``src``
    must be fetched) and the renderer observes :attr:`dirty`.
    """

    def __init__(self, sim):
        self.sim = sim
        self.document_element = Element.__new__(Element)
        # manual init to avoid begin_resource_load on the root
        self.document_element.node_id = next(_node_ids)
        self.document_element.trace_id = sim.next_object_seq("dom")
        self.document_element.document = self
        self.document_element.tag = "html"
        self.document_element.attributes = {}
        self.document_element.style = {}
        self.document_element.children = []
        self.document_element.parent = None
        self.document_element.text = ""
        self.document_element.onload = None
        self.document_element.onerror = None
        self.document_element.matched_visited = False
        self.document_element.payload = None
        self.document_element.pending_paint_cost = 0
        self.body = self.create_element("body")
        self.document_element.children.append(self.body)
        self.body.parent = self.document_element
        self.dirty = True
        self.resource_loader: Optional[Callable[[Element], None]] = None
        #: onload handler for the document itself (page load event).
        self.onload: Optional[Callable[[], None]] = None
        self.load_fired = False

    # ------------------------------------------------------------------
    def create_element(self, tag: str) -> Element:
        """``document.createElement(tag)``."""
        self.sim.consume(CREATE_ELEMENT_COST)
        return Element(self, tag)

    def get_elements_by_tag(self, tag: str) -> List[Element]:
        """All connected elements with the given tag."""
        tag = tag.lower()
        return [el for el in self.document_element.descendants() if el.tag == tag]

    def mark_dirty(self) -> None:
        """Invalidate style/layout (renderer picks this up next frame)."""
        self.dirty = True

    def begin_resource_load(self, element: Element) -> None:
        """Kick off the subresource load for an element with a ``src``."""
        if self.resource_loader is not None:
            self.resource_loader(element)

    # ------------------------------------------------------------------
    def node_count(self) -> int:
        """Number of connected elements (root included)."""
        return 1 + sum(1 for _ in self.document_element.descendants())

    def serialize(self) -> str:
        """Serialise the whole tree."""
        return self.document_element.serialize()
