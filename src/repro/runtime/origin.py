"""Web origins and the same-origin policy.

Several Table I CVEs are same-origin-policy bypasses or cross-origin
information leaks, so the runtime needs a real (if small) origin model:
scheme + host + port, URL resolution, and the SOP check that the network
stack and XHR consult.
"""

from __future__ import annotations

from typing import Optional


class Origin:
    """An origin: scheme://host:port."""

    __slots__ = ("scheme", "host", "port")

    def __init__(self, scheme: str, host: str, port: Optional[int] = None):
        self.scheme = scheme
        self.host = host
        self.port = port if port is not None else default_port(scheme)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Origin)
            and self.scheme == other.scheme
            and self.host == other.host
            and self.port == other.port
        )

    def __hash__(self) -> int:
        return hash((self.scheme, self.host, self.port))

    def __repr__(self) -> str:
        return f"Origin({self.serialize()!r})"

    def serialize(self) -> str:
        """Serialise as ``scheme://host[:port]`` (default ports omitted)."""
        if self.port == default_port(self.scheme):
            return f"{self.scheme}://{self.host}"
        return f"{self.scheme}://{self.host}:{self.port}"


def default_port(scheme: str) -> int:
    """Default port for a scheme (https→443, http→80, else 0)."""
    return {"https": 443, "http": 80}.get(scheme, 0)


def parse_url(url: str, base: Optional["URL"] = None) -> "URL":
    """Parse an absolute or relative URL (subset sufficient for the sim)."""
    if "://" in url:
        scheme, rest = url.split("://", 1)
        if "/" in rest:
            netloc, path = rest.split("/", 1)
            path = "/" + path
        else:
            netloc, path = rest, "/"
        if ":" in netloc:
            host, port_s = netloc.split(":", 1)
            port = int(port_s)
        else:
            host, port = netloc, None
        return URL(Origin(scheme, host, port), path)
    if base is None:
        raise ValueError(f"relative URL {url!r} without a base")
    if url.startswith("/"):
        return URL(base.origin, url)
    # resolve relative to the base path's directory
    directory = base.path.rsplit("/", 1)[0]
    return URL(base.origin, f"{directory}/{url}")


class URL:
    """A parsed URL: origin + path."""

    __slots__ = ("origin", "path")

    def __init__(self, origin: Origin, path: str = "/"):
        self.origin = origin
        self.path = path

    def __eq__(self, other: object) -> bool:
        return isinstance(other, URL) and self.origin == other.origin and self.path == other.path

    def __hash__(self) -> int:
        return hash((self.origin, self.path))

    def __repr__(self) -> str:
        return f"URL({self.serialize()!r})"

    def serialize(self) -> str:
        """Full URL string."""
        return f"{self.origin.serialize()}{self.path}"


def same_origin(a: Origin, b: Origin) -> bool:
    """The same-origin policy check."""
    return a == b
