"""``postMessage`` channels between threads.

A :class:`MessageEndpoint` pair connects two event loops (main ↔ worker).
Posting serialises the payload (structured-clone cost proportional to
payload size), transfers transferables (neutering them on the sending
side — the behaviour CVE-2014-1488 abuses), and enqueues a MESSAGE task on
the receiving loop after the channel latency.

JSKernel builds its kernel/user *overlay* on top of exactly this channel
(paper §III-E2): there is only one postMessage pipe between two threads, so
the kernel wraps payloads in an envelope with a type field.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..errors import SimulationError
from .eventloop import EventLoop
from .task import TaskSource

#: Base cost of a postMessage call (API dispatch).
POST_MESSAGE_COST = 1_000
#: Serialisation cost per payload size unit (structured clone).
CLONE_COST_PER_UNIT = 2


class MessageEvent:
    """The event object delivered to ``onmessage`` handlers."""

    __slots__ = ("data", "origin", "source", "timestamp", "transferred", "trace_flow")

    def __init__(
        self,
        data: Any,
        origin: str = "",
        source: Any = None,
        timestamp: int = 0,
        transferred: Optional[List[Any]] = None,
    ):
        self.data = data
        self.origin = origin
        self.source = source
        self.timestamp = timestamp
        #: Receiver-side views of transferred objects (share the backing
        #: store of the sender's now-detached references).
        self.transferred = transferred or []
        #: Flow id pairing the sender's ``postMessage`` instant with the
        #: receiver's ``message.receive`` (0 when untraced).
        self.trace_flow = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MessageEvent data={self.data!r} origin={self.origin!r}>"


def payload_size(data: Any) -> int:
    """Rough structured-clone size of a payload, in abstract units."""
    if data is None or isinstance(data, bool):
        return 1
    if isinstance(data, (int, float)):
        return 8
    if isinstance(data, str):
        return len(data)
    if isinstance(data, (list, tuple)):
        return 8 + sum(payload_size(item) for item in data)
    if isinstance(data, dict):
        return 8 + sum(payload_size(k) + payload_size(v) for k, v in data.items())
    size = getattr(data, "byte_length", None)
    if size is not None:
        return int(size)
    return 16


class MessageEndpoint:
    """One side of a bidirectional message channel."""

    def __init__(self, name: str, loop: EventLoop, latency_ns: int):
        self.name = name
        self.loop = loop
        self.latency_ns = latency_ns
        self.peer: Optional["MessageEndpoint"] = None
        #: Handlers invoked, in order, for each delivered MessageEvent.
        self.handlers: List[Callable[[MessageEvent], None]] = []
        self.closed = False
        self.messages_delivered = 0
        # per-channel constant: posting must not build a label per message
        self._post_label = ""

    # ------------------------------------------------------------------
    def connect(self, peer: "MessageEndpoint") -> None:
        """Pair this endpoint with ``peer`` (both directions)."""
        self.peer = peer
        peer.peer = self
        self._post_label = f"message->{peer.name}"
        peer._post_label = f"message->{self.name}"

    def post(self, data: Any, transfer: Optional[List[Any]] = None, origin: str = "") -> None:
        """Send ``data`` to the peer endpoint.

        Transferables in ``transfer`` are detached on this side before the
        message is delivered, matching structured-clone transfer semantics.
        """
        if self.peer is None:
            raise SimulationError(f"endpoint {self.name!r} is not connected")
        sim = self.loop.sim
        size = payload_size(data)
        sim.consume(POST_MESSAGE_COST + CLONE_COST_PER_UNIT * size)
        tracer = sim.tracer
        flow = 0
        if tracer.enabled:
            flow = tracer.next_flow_id()
            args = {"to": self.peer.name, "size": size, "flow": flow}
            frame = sim.current_frame
            if frame is not None and frame.thread_name != self.loop.name:
                args["ctx"] = frame.thread_name
            tracer.instant(
                sim.trace_pid,
                self.loop.name,
                "postMessage",
                sim.now,
                cat="message",
                args=args,
            )
            tracer.metrics.counter("messages.posted").inc()
            tracer.metrics.counter("messages.clone_units").inc(size)
        views: List[Any] = []
        if transfer:
            for item in transfer:
                detach = getattr(item, "detach", None)
                if detach is None:
                    raise SimulationError(f"{item!r} is not transferable")
                make_view = getattr(item, "transferred_view", None)
                if make_view is not None:
                    views.append(make_view())
                detach()
        if self.closed or self.peer.closed:
            return  # messages to closed endpoints vanish
        event = MessageEvent(
            data, origin=origin, source=self, timestamp=sim.now, transferred=views
        )
        event.trace_flow = flow
        peer = self.peer
        peer.loop.post(
            peer.deliver,
            event,
            delay=self.latency_ns,
            source=TaskSource.MESSAGE,
            label=self._post_label,
        )

    def deliver(self, event: MessageEvent) -> None:
        """Dispatch a delivered message to all registered handlers."""
        if self.closed:
            return
        self.messages_delivered += 1
        sim = self.loop.sim
        tracer = sim.tracer
        if tracer.enabled:
            tracer.instant(
                sim.trace_pid,
                self.loop.name,
                "message.receive",
                sim.now,
                cat="message",
                args={"from": event.source.name if event.source else "", "flow": event.trace_flow},
            )
            tracer.metrics.counter("messages.delivered").inc()
        for handler in list(self.handlers):
            handler(event)

    def add_handler(self, handler: Callable[[MessageEvent], None]) -> None:
        """Register an ``onmessage``-style handler."""
        self.handlers.append(handler)

    def remove_handler(self, handler: Callable[[MessageEvent], None]) -> None:
        """Unregister a handler (no-op if absent)."""
        if handler in self.handlers:
            self.handlers.remove(handler)

    def clear_handlers(self) -> None:
        """Drop all handlers (worker termination)."""
        self.handlers.clear()

    def close(self) -> None:
        """Close the endpoint: undelivered and future messages are dropped."""
        self.closed = True
        self.handlers.clear()


def make_channel(
    name: str, loop_a: EventLoop, loop_b: EventLoop, latency_ns: int
) -> "tuple[MessageEndpoint, MessageEndpoint]":
    """Create a connected endpoint pair between two loops."""
    side_a = MessageEndpoint(f"{name}:a", loop_a, latency_ns)
    side_b = MessageEndpoint(f"{name}:b", loop_b, latency_ns)
    side_a.connect(side_b)
    return side_a, side_b
