"""Simulated browser runtime (the substrate JSKernel runs on).

Public surface re-exported here: the browser facade, profiles, and the
building blocks experiments touch directly.
"""

from .browser import Browser
from .clock import (
    ClockPolicy,
    FuzzyClockPolicy,
    NoisyQuantizedClockPolicy,
    PerformanceClock,
    QuantizedClockPolicy,
)
from .dom import Document, Element
from .eventloop import EventLoop
from .heap import SimHeap
from .messaging import MessageEvent
from .network import Resource, SimNetwork
from .origin import URL, Origin, parse_url, same_origin
from .page import Page
from .profiles import ALL_BUGS, BrowserProfile, by_name, chrome, edge, firefox, vulnerable
from .promises import SimPromise
from .rng import RngService
from .simtime import FRAME_INTERVAL, MS, SECOND, US, ms, seconds, to_ms, us
from .simulator import Simulator
from .svgfilter import SimImage
from .task import Task, TaskSource
from .worker import WorkerAgent, WorkerHandle

__all__ = [
    "ALL_BUGS",
    "Browser",
    "BrowserProfile",
    "ClockPolicy",
    "Document",
    "Element",
    "EventLoop",
    "FRAME_INTERVAL",
    "FuzzyClockPolicy",
    "MS",
    "MessageEvent",
    "NoisyQuantizedClockPolicy",
    "Origin",
    "Page",
    "PerformanceClock",
    "QuantizedClockPolicy",
    "Resource",
    "RngService",
    "SECOND",
    "SimHeap",
    "SimImage",
    "SimNetwork",
    "SimPromise",
    "Simulator",
    "Task",
    "TaskSource",
    "URL",
    "US",
    "WorkerAgent",
    "WorkerHandle",
    "by_name",
    "chrome",
    "edge",
    "firefox",
    "ms",
    "parse_url",
    "same_origin",
    "seconds",
    "to_ms",
    "us",
    "vulnerable",
]
