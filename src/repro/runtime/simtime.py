"""Virtual-time units and helpers.

All simulated time is kept as **integer nanoseconds** so that the simulation
is exactly deterministic (no floating-point drift) and so that clock
resolution/quantisation policies are exact integer arithmetic.

User-visible JavaScript clocks (``performance.now``, ``Date.now``) report
milliseconds; conversion helpers live here so the two unit systems never mix
silently.
"""

from __future__ import annotations

#: One microsecond in simulation ticks.
US = 1_000
#: One millisecond in simulation ticks.
MS = 1_000_000
#: One second in simulation ticks.
SECOND = 1_000_000_000

#: Default vsync frame interval (60 Hz), matching desktop browsers.
FRAME_INTERVAL = 16_666_667


def ms(value: float) -> int:
    """Convert milliseconds (possibly fractional) to integer nanoseconds."""
    return int(round(value * MS))


def us(value: float) -> int:
    """Convert microseconds (possibly fractional) to integer nanoseconds."""
    return int(round(value * US))


def seconds(value: float) -> int:
    """Convert seconds (possibly fractional) to integer nanoseconds."""
    return int(round(value * SECOND))


def to_ms(ns: int) -> float:
    """Convert integer nanoseconds to float milliseconds (for reporting)."""
    return ns / MS


def quantize(ns: int, resolution_ns: int) -> int:
    """Floor ``ns`` to a multiple of ``resolution_ns``.

    This is the primitive behind every clock-resolution defense: Tor
    Browser's 100 ms clamp, post-Spectre 5 µs clamps, and Fuzzyfox's fuzzy
    grid all floor the true time onto a grid.
    """
    if resolution_ns <= 1:
        return ns
    return (ns // resolution_ns) * resolution_ns


def format_ns(ns: int) -> str:
    """Human-readable rendering of a duration, e.g. ``'16.667ms'``."""
    if ns >= SECOND:
        return f"{ns / SECOND:.3f}s"
    if ns >= MS:
        return f"{ns / MS:.3f}ms"
    if ns >= US:
        return f"{ns / US:.3f}us"
    return f"{ns}ns"
