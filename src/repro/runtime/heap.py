"""Simulated native heap for modelling memory-safety CVEs.

The worker-lifecycle CVEs in Table I are low-level bugs (use-after-free,
null dereference) in the browser's C++ — not in JavaScript.  To let attack
scripts *trigger* them and defenses *prevent* them, the runtime allocates
its internal structures (fetch requests, transferable buffers, worker
wrappers) on this heap.  Buggy code paths, enabled by ``BrowserProfile``
bug flags, free objects at the wrong time; a later dereference raises
:class:`~repro.errors.UseAfterFreeError`, which stands in for the real
browser's exploitable crash.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from ..errors import DoubleFreeError, NullDerefError, UseAfterFreeError
from ..trace import state_access


class NativePtr:
    """A pointer into the simulated heap.

    Dereferencing a freed pointer raises :class:`UseAfterFreeError`;
    dereferencing :data:`NULL` raises :class:`NullDerefError`.
    """

    __slots__ = ("heap", "addr", "kind")

    def __init__(self, heap: Optional["SimHeap"], addr: int, kind: str):
        self.heap = heap
        self.addr = addr
        self.kind = kind

    @property
    def is_null(self) -> bool:
        """True for the null pointer."""
        return self.heap is None

    def deref(self, cve: str = "") -> Any:
        """Return the pointed-to object, enforcing memory safety."""
        if self.heap is None:
            raise NullDerefError(f"null dereference of {self.kind} pointer", cve=cve)
        return self.heap.deref(self, cve=cve)

    def free(self, cve: str = "") -> None:
        """Free the allocation behind this pointer."""
        if self.heap is None:
            raise NullDerefError(f"free of null {self.kind} pointer", cve=cve)
        self.heap.free(self, cve=cve)

    @property
    def freed(self) -> bool:
        """True once the allocation has been freed."""
        if self.heap is None:
            return False
        return self.heap.is_freed(self.addr)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.heap is None:
            return f"<NativePtr NULL {self.kind}>"
        state = "freed" if self.freed else "live"
        return f"<NativePtr 0x{self.addr:x} {self.kind} ({state})>"


#: The null native pointer (shared sentinel).
NULL = NativePtr(None, 0, "null")


class AllocationRecord:
    """Bookkeeping for one heap allocation (used by tests and analysis)."""

    __slots__ = ("addr", "kind", "alloc_time", "free_time")

    def __init__(self, addr: int, kind: str, alloc_time: int):
        self.addr = addr
        self.kind = kind
        self.alloc_time = alloc_time
        self.free_time: Optional[int] = None


class SimHeap:
    """The browser's internal allocator.

    ``strict`` mode (the default) raises on UAF/double free, modelling an
    exploitable crash.  Experiments that want to *observe* rather than
    crash can read :attr:`violations`.
    """

    def __init__(self, time_fn=None, sim=None):
        self._objects: Dict[int, Any] = {}
        self._freed: Dict[int, AllocationRecord] = {}
        self._records: Dict[int, AllocationRecord] = {}
        self._addrs = itertools.count(0x1000, 0x10)
        self._time_fn = time_fn or (lambda: 0)
        self.sim = sim
        self.violations: List[str] = []

    def _trace_access(self, ptr: NativePtr, op: str, access: str) -> None:
        # emitted *before* the safety check so a crashing run still shows
        # the racing access pair in its trace
        if self.sim is not None:
            state_access(
                self.sim,
                f"heap:0x{ptr.addr:x}",
                op,
                "heap",
                access=access,
                detail={"ptr_kind": ptr.kind},
            )

    # ------------------------------------------------------------------
    def alloc(self, obj: Any, kind: str) -> NativePtr:
        """Allocate ``obj`` and return a live pointer."""
        addr = next(self._addrs)
        self._objects[addr] = obj
        self._records[addr] = AllocationRecord(addr, kind, self._time_fn())
        return NativePtr(self, addr, kind)

    def free(self, ptr: NativePtr, cve: str = "") -> None:
        """Free the allocation at ``ptr``; double free raises."""
        self._trace_access(ptr, "write", "free")
        if ptr.addr in self._freed:
            self.violations.append(f"double-free:{ptr.kind}")
            raise DoubleFreeError(f"double free of {ptr.kind} at 0x{ptr.addr:x}", cve=cve)
        if ptr.addr not in self._objects:
            raise DoubleFreeError(f"free of unallocated 0x{ptr.addr:x}", cve=cve)
        record = self._records[ptr.addr]
        record.free_time = self._time_fn()
        self._freed[ptr.addr] = record
        del self._objects[ptr.addr]

    def deref(self, ptr: NativePtr, cve: str = "") -> Any:
        """Read through ``ptr``; UAF raises."""
        self._trace_access(ptr, "read", "deref")
        if ptr.addr in self._freed:
            self.violations.append(f"use-after-free:{ptr.kind}")
            raise UseAfterFreeError(
                f"use-after-free of {ptr.kind} at 0x{ptr.addr:x}", cve=cve
            )
        if ptr.addr not in self._objects:
            raise UseAfterFreeError(f"wild pointer 0x{ptr.addr:x}", cve=cve)
        return self._objects[ptr.addr]

    def is_freed(self, addr: int) -> bool:
        """True when ``addr`` has been freed."""
        return addr in self._freed

    @property
    def live_count(self) -> int:
        """Number of live allocations."""
        return len(self._objects)

    @property
    def freed_count(self) -> int:
        """Number of freed allocations."""
        return len(self._freed)
