"""User-visible clocks and clock-degradation policies.

``performance.now()`` and ``Date.now()`` read the simulator's virtual time
through a :class:`ClockPolicy`.  Policies are where three of the evaluated
defenses live:

* legacy browsers quantise to their shipped resolution (5 µs in Chrome,
  1 ms in Firefox/Edge at the paper's time);
* Tor Browser quantises to 100 ms;
* Fuzzyfox reports a *fuzzy* clock whose update instants are randomised, so
  an attacker cannot learn anything from tick edges;
* Chrome Zero quantises coarsely and adds noise.

JSKernel does not use a policy at all — it replaces the clock object with a
kernel logical clock (see :mod:`repro.kernel.kclock`).
"""

from __future__ import annotations

import random
from typing import Optional

from .simtime import MS, quantize, to_ms
from .simulator import Simulator

#: CPU cost of one clock API call (closure dispatch + time read).
CLOCK_CALL_COST = 80


class ClockPolicy:
    """Transforms true virtual nanoseconds into reported nanoseconds."""

    name = "exact"

    def report(self, true_ns: int) -> int:
        """Return the value (in ns) the page is allowed to observe."""
        return true_ns


class QuantizedClockPolicy(ClockPolicy):
    """Floor the clock onto a fixed grid (legacy/Tor behaviour).

    The grid edges are exact, which is precisely why clock-edge attacks
    (paper §IV-A4) still work against coarse deterministic grids: an
    attacker counts cheap operations between two edges.
    """

    def __init__(self, resolution_ns: int, name: str = "quantized"):
        self.resolution_ns = resolution_ns
        self.name = name

    def report(self, true_ns: int) -> int:
        return quantize(true_ns, self.resolution_ns)


class FuzzyClockPolicy(ClockPolicy):
    """Fuzzyfox-style clock: edges occur at memoryless random instants.

    The reported value is frozen between *fuzzy update events* and jumps
    by one resolution step at each of them.  Two properties matter:

    * update instants form a Poisson process (exponential gaps), so the
      time from the end of a secret operation to the next visible edge is
      memoryless — edge *phase* carries zero information, even averaged
      over many runs (this is what defeats the clock-edge attack);
    * the reported value advances by the resolution per update rather
      than re-quantising true time — re-quantising would anchor the
      visible edges back onto the exact grid and resurrect the phase
      channel.  The price is a random-walk error against true time,
      which is precisely the "fuzziness" Fuzzyfox accepts.
    """

    name = "fuzzy"

    def __init__(self, resolution_ns: int, rng: random.Random):
        self.resolution_ns = resolution_ns
        self.rng = rng
        self._last_reported = 0
        self._next_update = 0

    def report(self, true_ns: int) -> int:
        while true_ns >= self._next_update:
            if self._next_update > 0:
                self._last_reported += self.resolution_ns
            step = int(self.rng.expovariate(1.0 / self.resolution_ns))
            self._next_update += max(step, 1)
        return self._last_reported


class DeterministicClockPolicy(ClockPolicy):
    """Deterministic Browser (Cao et al.) clock: time *is* the read count.

    The reported value ignores true virtual time entirely and advances by
    a fixed quantum per observation, so the clock of each scope (= each
    thread, since every scope gets a fresh policy instance from the
    factory) is a pure function of how often that scope has looked at it.
    Two runs that execute the same reads see the same readings, whatever
    the hardware did in between — the defining property of the
    deterministic-clock defense, and the reason no timing difference
    survives it.  The cost: reported time is unrelated to real duration,
    which is exactly the compatibility trade the DetBrowser paper accepts.
    """

    name = "deterministic"

    def __init__(self, quantum_ns: int = 10_000):
        self.quantum_ns = quantum_ns
        self.reads = 0

    def report(self, true_ns: int) -> int:
        self.reads += 1
        return self.reads * self.quantum_ns


class NoisyQuantizedClockPolicy(ClockPolicy):
    """Chrome-Zero-style clock: coarse grid plus additive random noise."""

    name = "noisy"

    def __init__(self, resolution_ns: int, noise_ns: int, rng: random.Random):
        self.resolution_ns = resolution_ns
        self.noise_ns = noise_ns
        self.rng = rng

    def report(self, true_ns: int) -> int:
        noise = self.rng.randint(0, self.noise_ns) if self.noise_ns > 0 else 0
        return quantize(true_ns + noise, self.resolution_ns)


class PerformanceClock:
    """The object behind ``performance`` in a scope.

    ``now()`` charges a small call cost to the running task (so spinning on
    the clock consumes virtual time, as clock-edge attacks require) and
    reports policy-transformed milliseconds since the time origin.
    """

    def __init__(self, sim: Simulator, policy: Optional[ClockPolicy] = None, origin: int = 0):
        self.sim = sim
        self.policy = policy or ClockPolicy()
        self.origin = origin

    def now(self) -> float:
        """``performance.now()``: float milliseconds since the time origin."""
        self.sim.consume(CLOCK_CALL_COST)
        return to_ms(self.policy.report(self.sim.now - self.origin))

    def now_ns(self) -> int:
        """Policy-transformed time in ns (internal consumers, no rounding)."""
        self.sim.consume(CLOCK_CALL_COST)
        return self.policy.report(self.sim.now - self.origin)

    @property
    def time_origin(self) -> float:
        """``performance.timeOrigin`` in milliseconds."""
        return to_ms(self.origin)


class DateClock:
    """The object behind ``Date.now()``: millisecond integer wall time."""

    #: Arbitrary fixed epoch offset so Date.now() looks like wall time.
    EPOCH_MS = 1_577_836_800_000  # 2020-01-01T00:00:00Z

    def __init__(self, sim: Simulator, policy: Optional[ClockPolicy] = None):
        self.sim = sim
        self.policy = policy or QuantizedClockPolicy(MS, name="date-ms")

    def now(self) -> int:
        """``Date.now()``: integer milliseconds since the Unix epoch."""
        self.sim.consume(CLOCK_CALL_COST)
        return self.EPOCH_MS + int(to_ms(self.policy.report(self.sim.now)))
