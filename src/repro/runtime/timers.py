"""``setTimeout`` / ``setInterval`` with HTML-style clamping.

Timers are the implicit clock used by the first block of Table I attacks, so
their semantics matter:

* delays are clamped to the browser's minimum (``min_delay_ns``);
* nested timers (a timeout scheduled from a timeout, more than five levels
  deep) are clamped to 4 ms, as the HTML spec requires — this is what bounds
  the resolution of a naive ``setTimeout(0)`` chain clock;
* ``setInterval`` does not queue a second firing while one is already
  pending (interval coalescing), which is why a blocked main thread yields a
  *late burst count* proportional to the blocking duration only for pending
  network/message events, not intervals.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional

from .eventloop import EventLoop
from .simtime import ms
from .task import Task, TaskSource

#: HTML spec: timeouts nested more than 5 deep are clamped to >= 4 ms.
NESTING_CLAMP_DEPTH = 5
NESTING_CLAMP_NS = ms(4)

#: Cost of the setTimeout call itself.
TIMER_API_COST = 2_200


class _TimerEntry:
    __slots__ = ("task", "interval_ns", "callback", "args", "nesting", "cancelled")

    def __init__(self, callback, args, interval_ns, nesting):
        self.task: Optional[Task] = None
        self.callback = callback
        self.args = args
        self.interval_ns = interval_ns  # None for one-shot timeouts
        self.nesting = nesting
        self.cancelled = False


class TimerRegistry:
    """Per-scope timer table (each window/worker scope owns one)."""

    def __init__(self, loop: EventLoop, min_delay_ns: int = ms(1)):
        self.loop = loop
        self.min_delay_ns = min_delay_ns
        self._ids = itertools.count(1)
        self._entries: Dict[int, _TimerEntry] = {}
        self._current_nesting = 0

    # ------------------------------------------------------------------
    # public API (what the scope exposes)
    # ------------------------------------------------------------------
    def set_timeout(self, callback: Callable[..., None], delay_ms: float = 0, *args) -> int:
        """``setTimeout(cb, delay)`` → timer id."""
        self.loop.sim.consume(TIMER_API_COST)
        entry = _TimerEntry(callback, args, None, self._current_nesting + 1)
        timer_id = next(self._ids)
        self._entries[timer_id] = entry
        self._schedule(timer_id, entry, ms(max(delay_ms, 0)))
        return timer_id

    def set_interval(self, callback: Callable[..., None], delay_ms: float = 0, *args) -> int:
        """``setInterval(cb, delay)`` → timer id."""
        self.loop.sim.consume(TIMER_API_COST)
        interval = max(ms(max(delay_ms, 0)), self.min_delay_ns)
        entry = _TimerEntry(callback, args, interval, self._current_nesting + 1)
        timer_id = next(self._ids)
        self._entries[timer_id] = entry
        self._schedule(timer_id, entry, interval)
        return timer_id

    def clear_timeout(self, timer_id: int) -> None:
        """``clearTimeout(id)`` / ``clearInterval(id)``."""
        self.loop.sim.consume(TIMER_API_COST)
        entry = self._entries.pop(timer_id, None)
        if entry is None:
            return
        entry.cancelled = True
        if entry.task is not None:
            entry.task.cancel()

    clear_interval = clear_timeout

    @property
    def active_count(self) -> int:
        """Number of live timers (pending timeouts + running intervals)."""
        return len(self._entries)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _clamp(self, delay_ns: int, nesting: int) -> int:
        delay = max(delay_ns, self.min_delay_ns)
        if nesting > NESTING_CLAMP_DEPTH:
            delay = max(delay, NESTING_CLAMP_NS)
        return delay

    def _schedule(self, timer_id: int, entry: _TimerEntry, delay_ns: int) -> None:
        delay = self._clamp(delay_ns, entry.nesting)
        entry.task = self.loop.post(
            self._fire,
            timer_id,
            delay=delay,
            source=TaskSource.TIMER,
            label=f"timer#{timer_id}",
        )

    def _fire(self, timer_id: int) -> None:
        entry = self._entries.get(timer_id)
        if entry is None or entry.cancelled:
            return
        previous = self._current_nesting
        self._current_nesting = entry.nesting
        try:
            entry.callback(*entry.args)
        finally:
            self._current_nesting = previous
        if entry.interval_ns is not None and not entry.cancelled:
            # Re-arm the interval relative to this firing.
            self._schedule(timer_id, entry, entry.interval_ns)
        elif entry.interval_ns is None:
            self._entries.pop(timer_id, None)
