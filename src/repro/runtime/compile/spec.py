"""Static descriptions of timer/microtask chains.

A :class:`TimerChainSpec` is the compiler's input: the full list of links
a scenario will execute, declared up front.  Each :class:`ChainStep` is
one ``setTimeout`` link — the delay that arms it, a payload callback, a
fixed pre-charged cost, and a fixed number of trailing microtasks (the
promise reactions the payload queues).

Eligibility is a *contract*, not a static analysis — Python callbacks
cannot be inspected for purity.  A spec declares that its payloads:

* do not schedule work (no ``setTimeout``/``post``/``sim.schedule``) —
  payloads that do are detected at runtime by the batch executor's
  sequence-number guard and demoted to interpreted dispatch;
* do not introspect scheduler state (``pending_events``,
  ``pending_tasks``, ``active_count``) — the batch executor defers queue
  bookkeeping that a generic run would perform eagerly, so such reads
  would observe intermediate state;
* may consume cost, read clocks, and mutate plain Python state freely.

Everything else (delays, counts, costs) is validated eagerly here so a
malformed spec fails at compile time, not mid-batch.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple


class ChainSpecError(ValueError):
    """A chain spec failed static validation."""


class ChainStep:
    """One ``setTimeout`` link of a pre-compiled chain.

    Attributes:
        delay_ms: the delay passed to the ``setTimeout`` that arms this
            link (clamping — minimum delay, >5-deep nesting — is applied
            at execution time, exactly as the timer registry would).
        callback/args: the payload run in the link's task frame; may be
            ``None`` for a pure-cost link.
        cost: synchronous cost consumed before the payload runs.
        micros: number of microtasks queued after the payload, drained at
            the link's microtask checkpoint.
        micro_cost: cost consumed by each of those microtasks.
    """

    __slots__ = ("delay_ms", "callback", "args", "cost", "micros", "micro_cost")

    def __init__(
        self,
        delay_ms: float = 0,
        callback: Optional[Callable[..., None]] = None,
        args: Tuple = (),
        cost: int = 0,
        micros: int = 0,
        micro_cost: int = 0,
    ):
        self.delay_ms = delay_ms
        self.callback = callback
        self.args = tuple(args)
        self.cost = cost
        self.micros = micros
        self.micro_cost = micro_cost

    def validate(self, index: int) -> None:
        """Raise :class:`ChainSpecError` if this step is malformed."""
        if not isinstance(self.delay_ms, (int, float)) or isinstance(self.delay_ms, bool):
            raise ChainSpecError(f"step {index}: delay_ms must be a number")
        if self.delay_ms != self.delay_ms or self.delay_ms in (float("inf"), float("-inf")):
            raise ChainSpecError(f"step {index}: delay_ms must be finite")
        if self.callback is not None and not callable(self.callback):
            raise ChainSpecError(f"step {index}: callback must be callable or None")
        for name in ("cost", "micros", "micro_cost"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ChainSpecError(
                    f"step {index}: {name} must be a non-negative integer"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ChainStep delay={self.delay_ms}ms cost={self.cost}"
            f" micros={self.micros}>"
        )


class TimerChainSpec:
    """An ordered, statically-known sequence of timer links."""

    __slots__ = ("steps",)

    def __init__(self, steps: Iterable[ChainStep]):
        self.steps: Tuple[ChainStep, ...] = tuple(steps)
        if not self.steps:
            raise ChainSpecError("a chain needs at least one step")
        for index, step in enumerate(self.steps):
            if not isinstance(step, ChainStep):
                raise ChainSpecError(f"step {index}: expected ChainStep")
            step.validate(index)

    def __len__(self) -> int:
        return len(self.steps)

    @classmethod
    def uniform(
        cls,
        links: int,
        delay_ms: float = 1,
        callback: Optional[Callable[..., None]] = None,
        args: Tuple = (),
        cost: int = 0,
        micros: int = 0,
        micro_cost: int = 0,
    ) -> "TimerChainSpec":
        """A chain of ``links`` identical steps — the closed-form archetype
        shape (heartbeat timers, polling loops, ``setTimeout(0)`` clocks)."""
        if links <= 0:
            raise ChainSpecError("links must be positive")
        return cls(
            ChainStep(delay_ms, callback, args, cost, micros, micro_cost)
            for _ in range(links)
        )

    @classmethod
    def from_delays(
        cls,
        delays_ms: Sequence[float],
        callback: Optional[Callable[..., None]] = None,
        cost: int = 0,
    ) -> "TimerChainSpec":
        """A chain with per-link delays and one shared payload."""
        return cls(ChainStep(d, callback, (), cost) for d in delays_ms)
