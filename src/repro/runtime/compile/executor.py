"""Batch executor for pre-compiled timer chains.

``CompiledTimerChain`` runs a :class:`~repro.runtime.compile.spec.
TimerChainSpec` in one of two ways:

* **interpreted** — every link is a real ``setTimeout``: timer registry
  entry, posted task, simulator wake, generic dispatch.  This is the
  reference semantics, and the fallback whenever batch execution cannot
  be proven safe.
* **compiled** — the chain is armed as a single simulator event carrying
  the owning loop's wake label.  When it dispatches, the batch loop runs
  every link back-to-back: per link it replicates, in order, exactly the
  operations the generic path would perform — the wake bookkeeping
  (``events_processed``, dispatch label/ordinal, recent labels), the
  execution frame with dispatch cost, the timer registry's ``_fire``
  protocol (nesting, one-shot cleanup), the payload, the microtask
  checkpoint, and the ``setTimeout`` bookkeeping for the next link
  (API cost, timer id, registry entry, task object — consuming the same
  global id streams) — but skips the queue round-trips: no ready-queue
  push/pop, no lane selection, no task peek, no wake scheduling.  One
  sequence number is burned per link for the ``_arm`` the generic path
  would have issued, keeping the ``(time, seq)`` stream identical.

Safety is enforced per link, after the frame closes:

* if the payload (or its microtasks) scheduled anything — the simulator
  sequence-number snapshot moved, or the loop's queues are non-empty —
  the next link's already-created task is handed to the real queue and
  the batch exits through ``EventLoop._continue_inline``, the same code
  path an interpreted wake runs after dispatch;
* if any pre-existing simulator event is due at or before the next
  link's wake time, same hand-off: the generic loop interleaves it
  exactly as the interpreted schedule would;
* tracing, task recording and task observers divert the link through
  the real ``EventLoop._run_task`` (checked per link), so captured
  traces are byte-identical by construction rather than by replication;
* under ``step()``/``run_until()``/perturbation (``_inline_wake_ok``
  false) or any non-pristine arming state, the chain never enters batch
  mode at all.
"""

from __future__ import annotations

from heapq import heappush
from typing import Optional, Tuple

from ...errors import SimulationError
from ..simtime import ms
from ..simulator import ExecutionFrame
from ..task import Microtask, Task, TaskSource
from ..timers import (
    NESTING_CLAMP_DEPTH,
    NESTING_CLAMP_NS,
    TIMER_API_COST,
    TimerRegistry,
    _TimerEntry,
)
from .spec import TimerChainSpec


def _noop() -> None:
    return None


def compile_chain(spec: TimerChainSpec, registry: TimerRegistry) -> "CompiledTimerChain":
    """Compile ``spec`` against ``registry``'s loop; call ``start()`` to arm."""
    return CompiledTimerChain(spec, registry)


class CompiledTimerChain:
    """One compiled chain instance (single-shot: arm once)."""

    __slots__ = (
        "_steps",
        "_flat",
        "_registry",
        "_loop",
        "_sim",
        "_armed_call",
        "_head",
        "_pending",
        "_in_batch",
        "mode",
        "finished",
        "links_batched",
        "links_interpreted",
        "bailouts",
    )

    def __init__(self, spec: TimerChainSpec, registry: TimerRegistry):
        self._steps = spec.steps
        # Per-step hot-loop view: attribute loads and the ms() conversion
        # hoisted out of the batch loop (the nesting clamp still happens
        # per link — it depends on the runtime nesting depth).
        self._flat = [
            (s.cost, s.callback, s.args, s.micros, s.micro_cost, ms(max(s.delay_ms, 0)))
            for s in self._steps
        ]
        self._registry = registry
        self._loop = registry.loop
        self._sim = registry.loop.sim
        self._armed_call = None
        #: (index, timer_id, entry, task) the armed batch entry will run.
        self._head: Optional[Tuple] = None
        #: set by ``_link_body`` in batch mode: the next link's bookkeeping.
        self._pending: Optional[Tuple] = None
        self._in_batch = False
        #: "compiled" | "interpreted" | "degraded" (armed compiled, but the
        #: entry dispatch fell back to the generic path) | None (not armed).
        self.mode: Optional[str] = None
        #: True once the last link's payload ran.
        self.finished = False
        #: links executed by the batch loop (fast or traced flavour).
        self.links_batched = 0
        #: links executed by the generic interpreted machinery.
        self.links_interpreted = 0
        #: hand-offs from batch to interpreted dispatch.
        self.bailouts = 0

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def start(self) -> "CompiledTimerChain":
        """Arm link 0, batch-executed when provably safe.

        Falls back to interpreted arming when the loop is not pristine
        (mid-task, queued work, an armed wakeup) or a schedule perturber
        is installed — the perturber must see every schedule and post,
        which only the generic machinery gives it.
        """
        if self.mode is not None:
            raise SimulationError("chain already started")
        sim = self._sim
        loop = self._loop
        registry = self._registry
        if (
            sim.perturber is not None
            or loop.stopped
            or loop._in_task
            or loop._queue
            or loop._tfifo
            or loop._microtasks
            or loop._wakeup is not None
        ):
            return self.start_interpreted()
        self.mode = "compiled"
        # setTimeout for link 0, replicated: same cost, same timer id,
        # same task object — only the armed simulator callback differs
        # (the batch entry instead of EventLoop._wake; same wake label,
        # same time, same sequence number).
        sim.consume(TIMER_API_COST)
        step = self._steps[0]
        nesting = registry._current_nesting + 1
        entry = _TimerEntry(self._link_body, (0,), None, nesting)
        timer_id = next(registry._ids)
        registry._entries[timer_id] = entry
        delay = registry._clamp(ms(max(step.delay_ms, 0)), nesting)
        now = sim.now
        task = Task(
            registry._fire,
            (timer_id,),
            source=TaskSource.TIMER,
            ready_time=now + delay,
            cost=0,
            label=f"timer#{timer_id}",
            enqueue_time=now,
        )
        entry.task = task
        loop._tfifo.append(task)
        run_at = task.ready_time
        busy = loop.busy_until
        if run_at < busy:
            run_at = busy
        dispatch = sim.dispatch_time
        if run_at < dispatch:
            run_at = dispatch
        call = sim.schedule(run_at, self._batch_entry, label=loop._wake_label)
        loop._wakeup = call
        self._armed_call = call
        self._head = (0, timer_id, entry, task)
        return self

    def start_interpreted(self) -> "CompiledTimerChain":
        """Arm link 0 through the real timer machinery (reference path)."""
        if self.mode is not None and self.mode != "compiled":
            raise SimulationError("chain already started")
        self.mode = "interpreted"
        self._registry.set_timeout(self._link_body, self._steps[0].delay_ms, 0)
        return self

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def _batch_entry(self) -> None:
        """The armed simulator callback: dispatches like the loop's wake.

        The generic dispatch that invoked us already performed the wake
        bookkeeping (time, label, ordinal, events count) because the call
        was scheduled under the loop's wake label.  Any deviation from
        the state we armed — a task posted ahead of ours, a cancelled
        timer, single-step mode — delegates to the real ``_wake``, which
        is exactly what this call stood in for.
        """
        sim = self._sim
        loop = self._loop
        call = self._armed_call
        head = self._head
        self._armed_call = None
        self._head = None
        fifo = loop._tfifo
        if (
            head is None
            or not sim._inline_wake_ok
            or loop.stopped
            or loop._wakeup is not call
            or loop._queue
            or not fifo
            or fifo[0] is not head[3]
            or head[3].cancelled
        ):
            self.mode = "degraded"
            loop._wake()
            return
        index, timer_id, entry, task = head
        run_at = task.ready_time
        busy = loop.busy_until
        if run_at < busy:
            run_at = busy
        if run_at > sim._time:
            self.mode = "degraded"
            loop._wake()
            return
        loop._wakeup = None
        fifo.popleft()
        self._run_batch(index, timer_id, entry, task)

    def _run_batch(self, index: int, timer_id: int, entry, task: Task) -> None:
        sim = self._sim
        loop = self._loop
        registry = self._registry
        frames = sim._frames
        microdeque = loop._microtasks
        dispatch_cost = loop.task_dispatch_cost
        wake_label = loop._wake_label
        recent_append = sim._recent_labels.append
        entries = registry._entries
        sfifo = sim._fifo
        wheel = sim._wheel
        peek_time = sim._peek_time
        flat = self._flat
        last = len(flat) - 1
        fire = registry._fire
        ids = registry._ids
        min_delay = registry.min_delay_ns
        name = loop.name
        timer_source = TaskSource.TIMER
        link_body = self._link_body
        nesting = entry.nesting
        while True:
            seq_snapshot = sim._seq
            tracer = sim.tracer
            if tracer.enabled or loop.record_trace or loop.task_observers:
                # traced flavour: the real per-task machinery emits the
                # trace records, so byte-identity is by construction.
                # Fast links defer the registry-dict store, so (re)register
                # the entry before the real _fire looks it up.
                self._pending = None
                entries[timer_id] = entry
                self._in_batch = True
                try:
                    loop._run_task(task)
                finally:
                    self._in_batch = False
                self.links_batched += 1
                pending = self._pending
                self._pending = None
                if pending is None:
                    # chain complete (or its timer was cleared): rejoin
                    # the generic schedule exactly as a wake would
                    loop._continue_inline()
                    return
                index, timer_id, entry, task = pending
                nesting = entry.nesting
            else:
                # fast flavour: EventLoop._run_task + TimerRegistry._fire
                # + the link body, fused.  Cost accounting runs on a local
                # accumulator `fe`, flushed to the frame around any
                # callback that could observe the clock; the microtask
                # allocation is elided when the payload queued nothing
                # (the _noop reactions are unobservable, only their cost
                # is); the registry-dict store is deferred to hand-off or
                # a traced link (the contract bars payloads from reaching
                # chain timer ids, so the dict state is unobservable
                # mid-batch).  Ordering matches the interpreted body:
                # payload cost, callback, virtual setTimeout (its API
                # cost and `now` stamp precede the checkpoint), then the
                # microtask checkpoint.
                cost, callback, args, n_micros, micro_cost, _ = flat[index]
                start = sim._time
                busy = loop.busy_until
                if busy > start:
                    start = busy
                frame = ExecutionFrame(start, name)
                frames.append(frame)
                loop._in_task = True
                self._in_batch = True
                fe = dispatch_cost
                next_task = None
                try:
                    if entries:
                        # a prior traced link (or start()) registered us
                        entries.pop(timer_id, None)
                    if not entry.cancelled:
                        fe += cost
                        if callback is not None:
                            frame.elapsed = fe
                            prev_nesting = registry._current_nesting
                            registry._current_nesting = nesting
                            try:
                                callback(*args)
                            finally:
                                registry._current_nesting = prev_nesting
                            fe = frame.elapsed
                        shortcut = not microdeque and not loop.stopped
                        if n_micros and not shortcut:
                            # payload queued reactions (or stopped the
                            # loop): post real step microtasks so the
                            # checkpoint drains everything in FIFO order
                            post_micro = loop.post_microtask
                            for _ in range(n_micros):
                                post_micro(Microtask(_noop, (), micro_cost))
                        if index != last:
                            # virtual setTimeout for the next link
                            fe += TIMER_API_COST
                            now = start + fe
                            index += 1
                            nesting += 1
                            entry = _TimerEntry(link_body, (index,), None, nesting)
                            timer_id = next(ids)
                            delay = flat[index][5]
                            if delay < min_delay:
                                delay = min_delay
                            if nesting > NESTING_CLAMP_DEPTH and delay < NESTING_CLAMP_NS:
                                delay = NESTING_CLAMP_NS
                            task = Task(
                                fire,
                                (timer_id,),
                                timer_source,
                                now + delay,
                                0,
                                f"timer#{timer_id}",
                                now,
                            )
                            entry.task = task
                            next_task = task
                        else:
                            self.finished = True
                        # microtask checkpoint
                        if shortcut:
                            fe += n_micros * micro_cost
                        elif microdeque:
                            frame.elapsed = fe
                            self._drain_micros(frame)
                            fe = frame.elapsed
                finally:
                    self._in_batch = False
                    loop._in_task = False
                    frames.pop()
                end = start + fe
                if end > loop.busy_until:
                    loop.busy_until = end
                loop.tasks_run += 1
                self.links_batched += 1
                if next_task is None:
                    # chain complete (or its timer was cleared): rejoin
                    # the generic schedule exactly as a wake would
                    loop._continue_inline()
                    return
            if loop.stopped:
                # the real loop.post would have dropped the task silently
                return
            t_next = task.ready_time
            busy = loop.busy_until
            if t_next < busy:
                t_next = busy
            # bailout guards — hand the next link to the real queue when:
            # the payload or its microtasks scheduled anything (sequence
            # number moved), posted tasks (loop lanes non-empty), or a
            # pre-existing simulator event is due at or before the next
            # wake (it must interleave, and with a lower sequence number
            # it wins an equal-time tie)
            if sim._seq != seq_snapshot or loop._tfifo or loop._queue:
                self._hand_off(task, timer_id, entry)
                return
            if sfifo or wheel._ready or wheel._stored:
                nt = peek_time()
                if nt is not None and nt <= t_next:
                    self._hand_off(task, timer_id, entry)
                    return
            # continue the batch: burn the sequence number the generic
            # _arm would have, then perform the wake's dispatch
            # bookkeeping for the next link
            sim._seq = seq_snapshot + 1
            sim._time = t_next
            n = sim.events_processed + 1
            sim.events_processed = n
            sim._dispatch_label = wake_label
            sim._dispatch_ordinal = n
            recent_append(wake_label)

    def _hand_off(self, task: Task, timer_id: int, entry) -> None:
        """Queue the next link's task for generic dispatch (bailout)."""
        self.bailouts += 1
        # fast links defer the registry store; the generic _fire that will
        # now run this link looks the entry up by id
        self._registry._entries[timer_id] = entry
        loop = self._loop
        fifo = loop._tfifo
        ready = task.ready_time
        # post_task's lane selection; enqueue stamping, perturbation and
        # past-clamping were already handled at creation time (and a
        # perturber forces interpreted mode before a batch ever runs)
        if not fifo:
            fifo.append(task)
        else:
            tail = fifo[-1]
            if ready > tail.ready_time or (
                ready == tail.ready_time and task.id > tail.id
            ):
                fifo.append(task)
            else:
                heappush(loop._queue, (ready, task.id, task))
        loop._continue_inline()

    def _drain_micros(self, frame: ExecutionFrame) -> None:
        """``EventLoop._drain_microtasks`` minus the tracer branch."""
        loop = self._loop
        budget = 100_000
        micros = loop._microtasks
        popleft = micros.popleft
        consume = frame.consume
        while micros:
            micro = popleft()
            consume(micro.cost)
            micro.callback(*micro.args)
            budget -= 1
            if budget <= 0:
                raise SimulationError(
                    f"microtask checkpoint on {loop.name!r} exceeded 100000 "
                    "microtasks (runaway promise chain?)"
                )

    # ------------------------------------------------------------------
    # the per-link body (both modes)
    # ------------------------------------------------------------------
    def _link_body(self, index: int) -> None:
        """Run link ``index``'s payload and arm (or stage) the next link.

        In batch mode the next link's ``setTimeout`` bookkeeping is
        performed eagerly — same cost, ids, entry and task — but the
        task is *staged* in ``_pending`` instead of queued; the batch
        loop queues it only on bailout.  Outside batch mode this is the
        interpreted runner: a real ``setTimeout`` per link.
        """
        steps = self._steps
        step = steps[index]
        sim = self._sim
        if not self._in_batch:
            self.links_interpreted += 1
        if step.cost:
            sim.consume(step.cost)
        callback = step.callback
        if callback is not None:
            callback(*step.args)
        n_micros = step.micros
        if n_micros:
            loop = self._loop
            micro_cost = step.micro_cost
            post_micro = loop.post_microtask
            for _ in range(n_micros):
                post_micro(Microtask(_noop, (), micro_cost))
        nxt = index + 1
        if nxt == len(steps):
            self.finished = True
            return
        registry = self._registry
        if not self._in_batch:
            registry.set_timeout(self._link_body, steps[nxt].delay_ms, nxt)
            return
        # virtual setTimeout (see class docstring)
        sim.consume(TIMER_API_COST)
        nesting = registry._current_nesting + 1
        entry = _TimerEntry(self._link_body, (nxt,), None, nesting)
        timer_id = next(registry._ids)
        registry._entries[timer_id] = entry
        delay = registry._clamp(ms(max(steps[nxt].delay_ms, 0)), nesting)
        now = sim.now
        task = Task(
            registry._fire,
            (timer_id,),
            source=TaskSource.TIMER,
            ready_time=now + delay,
            cost=0,
            label=f"timer#{timer_id}",
            enqueue_time=now,
        )
        entry.task = task
        self._pending = (nxt, timer_id, entry, task)
