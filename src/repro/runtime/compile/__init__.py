"""Scenario pre-compiler: batch execution for statically-known event chains.

The attack scenarios and the population model's closed-form archetypes
produce long, *statically known* event chains: a timer fires, runs a
fixed payload, queues a fixed number of microtasks, and re-arms the next
timer — no data-dependent branching anywhere.  Interpreted, every link
pays the full generic machinery: a simulator queue round-trip, an event
loop wake, lane selection, task peek/pop, ``setTimeout`` posting and
re-arming.  None of that bookkeeping can change the outcome when the
chain is known up front.

This package *compiles* such chains: :class:`~repro.runtime.compile.spec.
TimerChainSpec` declares the links, and :class:`~repro.runtime.compile.
executor.CompiledTimerChain` flattens them into a batch executed array —
one simulator dispatch runs every link back-to-back, replicating the
interpreted path's observable bookkeeping (virtual times, execution
frames, timer ids, task ids, sequence numbers, dispatch ordinals,
labels) exactly, so traces are byte-identical.  Runtime guards detect
anything data-dependent — a payload that schedules work, posts tasks, or
an external event landing between links — and bail out to the generic
interpreted machinery mid-chain with no observable difference.

See DESIGN.md §17 for the eligibility rules and bailout conditions.
"""

from .executor import CompiledTimerChain, compile_chain
from .spec import ChainStep, ChainSpecError, TimerChainSpec

__all__ = [
    "ChainStep",
    "ChainSpecError",
    "CompiledTimerChain",
    "TimerChainSpec",
    "compile_chain",
]
