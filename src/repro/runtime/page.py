"""A page: main thread, window scope, document, renderer and loader.

The page assembles the substrate pieces into the thing a "website script"
runs against: it wires the :class:`MainScope` APIs (timers come from the
scope itself; DOM, rAF, fetch, workers, storage and media are attached
here), implements subresource loading with parse/decode cost — the channel
the script-parsing and image-decoding attacks measure — and tracks the
page ``load`` event.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .cssanim import AnimationTimeline
from .clock import PerformanceClock
from .dom import Document, Element
from .eventloop import EventLoop
from .fetchapi import AbortController, FetchManager
from .media import VideoElement
from .messaging import make_channel
from .origin import URL, parse_url
from .render import Renderer
from .scopes import MainScope
from .sharedbuf import SimArrayBuffer
from .sharedmem import SharedMemAPI
from .simtime import ms
from .svgfilter import SimImage, filter_cost
from .task import TaskSource
from .worker import WorkerAgent
from .xhr import XMLHttpRequest


class Page:
    """One top-level browsing context."""

    def __init__(self, browser, url: str, private_mode: bool = False):
        self.browser = browser
        self.base_url: URL = parse_url(url)
        self.origin = self.base_url.origin
        self.private_mode = private_mode
        profile = browser.profile

        self.loop = EventLoop(
            browser.sim, f"main:{self.base_url.origin.host}",
            task_dispatch_cost=profile.task_dispatch_cost,
        )
        self.scope = MainScope(self.loop, self.origin, self.base_url)
        self.document = Document(browser.sim)
        self.document.resource_loader = self._load_element_resource

        # clocks follow the browser's (defense-controlled) policy
        self.scope.performance.policy = browser.clock_policy_factory()
        self.scope.performance.origin = browser.sim.now
        self._animation_clock = PerformanceClock(
            browser.sim, browser.animation_clock_policy_factory(), origin=browser.sim.now
        )
        self.timeline = AnimationTimeline(self._animation_clock)

        self.renderer = Renderer(
            self.loop,
            self.document,
            costs=profile.render_costs,
            frame_interval=profile.frame_interval_ns,
            timestamp_fn=self.scope.performance.now,
            visited_fn=browser.is_visited,
        )
        self.renderer.animation_drivers.append(self.timeline.any_running)

        self.fetch_manager = FetchManager(
            self.loop, browser.network, browser.heap, self.base_url, self.origin
        )

        # kernel interposition points for subresource events: a defense may
        # observe load *initiation* (two-stage scheduling registers pending
        # events there) and route onload/onerror delivery through itself.
        self.load_start_hook: Optional[Callable[[Element], None]] = None
        self.element_event_router: Optional[Callable[[Element, str, Callable], None]] = None
        #: C++-patched browsers (Fuzzyfox, DeterFox) exhibit sporadic
        #: loading errors — the paper's §V-B1 explanation for their
        #: non-time-related incompatibilities.  Probability per load.
        self.load_failure_rate = 0.0

        # load-event tracking
        self._pending_loads = 0
        self._load_callbacks: List[Callable[[], None]] = []
        self.loaded = False
        self.load_time_ns: Optional[int] = None
        self._load_armed = False

        self._wire_scope()
        for hook in list(browser.page_hooks):
            hook(self)

    # ------------------------------------------------------------------
    # scope wiring
    # ------------------------------------------------------------------
    def _wire_scope(self) -> None:
        browser = self.browser
        scope = self.scope
        scope.document = self.document
        scope.requestAnimationFrame = self.renderer.request_animation_frame
        scope.cancelAnimationFrame = self.renderer.cancel_animation_frame
        scope.getComputedStyle = self.timeline.get_computed_style
        scope.animate = self.timeline.animate
        scope.fetch = self.fetch_manager.fetch
        scope.AbortController = AbortController
        scope.XMLHttpRequest = lambda: XMLHttpRequest(
            self.loop, browser.network, self.base_url, self.origin, enforce_sop=True
        )
        scope.ArrayBuffer = lambda size: SimArrayBuffer(browser.heap, size)
        scope.SharedArrayBuffer = browser.make_shared_buffer
        scope.sharedmem = SharedMemAPI(browser.sharedmem, self.loop)
        scope.Worker = self._create_worker
        scope.indexedDB = _IndexedDBFacade(browser.idb, self.origin, self.private_mode)
        scope.Image = self._create_image
        scope.createVideo = self._create_video
        scope.applyFilter = self._apply_filter

        # window.postMessage loops back to the same window (loopscan uses
        # this as its event-loop probe)
        side_a, side_b = make_channel(
            "window-self", self.loop, self.loop, browser.profile.message_latency_ns
        )
        self._self_tx, self._self_rx = side_a, side_b
        self._self_rx.add_handler(self._dispatch_self_message)
        scope.onmessage = None
        scope.define_setter_trap("onmessage", lambda fn: scope.set_raw("onmessage", fn))
        scope.postMessage = lambda data: self._self_tx.post(
            data, origin=self.origin.serialize()
        )

    def _dispatch_self_message(self, event) -> None:
        handler = getattr(self.scope, "onmessage", None)
        if handler is not None:
            handler(event)

    # ------------------------------------------------------------------
    # factories exposed on the scope
    # ------------------------------------------------------------------
    def _create_worker(self, src):
        agent = WorkerAgent(self.browser, self.loop, self.base_url, src)
        self.browser.workers.append(agent)
        return agent.handle

    def _create_image(self) -> Element:
        """``new Image()`` — an <img> element not yet in the tree."""
        return self.document.create_element("img")

    def _create_video(self, duration_ms: float = 60_000.0) -> VideoElement:
        video = VideoElement(self.loop, self._animation_clock, duration_ms)
        return video

    def _apply_filter(
        self, element: Element, name: str, image: SimImage, iterations: int = 1
    ) -> None:
        """Apply an SVG filter to an element: costs land on the next frame."""
        element.pending_paint_cost += filter_cost(name, image, iterations)
        self.document.mark_dirty()
        self.renderer.pump()

    # ------------------------------------------------------------------
    # subresource loading
    # ------------------------------------------------------------------
    def _load_element_resource(self, element: Element) -> None:
        src = element.attributes.get("src")
        if not src:
            return
        target = parse_url(src, base=self.base_url)
        self._pending_loads += 1
        if self.load_start_hook is not None:
            self.load_start_hook(element)

        def complete(response) -> None:
            if self.load_failure_rate > 0.0:
                fragility_rng = self.browser.rng.stream("fragility")
                if fragility_rng.random() < self.load_failure_rate:
                    response = type(response)(response.url, 500, None, False)
            if not response.ok or response.resource is None:
                self.loop.post(
                    self._finish_element_load,
                    element, None, False,
                    source=TaskSource.DOM,
                    label=f"onerror:{target.path}",
                )
                return
            resource = response.resource
            cost = self._processing_cost(element, resource)
            # parsers and decoders are incremental: processing yields to
            # the event loop between chunks (streaming parse, progressive
            # decode), so timers interleave with it — the behaviour the
            # van Goethem attacks measure
            chunks = max(1, min(16, cost // ms(1)))
            chunk_cost = cost // chunks
            remaining = {"chunks": chunks}

            def process_chunk() -> None:
                remaining["chunks"] -= 1
                if remaining["chunks"] > 0:
                    self.loop.post(
                        process_chunk,
                        cost=chunk_cost,
                        source=TaskSource.DOM,
                        label=f"process:{target.path}",
                    )
                    return
                self.loop.post(
                    self._finish_element_load,
                    element, resource, True,
                    source=TaskSource.DOM,
                    label=f"onload:{target.path}",
                )

            self.loop.post(
                process_chunk,
                cost=chunk_cost,
                source=TaskSource.DOM,
                label=f"process:{target.path}",
            )

        self.browser.network.request(self.loop, target, complete)

    def _processing_cost(self, element: Element, resource) -> int:
        profile = self.browser.profile
        if element.tag == "script":
            return int(resource.size_bytes * profile.script_parse_cost_per_byte)
        if element.tag == "img":
            if isinstance(resource.body, SimImage):
                pixels = resource.body.pixel_count
            else:
                pixels = max(resource.size_bytes // 3, 1)
            return int(pixels * profile.image_decode_cost_per_pixel)
        return int(resource.size_bytes * 0.05)

    def _finish_element_load(self, element: Element, resource, ok: bool) -> None:
        if ok and resource is not None:
            element.payload = resource.body
            self.document.mark_dirty()
            self.renderer.pump()
            self._dispatch_element_event(element, "onload")
        else:
            self._dispatch_element_event(element, "onerror")
        self._pending_loads -= 1
        self._check_load_complete()

    def _dispatch_element_event(self, element: Element, name: str) -> None:
        handler = getattr(element, name)
        if self.element_event_router is not None:
            self.element_event_router(element, name, handler)
        elif handler is not None:
            handler()

    # ------------------------------------------------------------------
    # page load event
    # ------------------------------------------------------------------
    def arm_load_event(self) -> None:
        """Begin watching for quiescence (workloads call after seeding)."""
        self._load_armed = True
        self._check_load_complete()

    def on_load(self, callback: Callable[[], None]) -> None:
        """Register a load-event callback (fires once)."""
        if self.loaded:
            callback()
        else:
            self._load_callbacks.append(callback)

    def _check_load_complete(self) -> None:
        if self.loaded or not self._load_armed:
            return
        if self._pending_loads > 0:
            return
        self.loaded = True
        self.load_time_ns = self.browser.sim.now
        if self.document.onload is not None:
            self.loop.post(self.document.onload, source=TaskSource.DOM, label="onload")
        for callback in self._load_callbacks:
            self.loop.post(callback, source=TaskSource.DOM, label="onload-cb")
        self._load_callbacks = []

    # ------------------------------------------------------------------
    def run_script(self, body: Callable, label: str = "page-script") -> None:
        """Queue a script task against this page's window scope."""
        self.loop.post(lambda: body(self.scope), source=TaskSource.SCRIPT, label=label)


class _IndexedDBFacade:
    """Origin-and-mode-bound view over the browser's indexedDB store."""

    def __init__(self, store, origin, private_mode: bool):
        self._store = store
        self._origin = origin
        self._private = private_mode

    def put(self, key: str, value) -> None:
        """``objectStore.put``."""
        self._store.put(self._origin, key, value, self._private)

    def get(self, key: str):
        """``objectStore.get``."""
        return self._store.get(self._origin, key, self._private)
