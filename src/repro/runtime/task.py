"""Tasks and task sources.

A :class:`Task` is one macrotask on an event loop: a callback plus the
metadata the loop needs to order and account for it.  ``TaskSource``
identifies which browser subsystem enqueued the task — the same notion as
HTML's task sources — and is what lets defenses (Fuzzyfox's pause tasks,
JSKernel's dispatcher) and attacks (loopscan's event-loop profiling) reason
about queue composition.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Optional, Tuple


class TaskSource(enum.Enum):
    """Which subsystem produced a task (mirrors HTML task sources)."""

    SCRIPT = "script"
    TIMER = "timer"
    MESSAGE = "message"
    NETWORK = "network"
    DOM = "dom"
    RENDER = "render"
    WORKER = "worker"
    STORAGE = "storage"
    MEDIA = "media"
    PAUSE = "pause"  # Fuzzyfox's injected pause tasks
    KERNEL = "kernel"  # JSKernel dispatcher bookkeeping


_task_ids = itertools.count(1)


class Task:
    """One macrotask: callback, arguments, ordering and cost metadata.

    Attributes:
        callback: the Python callable standing in for the JS function.
        args: positional arguments for the callback.
        source: the :class:`TaskSource` that enqueued the task.
        ready_time: earliest virtual time the task may run.
        cost: fixed synchronous cost charged when the task is dispatched
            (the callback may consume additional cost while running).
        label: free-form debugging/trace label.
        cancelled: cancelled tasks are skipped by the loop.
    """

    __slots__ = (
        "id",
        "callback",
        "args",
        "source",
        "ready_time",
        "cost",
        "label",
        "cancelled",
        "enqueue_time",
    )

    def __init__(
        self,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        source: TaskSource = TaskSource.SCRIPT,
        ready_time: int = 0,
        cost: int = 0,
        label: str = "",
        enqueue_time: int = 0,
    ):
        self.id = next(_task_ids)
        self.callback = callback
        self.args = args
        self.source = source
        self.ready_time = ready_time
        self.cost = cost
        self.label = label or getattr(callback, "__name__", "task")
        self.cancelled = False
        self.enqueue_time = enqueue_time

    def cancel(self) -> None:
        """Mark the task as not-to-run (idempotent)."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Task #{self.id} {self.label!r} src={self.source.value} "
            f"ready={self.ready_time}>"
        )


class Microtask:
    """A microtask (promise reaction): runs at the end of the current task."""

    __slots__ = ("callback", "args", "cost", "label")

    def __init__(
        self,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        cost: int = 0,
        label: str = "",
    ):
        self.callback = callback
        self.args = args
        self.cost = cost
        self.label = label or getattr(callback, "__name__", "microtask")


class TaskRecord:
    """Trace record of one dispatched task (used by loopscan & tests)."""

    __slots__ = ("task_id", "label", "source", "start", "end")

    def __init__(self, task_id: int, label: str, source: TaskSource, start: int, end: int):
        self.task_id = task_id
        self.label = label
        self.source = source
        self.start = start
        self.end = end

    @property
    def duration(self) -> int:
        """Virtual-time duration the task occupied its thread."""
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TaskRecord {self.label!r} [{self.start},{self.end}]>"


def make_ready_key(task: Task) -> Tuple[int, int]:
    """Queue ordering key: FIFO within equal ready times."""
    return (task.ready_time, task.id)


#: Sentinel returned by cancelled lookups.
NO_TASK: Optional[Task] = None
