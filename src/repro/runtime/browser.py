"""The browser facade: one simulated browser instance.

Owns the simulator, network, heap, history, storage and profile; creates
pages and (through pages) workers.  Defenses install themselves here —
swapping the clock-policy factory, adding page/worker hooks, or replacing
the worker implementation — before any page exists, exactly like an
extension that runs at ``document_start``.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Callable, List, Optional, Set

from .clock import ClockPolicy, QuantizedClockPolicy
from .heap import SimHeap
from .network import SimNetwork
from .page import Page
from .profiles import BrowserProfile, chrome
from .rng import RngService
from .sharedbuf import SharedCounterBuffer
from .sharedmem import SharedHeap
from .simulator import Simulator
from .storage import IndexedDBStore
from .worker import WorkerAgent


#: Ambient hooks applied to every Browser at the end of construction
#: (after the defense installed).  Fault-injection plans use this to reach
#: browsers that experiment code builds internally (see
#: :func:`browser_intercept` and :mod:`repro.explore.faults`).
_active_interceptors: List[Callable[["Browser"], None]] = []


def current_interceptors() -> List[Callable[["Browser"], None]]:
    """The ambient browser interceptors (snapshot)."""
    return list(_active_interceptors)


@contextmanager
def browser_intercept(hook: Callable[["Browser"], None]):
    """Run ``hook(browser)`` on every browser built inside the block.

    The hook fires after the defense has installed itself, so it sees the
    final network/worker plumbing — the point where a fault plan can wire
    latency spikes, dropped fetches and worker crashes into the run.
    """
    _active_interceptors.append(hook)
    try:
        yield hook
    finally:
        _active_interceptors.remove(hook)


class Browser:
    """One browser process (simulated)."""

    def __init__(
        self,
        profile: Optional[BrowserProfile] = None,
        defense=None,
        seed: int = 0,
    ):
        self.profile = profile or chrome()
        self.sim = Simulator()
        self.rng = RngService(seed)
        self.heap = SimHeap(time_fn=lambda: self.sim.now, sim=self.sim)
        self.network = SimNetwork(
            self.rng.stream("network"),
            base_latency_ns=self.profile.network_base_latency_ns,
            bandwidth_bytes_per_ms=self.profile.network_bandwidth_bytes_per_ms,
        )
        self.idb = IndexedDBStore(
            self.sim,
            persist_private_writes=self.profile.has_bug("cve_2017_7843"),
        )
        #: Browser-wide shared-object heap (lazy arena: trace-silent until
        #: the first shared allocation).
        self.sharedmem = SharedHeap(self.sim, self.heap, self.profile)
        self.history: Set[str] = set()
        self.pages: List[Page] = []
        self.workers: List[WorkerAgent] = []
        #: Id stream for this browser's workers (see WorkerAgent.__init__).
        self.worker_seq = itertools.count(1)
        #: Called with each new Page (defenses interpose here).
        self.page_hooks: List[Callable[[Page], None]] = []
        #: Called with each new WorkerAgent before its script runs.
        self.worker_hooks: List[Callable[[WorkerAgent], None]] = []
        #: Produces the ClockPolicy for each new scope (defense-controlled).
        self.clock_policy_factory: Callable[[], ClockPolicy] = (
            lambda: QuantizedClockPolicy(self.profile.clock_resolution_ns)
        )
        #: Clock policy behind CSS animations / media playback.  Exact by
        #: default: compositors interpolate animation progress at call
        #: time, and clamping performance.now does NOT clamp it (which is
        #: why Tor is still vulnerable to the animation clocks); only
        #: defenses that explicitly cover animation time override this.
        self.animation_clock_policy_factory: Callable[[], ClockPolicy] = ClockPolicy
        self.defense = defense
        if defense is not None:
            defense.install(self)
        for hook in current_interceptors():
            hook(self)

    # ------------------------------------------------------------------
    def open_page(self, url: str = "https://example.com/", private: bool = False) -> Page:
        """Open a top-level page (runs defense page hooks)."""
        page = Page(self, url, private_mode=private)
        self.pages.append(page)
        return page

    def make_shared_buffer(self, size: int = 8) -> SharedCounterBuffer:
        """``new SharedArrayBuffer(...)`` used as a counter timer."""
        return SharedCounterBuffer(self.sim)

    # ------------------------------------------------------------------
    # history (history-sniffing substrate)
    # ------------------------------------------------------------------
    def visit(self, url: str) -> None:
        """Record ``url`` in the browsing history."""
        self.history.add(url)

    def is_visited(self, url: str) -> bool:
        """Style-recalc hook: is this link :visited?"""
        return url in self.history

    # ------------------------------------------------------------------
    # simulation control
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Advance the simulation (see :meth:`Simulator.run`)."""
        self.sim.run(until=until, max_events=max_events)

    def run_until(
        self, predicate: Callable[[], bool], max_events: Optional[int] = None
    ) -> None:
        """Advance until ``predicate()`` holds (see :meth:`Simulator.run_until`)."""
        self.sim.run_until(predicate, max_events=max_events)

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self.sim.now
