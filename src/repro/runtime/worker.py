"""WebWorkers: true (virtual-time) parallel JavaScript threads.

Each :class:`WorkerAgent` owns an event loop, a :class:`WorkerScope` and a
message channel to its parent, and executes its script concurrently with
the main thread in virtual time — the concurrency web concurrency attacks
require (and the concurrency Chrome Zero's polyfill sacrifices).

The agent's *native internals* are allocated on the simulated heap, and
its termination path consults the browser's bug flags; this is where most
of the Table I CVE trigger conditions live.  See the per-CVE attack
modules for the exact scenarios.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional

from ..errors import SecurityError, SimulationError
from .fetchapi import AbortController, FetchManager
from .heap import NULL, NativePtr
from .messaging import MessageEvent, make_channel
from .eventloop import EventLoop
from .interpose import Interposable
from .origin import URL, parse_url, same_origin
from .scopes import ErrorEvent, WorkerScope
from .sharedbuf import SimArrayBuffer
from .sharedmem import SharedMemAPI
from .task import TaskSource
from .xhr import XMLHttpRequest

#: Cost on the parent thread of constructing a Worker.
WORKER_CONSTRUCT_COST = 60_000
#: Cost of an importScripts call (excluding network time).
IMPORT_SCRIPTS_COST = 20_000

#: Fallback id stream for hosts predating per-browser numbering.
_worker_ids = itertools.count(1)

#: Sanitised error text for cross-origin failures (per HTML spec).
SANITIZED_ERROR = "Script error."


class CrossOriginScriptError(Exception):
    """An exception thrown by cross-origin script code.

    Its message must be sanitised before reaching ``onerror`` — unless the
    browser has the CVE-2011-1190 bug, which forwards it verbatim.
    """


class NativeWorkerInternals:
    """The browser-internal worker object (ports, wrapper state)."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.port_open = True

    def close_port(self) -> None:
        """Tear down the native message port."""
        self.port_open = False


class WorkerHandle(Interposable):
    """The object the creating thread holds (``new Worker(...)``).

    ``onmessage``/``onerror`` assignments go through setter traps so the
    kernel can interpose (paper Listing 5's Proxy).
    """

    def __init__(self, agent: "WorkerAgent"):
        super().__init__()
        self.onmessage: Optional[Callable[[MessageEvent], None]] = None
        self.onerror: Optional[Callable[[ErrorEvent], None]] = None
        self._agent = agent
        self.define_setter_trap("onmessage", self._native_set_onmessage)

    # -- API visible to page scripts -----------------------------------
    def postMessage(self, data: Any, transfer: Optional[List[Any]] = None) -> None:
        """Send a message to the worker."""
        self._agent.post_to_worker(data, transfer)

    def terminate(self) -> None:
        """``worker.terminate()`` from the parent."""
        self._agent.terminate(reason="parent")

    @property
    def state(self) -> str:
        """Worker lifecycle state (``spawning``/``running``/``terminated``)."""
        return self._agent.state

    # -- internals ------------------------------------------------------
    def _native_set_onmessage(self, handler: Optional[Callable]) -> None:
        agent = self._agent
        if agent.state == "terminated" and agent.has_bug("cve_2013_5602"):
            # buggy path: the wrapper's listener slot is already null
            NULL.deref(cve="CVE-2013-5602")
        self.set_raw("onmessage", handler)


class WorkerAgent:
    """One worker thread plus its parent-side plumbing."""

    def __init__(self, host, parent_loop: EventLoop, parent_base_url: URL, src):
        """``host`` is the owning Browser (sim/network/heap/profile)."""
        self.host = host
        # per-browser numbering keeps worker names (and therefore traces)
        # deterministic across repeated runs in one process
        self.id = next(getattr(host, "worker_seq", _worker_ids))
        self.name = f"worker-{self.id}"
        self.parent_loop = parent_loop
        self.src = src
        self.state = "spawning"
        self.termination_reason = ""
        profile = host.profile

        host.sim.consume(WORKER_CONSTRUCT_COST)

        self.loop = EventLoop(
            host.sim, self.name, task_dispatch_cost=profile.task_dispatch_cost
        )
        self.native_ptr: NativePtr = host.heap.alloc(
            NativeWorkerInternals(self.id), "WorkerInternals"
        )

        # channel: parent-side endpoint lives on the parent loop
        self.parent_endpoint, self.worker_endpoint = make_channel(
            f"{self.name}-chan", parent_loop, self.loop, profile.message_latency_ns
        )
        self.handle = WorkerHandle(self)
        self.parent_endpoint.add_handler(self._deliver_to_parent)

        # resolve the script
        if callable(src):
            self.script_url = parse_url("/inline-worker.js", base=parent_base_url)
            self.script_body: Optional[Callable] = src
        else:
            self.script_url = parse_url(str(src), base=parent_base_url)
            self.script_body = None

        self.scope = WorkerScope(self.loop, self.script_url.origin, self.script_url)
        self.scope._attach_parent_channel(self.worker_endpoint)
        # the worker's message port is held until the initial script has
        # been evaluated (HTML semantics): buffer early deliveries
        self._script_evaluated = False
        self._held_messages: List[MessageEvent] = []
        self.worker_endpoint.remove_handler(self.scope._dispatch_message)
        self.worker_endpoint.add_handler(self._deliver_to_worker)
        self._wire_scope_services()

        #: buffers transferred worker -> parent (CVE-2014-1488 substrate)
        self.transferred_out: List[SimArrayBuffer] = []
        #: buffers transferred parent -> worker (CVE-2014-1719 substrate)
        self.transferred_in: List[SimArrayBuffer] = []

        for hook in list(host.worker_hooks):
            hook(self)

        tracer = host.sim.tracer
        if tracer.enabled:
            frame = host.sim.current_frame
            ctx = frame.thread_name if frame is not None else host.sim.native_context
            tracer.instant(
                host.sim.trace_pid,
                self.name,
                "worker.spawn",
                host.sim.now,
                cat="worker",
                args={
                    "src": self.script_url.serialize(),
                    "parent": parent_loop.name,
                    "ctx": ctx,
                },
            )
            tracer.metrics.counter("workers.spawned").inc()

        self._begin_startup(parent_base_url)

    # ------------------------------------------------------------------
    # startup
    # ------------------------------------------------------------------
    def _begin_startup(self, parent_base_url: URL) -> None:
        host = self.host
        if not same_origin(self.script_url.origin, parent_base_url.origin):
            # cross-origin dedicated workers are forbidden; the error
            # message is where CVE-2014-1487 leaks
            detail = f"cannot load {self.script_url.serialize()}"
            self._fire_creation_error(detail, cross_origin=True)
            return

        def booted() -> None:
            if self.state != "spawning":
                return
            if self.script_body is not None:
                self._run_script(self.script_body)
                return
            resource = host.network.lookup(self.script_url)
            if resource is None or not callable(resource.body):
                self._fire_creation_error(
                    f"network error loading {self.script_url.serialize()}",
                    cross_origin=False,
                )
                return
            if resource.redirect_to is not None and not same_origin(
                resource.redirect_to.origin, self.script_url.origin
            ):
                # redirect to cross-origin: CVE-2010-4576 leaks final URL
                if self.has_bug("cve_2010_4576"):
                    detail = f"redirect to {resource.redirect_to.serialize()}"
                else:
                    detail = SANITIZED_ERROR
                self._fire_creation_error(detail, cross_origin=True, sanitized=True)
                return
            delay = host.network.transfer_time(resource.size_bytes)
            parse_cost = int(resource.size_bytes * host.profile.script_parse_cost_per_byte)
            self.loop.post(
                self._run_script,
                resource.body,
                delay=delay,
                cost=parse_cost,
                source=TaskSource.WORKER,
                label=f"{self.name}:boot",
            )

        self.loop.post(
            booted,
            delay=host.profile.worker_spawn_latency_ns,
            source=TaskSource.WORKER,
            label=f"{self.name}:spawn",
        )

    def _run_script(self, body: Callable) -> None:
        if self.state != "spawning":
            return
        self.state = "running"
        try:
            body(self.scope)
        except SecurityError:
            raise
        except Exception as exc:  # worker script error -> onerror event
            self._fire_runtime_error(exc)
        finally:
            self._script_evaluated = True
            held, self._held_messages = self._held_messages, []
            for event in held:
                self.loop.post(
                    self.scope._dispatch_message,
                    event,
                    source=TaskSource.MESSAGE,
                    label=f"{self.name}:held-message",
                )

    def _deliver_to_worker(self, event: MessageEvent) -> None:
        """Port gate: deliveries wait for initial script evaluation."""
        if self.state == "terminated":
            return
        if not self._script_evaluated:
            self._held_messages.append(event)
            return
        self.scope._dispatch_message(event)

    # ------------------------------------------------------------------
    # scope services
    # ------------------------------------------------------------------
    def _wire_scope_services(self) -> None:
        host = self.host
        scope = self.scope
        self.fetch_manager = FetchManager(
            self.loop, host.network, host.heap, self.script_url, scope.origin
        )
        scope.fetch = self.fetch_manager.fetch
        scope.AbortController = AbortController
        enforce_sop = not self.has_bug("cve_2013_1714")
        scope.XMLHttpRequest = lambda: XMLHttpRequest(
            self.loop, host.network, self.script_url, scope.origin, enforce_sop=enforce_sop
        )
        scope.ArrayBuffer = lambda size: SimArrayBuffer(host.heap, size)
        scope.SharedArrayBuffer = host.make_shared_buffer
        scope.sharedmem = SharedMemAPI(host.sharedmem, self.loop)
        scope.importScripts = self._import_scripts
        scope.close = lambda: self.terminate(reason="self")
        # route user postMessage through the agent so transferables are
        # tracked (CVE-2014-1488 substrate)
        scope.set_raw("postMessage", self.post_to_parent)
        # clocks follow the browser's clock policy
        scope.performance.policy = host.clock_policy_factory()
        scope.performance.origin = host.sim.now

    def _import_scripts(self, url: str) -> None:
        """``importScripts(url)`` — synchronous classic-script import."""
        host = self.host
        self.loop.sim.consume(IMPORT_SCRIPTS_COST)
        target = parse_url(url, base=self.script_url)
        resource = host.network.lookup(target)
        cross = not same_origin(target.origin, self.scope.origin)
        if resource is None:
            detail = f"importScripts failed for {target.serialize()}"
            raise self._import_error(detail, cross)
        if resource.redirect_to is not None and not same_origin(
            resource.redirect_to.origin, self.scope.origin
        ):
            # cross-origin redirect: the buggy error discloses the final
            # URL (CVE-2010-4576's leak)
            if self.has_bug("cve_2010_4576"):
                raise SimulationError(
                    f"importScripts redirected to {resource.redirect_to.serialize()}"
                )
            raise SimulationError(SANITIZED_ERROR)
        # synchronous block: network + parse time charged to this task
        self.loop.sim.consume(
            host.network.base_latency_ns
            + host.network.transfer_time(resource.size_bytes)
            + int(resource.size_bytes * host.profile.script_parse_cost_per_byte)
        )
        if isinstance(resource.body, Exception):
            detail = f"importScripts parse error in {target.serialize()}: {resource.body}"
            raise self._import_error(detail, cross)
        if callable(resource.body):
            try:
                resource.body(self.scope)
            except Exception as exc:
                if cross:
                    raise CrossOriginScriptError(str(exc)) from exc
                raise

    def _import_error(self, detail: str, cross_origin: bool) -> Exception:
        if cross_origin and not self.has_bug("cve_2015_7215"):
            return SimulationError(SANITIZED_ERROR)
        return SimulationError(detail)

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def post_to_worker(self, data: Any, transfer: Optional[List[Any]] = None) -> None:
        """Parent -> worker postMessage (the handle calls this)."""
        if self.state == "terminated":
            if self.has_bug("cve_2014_3194"):
                native = self.native_ptr.deref(cve="CVE-2014-3194")
                native.port_open  # touch the freed port
            return  # fixed browsers silently drop
        to_detach = []
        for item in transfer or []:
            if isinstance(item, SimArrayBuffer):
                self.transferred_in.append(item)
                if self.has_bug("cve_2014_1719"):
                    # buggy structured clone: neutering is skipped, so the
                    # parent keeps a usable (soon dangling) reference
                    continue
            to_detach.append(item)
        self.parent_endpoint.post(data, transfer=to_detach, origin="")

    def post_to_parent(self, data: Any, transfer: Optional[List[Any]] = None) -> None:
        """Worker -> parent postMessage (used by kernel plumbing)."""
        if transfer:
            for item in transfer:
                if isinstance(item, SimArrayBuffer):
                    self.transferred_out.append(item)
        self.worker_endpoint.post(data, transfer=transfer, origin=self.scope.origin.serialize())

    def _deliver_to_parent(self, event: MessageEvent) -> None:
        if self.state == "terminated":
            if self.has_bug("cve_2013_6646"):
                self.native_ptr.deref(cve="CVE-2013-6646")
            return
        handler = getattr(self.handle, "onmessage", None)
        if handler is not None:
            handler(event)

    # ------------------------------------------------------------------
    # errors
    # ------------------------------------------------------------------
    def _fire_creation_error(
        self, detail: str, cross_origin: bool, sanitized: bool = False
    ) -> None:
        if cross_origin and not sanitized and not self.has_bug("cve_2014_1487"):
            detail = SANITIZED_ERROR
        self.state = "terminated"
        self.termination_reason = "creation-error"
        event = ErrorEvent(detail, filename=self.script_url.serialize())
        self.parent_loop.post(
            lambda: self.handle.onerror(event) if self.handle.onerror else None,
            source=TaskSource.WORKER,
            label=f"{self.name}:onerror",
        )

    def _fire_runtime_error(self, exc: Exception) -> None:
        cross = isinstance(exc, CrossOriginScriptError)
        message = str(exc)
        if cross and not self.has_bug("cve_2011_1190"):
            message = SANITIZED_ERROR
        event = ErrorEvent(message, filename=self.script_url.serialize())
        self.parent_loop.post(
            lambda: self.handle.onerror(event) if self.handle.onerror else None,
            source=TaskSource.WORKER,
            label=f"{self.name}:onerror",
        )

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def has_bug(self, flag: str) -> bool:
        """Shortcut to the browser profile's bug flags."""
        return self.host.profile.has_bug(flag)

    @property
    def alive(self) -> bool:
        """True until terminated."""
        return self.state != "terminated"

    def crash(self, detail: str = "injected worker crash") -> None:
        """Kill the worker abruptly (fault injection).

        Models the worker *process* dying mid-run — the parent gets an
        ``onerror`` event (as for an unhandled script error) and the
        normal termination teardown runs, exercising exactly the
        racy-teardown paths the Table I CVEs live in.
        """
        if self.state == "terminated":
            return
        tracer = self.host.sim.tracer
        if tracer.enabled:
            tracer.instant(
                self.host.sim.trace_pid,
                self.name,
                "fault.worker-crash",
                self.host.sim.now,
                cat="fault",
                args={"detail": detail},
            )
            tracer.metrics.counter("workers.crashed").inc()
        event = ErrorEvent(detail, filename=self.script_url.serialize())
        self.parent_loop.post(
            lambda: self.handle.onerror(event) if self.handle.onerror else None,
            source=TaskSource.WORKER,
            label=f"{self.name}:crash",
        )
        self.terminate(reason="crash")

    def terminate(self, reason: str = "parent") -> None:
        """Tear the worker down; bug flags decide how sloppily.

        The handle-visible state flips immediately (terminate() is
        synchronous for the caller), but the native teardown — stopping
        the loop, freeing natives — is applied at the caller's *local*
        virtual time, so worker tasks that causally precede the
        termination still run.
        """
        if self.state == "terminated":
            return
        self.state = "terminated"
        self.termination_reason = reason
        tracer = self.host.sim.tracer
        if tracer.enabled:
            frame = self.host.sim.current_frame
            ctx = frame.thread_name if frame is not None else self.host.sim.native_context
            tracer.instant(
                self.host.sim.trace_pid,
                self.name,
                "worker.terminate",
                self.host.sim.now,
                cat="worker",
                args={"reason": reason, "ctx": ctx},
            )
            tracer.metrics.counter("workers.terminated").inc()
        self.host.sim.schedule(
            self.host.sim.now, self._finalize_termination, label=f"{self.name}:teardown"
        )

    def _finalize_termination(self) -> None:
        if getattr(self, "_teardown_done", False):
            return
        self._teardown_done = True
        self.loop.stop()

        # outstanding fetches: the CVE-2018-5092 path frees them but keeps
        # the abort-signal registration dangling
        self.fetch_manager.release_all(buggy=self.has_bug("cve_2018_5092"))

        # buffers this worker transferred to the parent: freeing them is
        # the CVE-2014-1488 bug (the parent owns them now)
        if self.has_bug("cve_2014_1488"):
            for buffer in self.transferred_out:
                if not buffer.ptr.freed:
                    buffer.ptr.free()

        # buffers transferred into the worker die with it (correct): the
        # parent's reference is detached... unless CVE-2014-1719 skipped
        # the neutering, leaving the parent a dangling pointer.
        for buffer in self.transferred_in:
            if not buffer.ptr.freed:
                buffer.ptr.free()

        if not self.has_bug("cve_2013_6646"):
            self.parent_endpoint.close()
            self.worker_endpoint.close()

        if not self.native_ptr.freed:
            self.native_ptr.free()
