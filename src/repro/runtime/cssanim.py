"""CSS animations and the ``getComputedStyle`` clock.

Schwarz et al. [12] showed a CSS animation's observable progress is a
timer: script reads ``getComputedStyle(el).left`` mid-animation and learns
elapsed time at compositor precision.  The runtime models an animation
timeline driven by a (policy-filtered) clock; reading computed style samples
that timeline, so clock defenses and JSKernel's kernel clock interpose in
the natural place.
"""

from __future__ import annotations

import itertools
from typing import Dict

from ..errors import SimulationError
from .clock import PerformanceClock
from .dom import Element

#: Cost of one getComputedStyle call.
COMPUTED_STYLE_COST = 2_500


class CSSAnimation:
    """One running animation on an element."""

    _ids = itertools.count(1)

    def __init__(
        self,
        element: Element,
        prop: str,
        from_value: float,
        to_value: float,
        duration_ms: float,
        start_ms: float,
    ):
        self.id = next(self._ids)
        self.element = element
        self.prop = prop
        self.from_value = from_value
        self.to_value = to_value
        self.duration_ms = duration_ms
        self.start_ms = start_ms
        self.cancelled = False

    def value_at(self, now_ms: float) -> float:
        """Linear interpolation of the animated property at ``now_ms``."""
        if self.duration_ms <= 0:
            return self.to_value
        t = (now_ms - self.start_ms) / self.duration_ms
        t = max(0.0, min(1.0, t))
        return self.from_value + (self.to_value - self.from_value) * t

    def finished(self, now_ms: float) -> bool:
        """True when the animation has run to completion."""
        return self.cancelled or now_ms >= self.start_ms + self.duration_ms


class AnimationTimeline:
    """All animations on a page, sampled through one clock.

    The clock is the interposition point: legacy pages get the browser's
    quantised clock, Fuzzyfox a fuzzy one, and JSKernel swaps in its kernel
    logical clock so sampled progress is deterministic.
    """

    def __init__(self, clock: PerformanceClock):
        self.clock = clock
        self._animations: Dict[int, CSSAnimation] = {}

    def animate(
        self,
        element: Element,
        prop: str = "left",
        from_value: float = 0.0,
        to_value: float = 1000.0,
        duration_ms: float = 10_000.0,
    ) -> CSSAnimation:
        """Start a linear animation (``element.style.animation = ...``)."""
        start_ms = self.clock.now()
        animation = CSSAnimation(element, prop, from_value, to_value, duration_ms, start_ms)
        self._animations[animation.id] = animation
        element.document.mark_dirty()
        return animation

    def cancel(self, animation: CSSAnimation) -> None:
        """Stop an animation."""
        animation.cancelled = True
        self._animations.pop(animation.id, None)

    def get_computed_style(self, element: Element, prop: str) -> float:
        """``getComputedStyle(el)[prop]`` — samples the animation clock."""
        clock = self.clock
        clock.sim.consume(COMPUTED_STYLE_COST)
        now_ms = clock.now()
        for animation in self._animations.values():
            if animation.element is element and animation.prop == prop and not animation.cancelled:
                return animation.value_at(now_ms)
        value = element.style.get(prop)
        if value is None:
            return 0.0
        try:
            return float(str(value).replace("px", ""))
        except ValueError:
            raise SimulationError(f"non-numeric computed style {prop}={value!r}")

    def any_running(self) -> bool:
        """Renderer driver hook: keep producing frames while animating."""
        now_ms = self.clock.now()
        running = {aid: a for aid, a in self._animations.items() if not a.finished(now_ms)}
        self._animations = running
        return bool(running)
