"""``XMLHttpRequest`` with same-origin-policy enforcement.

The interesting case for the paper is CVE-2013-1714: Firefox's *worker*
XHR path skipped the SOP check, so a worker could read cross-origin
responses.  The runtime models this with an ``enforce_sop`` flag the scope
sets from the browser's bug flags: main-thread XHR always checks, a buggy
worker XHR does not.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import SecurityError
from .eventloop import EventLoop
from .network import NetworkResponse, SimNetwork
from .origin import URL, Origin, parse_url, same_origin

#: States mirroring XMLHttpRequest.readyState.
UNSENT = 0
OPENED = 1
DONE = 4

#: Cost of open()+send().
XHR_CALL_COST = 3_000


class XMLHttpRequest:
    """Small XHR: open/send/onload/onerror, sync SOP check on send."""

    def __init__(
        self,
        loop: EventLoop,
        network: SimNetwork,
        base_url: URL,
        origin: Origin,
        enforce_sop: bool = True,
    ):
        self.loop = loop
        self.network = network
        self.base_url = base_url
        self.origin = origin
        self.enforce_sop = enforce_sop
        self.ready_state = UNSENT
        self.status = 0
        self.response_text: Optional[str] = None
        self.response_body: Any = None
        self.onload: Optional[Callable[[], None]] = None
        self.onerror: Optional[Callable[[], None]] = None
        self._target: Optional[URL] = None

    def open(self, method: str, url: str) -> None:
        """``xhr.open(method, url)``."""
        self.loop.sim.consume(XHR_CALL_COST)
        self._target = parse_url(url, base=self.base_url)
        self.ready_state = OPENED

    def send(self) -> None:
        """``xhr.send()``; raises :class:`SecurityError` on SOP violation.

        Real browsers use CORS rather than an outright exception, but the
        paper's CVE scenario only needs deny-vs-allow.
        """
        if self._target is None or self.ready_state != OPENED:
            raise SecurityError("XMLHttpRequest.send before open")
        if self.enforce_sop and not same_origin(self.origin, self._target.origin):
            raise SecurityError(
                f"XHR from {self.origin.serialize()} to cross-origin "
                f"{self._target.origin.serialize()} blocked by SOP"
            )
        self.network.request(self.loop, self._target, self._on_complete)

    def _on_complete(self, response: NetworkResponse) -> None:
        self.ready_state = DONE
        self.status = response.status
        if response.ok and response.resource is not None:
            body = response.resource.body
            self.response_body = body
            self.response_text = (
                body if isinstance(body, str) else f"<{response.resource.size_bytes} bytes>"
            )
            if self.onload is not None:
                self.onload()
        else:
            if self.onerror is not None:
                self.onerror()
