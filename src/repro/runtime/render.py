"""Vsync renderer and ``requestAnimationFrame``.

The renderer posts a RENDER task on the main-thread event loop at each
vsync boundary while there is work (rAF callbacks, dirty DOM, running
animations).  Because the frame task queues behind whatever else occupies
the thread, and because style/layout/paint *consume cost proportional to
the page and to pending paint effects* (SVG filters…), rAF callback
timestamps expose main-thread and paint timing — the channel behind the
second block of Table I attacks.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from .dom import Document
from .eventloop import EventLoop
from .simtime import FRAME_INTERVAL, us
from .task import TaskSource

#: Cost of a requestAnimationFrame registration.
RAF_CALL_COST = 400


class RenderCosts:
    """Per-frame cost parameters (browser-profile dependent)."""

    __slots__ = ("base_paint", "style_per_node", "layout_per_node", "visited_style_extra")

    def __init__(
        self,
        base_paint: int = us(300),
        style_per_node: int = 900,
        layout_per_node: int = 1_100,
        visited_style_extra: int = 24_000,
    ):
        self.base_paint = base_paint
        self.style_per_node = style_per_node
        self.layout_per_node = layout_per_node
        self.visited_style_extra = visited_style_extra


class Renderer:
    """The compositor/main-frame scheduler for one page."""

    def __init__(
        self,
        loop: EventLoop,
        document: Document,
        costs: Optional[RenderCosts] = None,
        frame_interval: int = FRAME_INTERVAL,
        timestamp_fn: Optional[Callable[[], float]] = None,
        visited_fn: Optional[Callable[[str], bool]] = None,
    ):
        self.loop = loop
        self.document = document
        self.costs = costs or RenderCosts()
        self.frame_interval = frame_interval
        #: Returns the rAF timestamp (routed through the clock policy).
        self.timestamp_fn = timestamp_fn or (lambda: loop.sim.now / 1e6)
        #: Consulted during style recalc for <a href> visited state.
        self.visited_fn = visited_fn or (lambda href: False)
        self._raf_ids = itertools.count(1)
        self._raf_callbacks: Dict[int, Callable[[float], None]] = {}
        self._tick_armed_for: Optional[int] = None
        #: Extra per-frame drivers (CSS animations); frame keeps scheduling
        #: while any returns True.
        self.animation_drivers: List[Callable[[], bool]] = []
        self.frames_rendered = 0
        #: (frame_start, frame_end) true virtual times, for analysis/tests.
        self.frame_log: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # public API (what the scope exposes)
    # ------------------------------------------------------------------
    def request_animation_frame(self, callback: Callable[[float], None]) -> int:
        """``requestAnimationFrame(cb)`` → id."""
        self.loop.sim.consume(RAF_CALL_COST)
        raf_id = next(self._raf_ids)
        self._raf_callbacks[raf_id] = callback
        self._ensure_scheduled()
        return raf_id

    def cancel_animation_frame(self, raf_id: int) -> None:
        """``cancelAnimationFrame(id)``."""
        self.loop.sim.consume(RAF_CALL_COST)
        self._raf_callbacks.pop(raf_id, None)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def needs_frame(self) -> bool:
        """True when a frame should be produced at the next vsync."""
        if self._raf_callbacks or self.document.dirty:
            return True
        return any(driver() for driver in self.animation_drivers)

    def _next_vsync(self) -> int:
        now = self.loop.sim.now
        return ((now // self.frame_interval) + 1) * self.frame_interval

    def _ensure_scheduled(self) -> None:
        target = self._next_vsync()
        if self._tick_armed_for is not None and self._tick_armed_for <= target:
            return
        self._tick_armed_for = target
        self.loop.post(
            self._on_frame,
            delay=target - self.loop.sim.now,
            source=TaskSource.RENDER,
            label="vsync-frame",
        )

    def _missed_vsync(self) -> bool:
        """True when this tick ran long after its vsync (main-thread jank).

        Real compositors SKIP such frames and re-align to the next vsync:
        the frame task is re-issued rather than run late.  This matters
        for security fidelity — queued cross-thread messages drain before
        the re-aligned frame, which is exactly what count-based implicit
        clocks measure.
        """
        armed = self._tick_armed_for
        if armed is None:
            return False
        return self.loop.sim.dispatch_time > armed + self.frame_interval // 8

    def pump(self) -> None:
        """Arm the vsync loop if there is renderable work (page calls this)."""
        if self.needs_frame():
            self._ensure_scheduled()

    # ------------------------------------------------------------------
    # the frame
    # ------------------------------------------------------------------
    def _on_frame(self) -> None:
        if self._missed_vsync():
            # jank: skip this frame and re-align to the next vsync
            self._tick_armed_for = None
            self._ensure_scheduled()
            return
        self._tick_armed_for = None
        if not self.needs_frame() and not self._raf_callbacks:
            return
        sim = self.loop.sim
        frame_start = sim.now

        # 1. run animation-frame callbacks with a policy-filtered timestamp
        callbacks = list(self._raf_callbacks.items())
        self._raf_callbacks.clear()
        timestamp = self.timestamp_fn()
        for _raf_id, callback in callbacks:
            callback(timestamp)

        # 2. style / layout / paint
        sim.consume(self._frame_cost())
        self.document.dirty = False

        self.frames_rendered += 1
        self.frame_log.append((frame_start, sim.now))

        # 3. keep the loop alive while there is more work
        if self.needs_frame():
            self._ensure_scheduled()

    def _frame_cost(self) -> int:
        cost = self.costs.base_paint
        node_count = self.document.node_count()
        if self.document.dirty:
            cost += node_count * (self.costs.style_per_node + self.costs.layout_per_node)
            # visited-link style resolution (history sniffing channel)
            for element in self.document.document_element.descendants():
                if element.tag == "a" and "href" in element.attributes:
                    if self.visited_fn(element.attributes["href"]):
                        element.matched_visited = True
                        cost += self.costs.visited_style_extra
        # pending paint effects (SVG filters, expensive canvases, ...)
        for element in self.document.document_element.descendants():
            if element.pending_paint_cost:
                cost += element.pending_paint_cost
                element.pending_paint_cost = 0
        return cost
