"""Video playback and WebVTT cues as implicit clocks.

Kohlbrenner & Shacham [6] list ``video.currentTime`` and WebVTT cue events
among the implicit clocks a browser must police.  The runtime models a
playing video whose ``currentTime`` is sampled through a (policy-filtered)
clock, plus cue callbacks scheduled on the media task source.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .clock import PerformanceClock
from .eventloop import EventLoop
from .simtime import ms
from .task import TaskSource

#: Cost of reading video.currentTime.
CURRENT_TIME_COST = 700


class WebVTTCue:
    """One timed cue."""

    __slots__ = ("start_ms", "end_ms", "text", "on_enter")

    def __init__(self, start_ms: float, end_ms: float, text: str = ""):
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.text = text
        self.on_enter: Optional[Callable[["WebVTTCue"], None]] = None


class VideoElement:
    """A playing <video> with a currentTime clock and VTT cues."""

    def __init__(self, loop: EventLoop, clock: PerformanceClock, duration_ms: float = 60_000.0):
        self.loop = loop
        self.clock = clock
        self.duration_ms = duration_ms
        self.playing = False
        self._play_started_ms = 0.0
        self._paused_at_ms = 0.0
        self.cues: List[WebVTTCue] = []

    # ------------------------------------------------------------------
    def play(self) -> None:
        """Start (or resume) playback; schedules cue events."""
        if self.playing:
            return
        self.playing = True
        self._play_started_ms = self.clock.now() - self._paused_at_ms
        for cue in self.cues:
            if cue.start_ms >= self._paused_at_ms:
                self._schedule_cue(cue)

    def pause(self) -> None:
        """Pause playback, freezing currentTime."""
        if not self.playing:
            return
        self._paused_at_ms = self.current_time * 1000.0
        self.playing = False

    @property
    def current_time(self) -> float:
        """``video.currentTime`` in seconds, sampled via the clock."""
        self.loop.sim.consume(CURRENT_TIME_COST)
        if not self.playing:
            return self._paused_at_ms / 1000.0
        elapsed_ms = self.clock.now() - self._play_started_ms
        return min(elapsed_ms, self.duration_ms) / 1000.0

    # ------------------------------------------------------------------
    def add_cue(self, cue: WebVTTCue) -> WebVTTCue:
        """Attach a WebVTT cue; if playing, schedule its enter event."""
        self.cues.append(cue)
        if self.playing:
            self._schedule_cue(cue)
        return cue

    def _schedule_cue(self, cue: WebVTTCue) -> None:
        now_ms = self.clock.now()
        fire_in_ms = max(cue.start_ms - (now_ms - self._play_started_ms), 0.0)

        def fire() -> None:
            if self.playing and cue.on_enter is not None:
                cue.on_enter(cue)

        self.loop.post(
            fire,
            delay=ms(fire_in_ms),
            source=TaskSource.MEDIA,
            label=f"vtt-cue@{cue.start_ms}",
        )


def make_cue_grid(interval_ms: float, count: int) -> List[WebVTTCue]:
    """Evenly spaced cues — the implicit-clock configuration attacks use."""
    return [WebVTTCue(i * interval_ms, (i + 1) * interval_ms) for i in range(count)]
