"""Hierarchical timer wheel: the simulator's out-of-order ready lane.

The dual-lane ready queue (PR 5) sends in-order schedules to a FIFO
deque and everything else to a binary heap.  Timer storms — thousands of
``setTimeout`` wakeups spread over tens of milliseconds, and the
sharedmem wait/notify wakeups that land between them — are exactly the
out-of-order workload, and each of those events paid the heap's
O(log n) Python-level tuple comparisons twice (push + pop).

:class:`TimerWheel` replaces the heap with a classic hierarchical timer
wheel specialised for a discrete-event simulator:

* **Level 0** has ``2**SLOT_BITS`` slots of ``2**G_BITS`` ns each
  (256 slots x ~1.05 ms ≈ 269 ms of horizon) — a slot is a plain
  append-only list, so a push is O(1);
* **Levels 1..2** coarsen by ``2**SLOT_BITS`` per level (~269 ms and
  ~69 s of slot granularity), covering ~4.9 h in total;
* **overflow** holds anything beyond the top level's horizon; it is
  re-seated into the wheels when virtual time gets there (the far-future
  cascade path).

Slot membership uses the *absolute* time bits, so an entry lands at the
first level whose window (the higher-order bits above that level's slot
index) matches the wheel's current ``base`` time.  That rule keeps every
level's occupancy bitmap wrap-free: finding the next occupied slot is a
single ``(bits >> idx) & -x`` scan at C speed.

Dispatch order must stay *exactly* the heap's ``(time, seq)`` order —
the byte-identical-trace contract.  A drained slot is therefore sorted
(one C-speed ``sort`` per slot instead of k Python-level heap pops) into
a **ready run**: an indexed list the simulator pops from the front.  Two
invariants make the order exact despite lazy draining:

* all stored entries are at times ``>= base``, and the ready run holds
  every entry earlier than ``ready_until`` (the drained slot's end), so
  the run's head is the global wheel minimum;
* a late push below ``ready_until`` (a callback scheduling into the slot
  currently being dispatched, or an out-of-order schedule issued while
  the wheel's base has advanced ahead of the FIFO lane) is merged into
  the ready run by bisection, never into a slot behind the cursor.

Cancellation mirrors the heap exactly: cancelled entries stay queued and
are skipped at pop time, so ``peek()`` remains the same conservative
bound the event loops' inline-wake check relies on.
"""

from __future__ import annotations

from bisect import insort
from operator import attrgetter
from typing import List, Optional

#: log2 of the level-0 slot granularity in ns (2**20 ns ~ 1.05 ms —
#: matches the browser's 1 ms minimum timer delay).
G_BITS = 20

#: log2 of the slot count per level.
SLOT_BITS = 8
SLOTS = 1 << SLOT_BITS
SLOT_MASK = SLOTS - 1

#: Cascade levels; level i slots span 2**(G_BITS + i*SLOT_BITS) ns.
LEVELS = 3

#: Entries at ``base + 2**OVERFLOW_BITS`` or later go to the overflow
#: list (~4.9 h of virtual time ahead).
OVERFLOW_BITS = G_BITS + LEVELS * SLOT_BITS

_time_seq = attrgetter("time", "seq")

#: Bits above a level-0 slot index: the level-0 window-match shift.
_L1_SHIFT = G_BITS + SLOT_BITS


class TimerWheel:
    """Timed ready lane with O(1) amortised push/pop and exact
    ``(time, seq)`` dispatch order.

    Entries are :class:`~repro.runtime.simulator.ScheduledCall`-shaped:
    anything with ``time``, ``seq`` and ``cancelled`` attributes.
    """

    __slots__ = ("_slots", "_slots0", "_occupied", "_overflow", "_ready", "_pos",
                 "_base", "_ready_until", "_stored")

    def __init__(self) -> None:
        # _slots[level][index] is None or a list of entries
        self._slots: List[List[Optional[list]]] = [
            [None] * SLOTS for _ in range(LEVELS)
        ]
        #: alias of ``_slots[0]`` (same list object, never rebound) so the
        #: simulator's inlined push fast path skips one index lookup
        self._slots0 = self._slots[0]
        #: per-level occupancy bitmap (bit i set <=> slot i non-empty)
        self._occupied: List[int] = [0] * LEVELS
        self._overflow: list = []
        #: the ready run: entries sorted by (time, seq), popped via _pos
        self._ready: list = []
        self._pos = 0
        #: all slot/overflow entries are at times >= _base
        self._base = 0
        #: exclusive end of the drained region; pushes below it merge
        #: into the ready run
        self._ready_until = 0
        #: entries held in slots + overflow (ready run excluded,
        #: cancelled included — parity with the heap lane)
        self._stored = 0

    def __len__(self) -> int:
        """Queued entries, cancelled included (heap-lane parity)."""
        return self._stored + len(self._ready) - self._pos

    # ------------------------------------------------------------------
    # push
    # ------------------------------------------------------------------
    def push(self, call) -> None:
        """Insert ``call`` (absolute ``call.time`` may be any time at or
        after the simulator's dispatch clock)."""
        at = call.time
        if at < self._ready_until:
            # late entry behind the drain cursor: merge into the ready
            # run so the front stays the global minimum.  Rare (only
            # same-slot re-entrancy), so the O(run) insort is fine.
            if self._pos:
                del self._ready[: self._pos]
                self._pos = 0
            insort(self._ready, call, key=_time_seq)
            return
        # level-0 fast path: most storm pushes land within ~269 ms of the
        # base, one xor tells us the level-0 window matches.  (Simulator
        # .schedule inlines this branch; keep the two in sync.)
        if not ((at ^ self._base) >> _L1_SHIFT):
            index = (at >> G_BITS) & SLOT_MASK
            slots0 = self._slots0
            slot = slots0[index]
            if slot is None:
                slots0[index] = [call]
                self._occupied[0] |= 1 << index
            else:
                slot.append(call)
            self._stored += 1
            return
        self._place(call)

    def _place(self, call) -> None:
        """File ``call`` into the level whose window contains it."""
        at = call.time
        base = self._base
        shift = G_BITS + SLOT_BITS
        for level in range(LEVELS):
            if not ((at ^ base) >> shift):
                index = (at >> (shift - SLOT_BITS)) & SLOT_MASK
                slot = self._slots[level][index]
                if slot is None:
                    self._slots[level][index] = [call]
                    self._occupied[level] |= 1 << index
                else:
                    slot.append(call)
                self._stored += 1
                return
            shift += SLOT_BITS
        self._overflow.append(call)
        self._stored += 1

    # ------------------------------------------------------------------
    # peek / pop
    # ------------------------------------------------------------------
    def peek(self):
        """The earliest queued entry (cancelled included), or ``None``.

        Priming may advance the wheel's base and drain a slot into the
        ready run; the work is amortised against the pops that follow.
        """
        ready = self._ready
        pos = self._pos
        if pos < len(ready):
            return ready[pos]
        if self._stored == 0:
            return None
        self._prime()
        return self._ready[self._pos]

    def pop(self):
        """Remove and return the earliest entry, or ``None`` if empty."""
        head = self.peek()
        if head is not None:
            self._pos += 1
            if self._pos == len(self._ready):
                self._ready.clear()
                self._pos = 0
        return head

    def _prime(self) -> None:
        """Refill the ready run with the minimal occupied slot's entries.

        Called only with ``_stored > 0`` and the ready run empty.  Scans
        level 0 from the base cursor; an exhausted level-0 window pulls
        the next occupied parent slot down (the cascade), re-filing its
        entries against the advanced base; an empty wheel re-seats the
        overflow list.
        """
        self._ready.clear()
        self._pos = 0
        while True:
            occupied = self._occupied[0]
            index = (self._base >> G_BITS) & SLOT_MASK
            bits = occupied >> index
            if bits:
                index += ((bits & -bits).bit_length()) - 1
                slots = self._slots[0]
                entries = slots[index]
                slots[index] = None
                self._occupied[0] = occupied & ~(1 << index)
                self._stored -= len(entries)
                # advance base to the drained slot's start; every
                # remaining stored entry is in a later slot
                window = self._base >> (G_BITS + SLOT_BITS)
                self._base = (window << (G_BITS + SLOT_BITS)) | (index << G_BITS)
                self._ready_until = self._base + (1 << G_BITS)
                if len(entries) > 1:
                    entries.sort(key=_time_seq)
                self._ready.extend(entries)
                return
            if self._cascade():
                continue
            # nothing left in any level: re-seat the far future
            overflow = self._overflow
            self._base = min(overflow, key=_time_seq).time
            self._overflow = []
            self._stored -= len(overflow)
            for call in overflow:
                self._place(call)

    def _cascade(self) -> bool:
        """Pull the next occupied parent slot down one level.

        Returns ``False`` when levels 1.. are all empty past the cursor
        (the overflow re-seat case).
        """
        for level in range(1, LEVELS):
            shift = G_BITS + level * SLOT_BITS
            occupied = self._occupied[level]
            index = (self._base >> shift) & SLOT_MASK
            bits = occupied >> index
            if not bits:
                continue
            index += ((bits & -bits).bit_length()) - 1
            slots = self._slots[level]
            entries = slots[index]
            slots[index] = None
            self._occupied[level] = occupied & ~(1 << index)
            self._stored -= len(entries)
            # enter the drained slot's window, then re-file each entry:
            # with the base advanced, they land one or more levels down
            window = self._base >> (shift + SLOT_BITS)
            self._base = (window << (shift + SLOT_BITS)) | (index << shift)
            for call in entries:
                self._place(call)
            return True
        return False
