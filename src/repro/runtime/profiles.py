"""Browser profiles: Chrome, Firefox, Edge.

A :class:`BrowserProfile` collects the per-browser constants that produce
the per-browser rows in the paper's Tables II/III — clock resolution,
event-loop costs, frame interval, parse/decode throughput — plus the *bug
flags* that enable the vulnerable code paths of the CVE scenarios.

For the Table I security evaluation the paper deliberately uses browser
builds that still contain each vulnerability ("we download the vulnerable
version of the browser"), so :func:`vulnerable` returns a profile with
every bug enabled.
"""

from __future__ import annotations

from typing import Dict, Optional

from .render import RenderCosts
from .simtime import FRAME_INTERVAL, ms, us

#: All CVE bug flags modelled by the runtime.
ALL_BUGS = (
    "cve_2018_5092",
    "cve_2017_7843",
    "cve_2015_7215",
    "cve_2014_3194",
    "cve_2014_1719",
    "cve_2014_1488",
    "cve_2014_1487",
    "cve_2013_6646",
    "cve_2013_5602",
    "cve_2013_1714",
    "cve_2011_1190",
    "cve_2010_4576",
    # shared-memory runtime bugs (legacy shared-GC implementation)
    "shm_gc_thread_roots",
    "shm_gc_cycle_leak",
)


class BrowserProfile:
    """Per-browser constants for the simulated runtime."""

    def __init__(
        self,
        name: str,
        clock_resolution_ns: int,
        task_dispatch_cost: int,
        message_latency_ns: int,
        frame_interval_ns: int,
        worker_spawn_latency_ns: int,
        script_parse_cost_per_byte: float,
        image_decode_cost_per_pixel: float,
        render_costs: Optional[RenderCosts] = None,
        min_timer_delay_ns: int = ms(1),
        network_base_latency_ns: int = ms(8),
        network_bandwidth_bytes_per_ms: int = 1_200,
        js_op_cost: int = 4,
        bugs: Optional[Dict[str, bool]] = None,
    ):
        self.name = name
        self.clock_resolution_ns = clock_resolution_ns
        self.task_dispatch_cost = task_dispatch_cost
        self.message_latency_ns = message_latency_ns
        self.frame_interval_ns = frame_interval_ns
        self.worker_spawn_latency_ns = worker_spawn_latency_ns
        self.script_parse_cost_per_byte = script_parse_cost_per_byte
        self.image_decode_cost_per_pixel = image_decode_cost_per_pixel
        self.render_costs = render_costs or RenderCosts()
        self.min_timer_delay_ns = min_timer_delay_ns
        self.network_base_latency_ns = network_base_latency_ns
        self.network_bandwidth_bytes_per_ms = network_bandwidth_bytes_per_ms
        self.js_op_cost = js_op_cost
        self.bugs = dict(bugs or {})

    def has_bug(self, flag: str) -> bool:
        """True when the vulnerable code path ``flag`` is present."""
        return bool(self.bugs.get(flag, False))

    def clone(self, **overrides) -> "BrowserProfile":
        """Copy with selected fields replaced."""
        kwargs = dict(
            name=self.name,
            clock_resolution_ns=self.clock_resolution_ns,
            task_dispatch_cost=self.task_dispatch_cost,
            message_latency_ns=self.message_latency_ns,
            frame_interval_ns=self.frame_interval_ns,
            worker_spawn_latency_ns=self.worker_spawn_latency_ns,
            script_parse_cost_per_byte=self.script_parse_cost_per_byte,
            image_decode_cost_per_pixel=self.image_decode_cost_per_pixel,
            render_costs=self.render_costs,
            min_timer_delay_ns=self.min_timer_delay_ns,
            network_base_latency_ns=self.network_base_latency_ns,
            network_bandwidth_bytes_per_ms=self.network_bandwidth_bytes_per_ms,
            js_op_cost=self.js_op_cost,
            bugs=dict(self.bugs),
        )
        kwargs.update(overrides)
        return BrowserProfile(**kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BrowserProfile {self.name}>"


def chrome() -> BrowserProfile:
    """Google Chrome (paper-era M6x): 5 µs clock, fast event loop."""
    return BrowserProfile(
        name="chrome",
        clock_resolution_ns=us(5),
        task_dispatch_cost=2_000,
        message_latency_ns=us(30),
        frame_interval_ns=FRAME_INTERVAL,
        worker_spawn_latency_ns=ms(1.2),
        script_parse_cost_per_byte=90.0,
        image_decode_cost_per_pixel=2.6,
        render_costs=RenderCosts(base_paint=us(280), style_per_node=850, layout_per_node=1_000),
    )


def firefox() -> BrowserProfile:
    """Mozilla Firefox (paper-era 5x): 1 ms clock, heavier main loop."""
    return BrowserProfile(
        name="firefox",
        clock_resolution_ns=ms(1),
        task_dispatch_cost=6_000,
        message_latency_ns=us(90),
        frame_interval_ns=FRAME_INTERVAL,
        worker_spawn_latency_ns=ms(1.8),
        script_parse_cost_per_byte=110.0,
        image_decode_cost_per_pixel=2.9,
        render_costs=RenderCosts(base_paint=us(340), style_per_node=950, layout_per_node=1_150),
        network_base_latency_ns=ms(10),
    )


def edge() -> BrowserProfile:
    """Microsoft Edge (paper-era EdgeHTML): 1 ms clock, ~42 Hz frames."""
    return BrowserProfile(
        name="edge",
        clock_resolution_ns=ms(1),
        task_dispatch_cost=5_000,
        message_latency_ns=us(120),
        frame_interval_ns=ms(24),
        worker_spawn_latency_ns=ms(2.2),
        script_parse_cost_per_byte=140.0,
        image_decode_cost_per_pixel=3.4,
        render_costs=RenderCosts(base_paint=us(420), style_per_node=1_100, layout_per_node=1_350),
        network_base_latency_ns=ms(11),
    )


_FACTORIES = {"chrome": chrome, "firefox": firefox, "edge": edge}


def by_name(name: str) -> BrowserProfile:
    """Look a profile factory up by name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(f"unknown browser profile {name!r}; have {sorted(_FACTORIES)}")


def vulnerable(name: str = "chrome") -> BrowserProfile:
    """A legacy profile with every CVE bug flag enabled (Table I setup)."""
    profile = by_name(name)
    profile.bugs = {flag: True for flag in ALL_BUGS}
    return profile
