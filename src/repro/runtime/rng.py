"""Seeded randomness service.

Every source of randomness in the simulation — network latency jitter,
Fuzzyfox pause tasks, workload generation — draws from a :class:`RngService`
so that a single integer seed makes an entire experiment reproducible.

Named streams keep subsystems independent: adding one extra draw to the
network stream must not perturb the Fuzzyfox stream, otherwise defense
comparisons would not be paired.
"""

from __future__ import annotations

import random
from typing import Dict


class RngService:
    """A family of independent, named, seeded random streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        The per-stream seed is derived from the service seed and the stream
        name, so streams are stable across runs and independent of the order
        in which they are first requested.
        """
        rng = self._streams.get(name)
        if rng is None:
            derived = hash_seed(self.seed, name)
            rng = random.Random(derived)
            self._streams[name] = rng
        return rng

    def fork(self, salt: str) -> "RngService":
        """Derive an independent service (used for per-trial isolation)."""
        return RngService(hash_seed(self.seed, salt))


def hash_seed(seed: int, name: str) -> int:
    """Stable (cross-process) seed derivation.

    Python's builtin ``hash`` on strings is salted per process, so we use a
    small FNV-1a instead.
    """
    acc = 0xCBF29CE484222325 ^ (seed & 0xFFFFFFFFFFFFFFFF)
    for byte in name.encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc
