"""Global scopes: the API surface scripts (and the kernel) see.

A *scope* is the simulated equivalent of ``window`` (main thread) or
``self`` (worker).  Simulated scripts are Python callables receiving a
scope and calling its attributes — ``scope.setTimeout(...)``,
``scope.performance.now()``, ``scope.Worker(...)`` — so anything that
rebinds those attributes interposes on the script exactly the way a
content-script extension interposes on a page.

Scopes are :class:`~repro.runtime.interpose.Interposable`: defenses can
redefine APIs, install setter traps (``onmessage``) and seal what they
installed.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..errors import SecurityError
from .clock import DateClock, PerformanceClock
from .eventloop import EventLoop
from .interpose import Interposable
from .messaging import MessageEndpoint, MessageEvent
from .origin import URL, Origin
from .timers import TimerRegistry


class ConsoleLog:
    """``console`` stand-in collecting log lines (tests read them)."""

    def __init__(self):
        self.lines: List[str] = []

    def log(self, *parts: Any) -> None:
        """``console.log(...)``."""
        self.lines.append(" ".join(str(p) for p in parts))


class ErrorEvent:
    """The event delivered to ``onerror`` handlers."""

    __slots__ = ("message", "filename", "lineno")

    def __init__(self, message: str, filename: str = "", lineno: int = 0):
        self.message = message
        self.filename = filename
        self.lineno = lineno

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ErrorEvent {self.message!r} at {self.filename}:{self.lineno}>"


class BaseScope(Interposable):
    """State and APIs common to window and worker scopes."""

    def __init__(self, loop: EventLoop, origin: Origin, base_url: URL):
        super().__init__()
        self.loop = loop
        self.sim = loop.sim
        self.origin = origin
        self.base_url = base_url
        self.console = ConsoleLog()
        #: JS engine speed factor (1.0 = JIT-enabled desktop browser).
        self.js_cost_scale = 1.0
        self._timer_registry = TimerRegistry(loop)
        # timer APIs are plain attributes so they can be redefined
        self.setTimeout = self._timer_registry.set_timeout
        self.clearTimeout = self._timer_registry.clear_timeout
        self.setInterval = self._timer_registry.set_interval
        self.clearInterval = self._timer_registry.clear_interval
        self.performance = PerformanceClock(self.sim)
        self.Date = DateClock(self.sim)

    @property
    def location(self) -> str:
        """``location.href``."""
        return self.base_url.serialize()

    def busy_work(self, duration_ms: float) -> None:
        """Pure-JS computation: spins the CPU for ``duration_ms``.

        This models an uninstrumentable JavaScript loop.  No defense can
        interpose on it (there is no API call to hook) — which is exactly
        why defenses must control the *clocks* that could measure it.

        ``js_cost_scale`` models JS engine speed: Tor Browser's security
        slider disables the JIT, making script work an order of magnitude
        slower — the reason Loophole saw such large event intervals there.
        """
        self.sim.consume(int(duration_ms * 1_000_000 * self.js_cost_scale))


class MainScope(BaseScope):
    """The ``window`` global scope.

    Page-dependent APIs (``document``, ``requestAnimationFrame``,
    ``Worker``, ``fetch``, storage, media) are attached by
    :class:`~repro.runtime.page.Page` after construction, because they
    need the page's renderer, network and browser services.
    """

    def __init__(self, loop: EventLoop, origin: Origin, base_url: URL):
        super().__init__(loop, origin, base_url)
        self.document = None
        self.requestAnimationFrame: Optional[Callable] = None
        self.cancelAnimationFrame: Optional[Callable] = None
        self.getComputedStyle: Optional[Callable] = None
        self.Worker: Optional[Callable] = None
        self.fetch: Optional[Callable] = None
        self.XMLHttpRequest: Optional[Callable] = None
        self.AbortController: Optional[Callable] = None
        self.SharedArrayBuffer: Optional[Callable] = None
        self.ArrayBuffer: Optional[Callable] = None
        self.indexedDB = None
        self.animate: Optional[Callable] = None
        self.createVideo: Optional[Callable] = None
        self.Image: Optional[Callable] = None


class WorkerScope(BaseScope):
    """The ``self`` global scope inside a WebWorker."""

    def __init__(self, loop: EventLoop, origin: Origin, base_url: URL):
        super().__init__(loop, origin, base_url)
        self._parent_endpoint: Optional[MessageEndpoint] = None
        self.fetch: Optional[Callable] = None
        self.XMLHttpRequest: Optional[Callable] = None
        self.AbortController: Optional[Callable] = None
        self.SharedArrayBuffer: Optional[Callable] = None
        self.ArrayBuffer: Optional[Callable] = None
        self.importScripts: Optional[Callable] = None
        self.close: Optional[Callable] = None
        self.onmessage: Optional[Callable[[MessageEvent], None]] = None
        self.postMessage: Optional[Callable] = None
        # the native onmessage trap: registers with the parent channel
        self.define_setter_trap("onmessage", self._native_set_onmessage)

    def _attach_parent_channel(self, endpoint: MessageEndpoint) -> None:
        """Wire the worker side of the parent channel (agent calls this)."""
        self._parent_endpoint = endpoint
        endpoint.add_handler(self._dispatch_message)
        self.set_raw("postMessage", self._native_post_message)

    def _native_set_onmessage(self, handler: Optional[Callable]) -> None:
        self.set_raw("onmessage", handler)

    def _native_post_message(self, data: Any, transfer: Optional[list] = None) -> None:
        if self._parent_endpoint is None:
            raise SecurityError("worker has no parent channel")
        self._parent_endpoint.post(data, transfer=transfer, origin=self.origin.serialize())

    def _dispatch_message(self, event: MessageEvent) -> None:
        handler = getattr(self, "onmessage", None)
        if handler is not None:
            handler(event)
