"""Simulated network stack.

Hosts named resources (size, type, origin) and services requests with a
latency/bandwidth model:

    completion = base_latency + jitter + size / bandwidth (+ server time)

An HTTP cache makes repeat fetches fast — the timing difference the cache
attack measures.  Requests are cancellable (fetch abort) and deliver their
completion as a NETWORK task on the requesting event loop.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, List, Optional

from ..errors import SimulationError
from .eventloop import EventLoop
from .origin import URL, Origin
from .simtime import MS, ms, us
from .task import TaskSource


class Resource:
    """One hosted resource."""

    __slots__ = ("url", "size_bytes", "content_type", "server_time_ns", "body", "redirect_to")

    def __init__(
        self,
        url: URL,
        size_bytes: int,
        content_type: str = "application/octet-stream",
        server_time_ns: int = 0,
        body: object = None,
        redirect_to: Optional[URL] = None,
    ):
        self.url = url
        self.size_bytes = size_bytes
        self.content_type = content_type
        self.server_time_ns = server_time_ns
        self.body = body
        self.redirect_to = redirect_to


class NetworkResponse:
    """What a completed request delivers."""

    __slots__ = ("url", "status", "resource", "from_cache", "final_url")

    def __init__(
        self,
        url: URL,
        status: int,
        resource: Optional[Resource],
        from_cache: bool,
        final_url: Optional[URL] = None,
    ):
        self.url = url
        self.status = status
        self.resource = resource
        self.from_cache = from_cache
        self.final_url = final_url or url

    @property
    def ok(self) -> bool:
        """True for 2xx statuses."""
        return 200 <= self.status < 300


class NetworkRequest:
    """In-flight request handle (cancellable)."""

    _ids = itertools.count(1)

    def __init__(self, url: URL, task):
        self.id = next(self._ids)
        self.url = url
        self._task = task
        self.cancelled = False
        self.completed = False
        #: True when a fault window swallowed this request's response.
        self.dropped = False

    def cancel(self) -> None:
        """Abort the request; its completion task will not run."""
        if self.completed:
            return
        self.cancelled = True
        if self._task is not None:
            self._task.cancel()


class NetworkFault:
    """One declarative fault window on the simulated network.

    Applies to requests *issued* while ``from_ns <= now < until_ns`` whose
    URL path contains ``path_contains`` (empty matches everything).
    ``kind`` is ``"latency"`` (adds ``extra_ns`` to the completion delay)
    or ``"drop"`` (the response never arrives — the request stays in
    flight forever, like a silently blackholed connection).
    """

    __slots__ = ("kind", "from_ns", "until_ns", "extra_ns", "path_contains")

    def __init__(
        self,
        kind: str,
        from_ns: int,
        until_ns: int,
        extra_ns: int = 0,
        path_contains: str = "",
    ):
        if kind not in ("latency", "drop"):
            raise SimulationError(f"unknown network fault kind {kind!r}")
        self.kind = kind
        self.from_ns = from_ns
        self.until_ns = until_ns
        self.extra_ns = extra_ns
        self.path_contains = path_contains

    def matches(self, now: int, url: URL) -> bool:
        """Does this window apply to a request issued now for ``url``?"""
        if not (self.from_ns <= now < self.until_ns):
            return False
        return self.path_contains in url.path


class SimNetwork:
    """The network + HTTP cache shared by all threads of a browser."""

    def __init__(
        self,
        rng: random.Random,
        base_latency_ns: int = ms(8),
        jitter_ns: int = ms(2),
        bandwidth_bytes_per_ms: int = 1_200,  # ~9.5 Mbit/s ADSL, paper §V-A
        cache_latency_ns: int = us(200),
    ):
        self.rng = rng
        self.base_latency_ns = base_latency_ns
        self.jitter_ns = jitter_ns
        self.bandwidth_bytes_per_ms = bandwidth_bytes_per_ms
        self.cache_latency_ns = cache_latency_ns
        self._resources: Dict[str, Resource] = {}
        self._cache: Dict[str, bool] = {}
        self.requests_served = 0
        self.requests_dropped = 0
        #: Declarative fault windows (see :class:`NetworkFault`); fault
        #: plans append here via the browser interceptor hook.
        self.faults: List[NetworkFault] = []
        #: Requests issued but not yet completed/cancelled/dropped —
        #: the population a forced-abort fault picks from.
        self.inflight: List[NetworkRequest] = []

    # ------------------------------------------------------------------
    # hosting
    # ------------------------------------------------------------------
    def host(self, resource: Resource) -> Resource:
        """Register a resource at its URL."""
        self._resources[resource.url.serialize()] = resource
        return resource

    def host_simple(
        self,
        url: URL,
        size_bytes: int,
        content_type: str = "text/plain",
        server_time_ns: int = 0,
        body: object = None,
    ) -> Resource:
        """Convenience: build and host a resource."""
        return self.host(Resource(url, size_bytes, content_type, server_time_ns, body))

    def lookup(self, url: URL) -> Optional[Resource]:
        """Find the hosted resource for ``url`` (no side effects)."""
        return self._resources.get(url.serialize())

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------
    def is_cached(self, url: URL) -> bool:
        """True if ``url`` is in the HTTP cache."""
        return self._cache.get(url.serialize(), False)

    def flush_cache(self, url: Optional[URL] = None) -> None:
        """Evict one URL (or everything) from the cache."""
        if url is None:
            self._cache.clear()
        else:
            self._cache.pop(url.serialize(), None)

    def prime_cache(self, url: URL) -> None:
        """Mark ``url`` as cached without a request."""
        self._cache[url.serialize()] = True

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def transfer_time(self, size_bytes: int) -> int:
        """Pure bandwidth delay for a payload."""
        if self.bandwidth_bytes_per_ms <= 0:
            raise SimulationError("bandwidth must be positive")
        return int(size_bytes / self.bandwidth_bytes_per_ms * MS)

    def request(
        self,
        loop: EventLoop,
        url: URL,
        on_complete: Callable[[NetworkResponse], None],
        use_cache: bool = True,
    ) -> NetworkRequest:
        """Issue a request; ``on_complete`` runs as a NETWORK task."""
        self.requests_served += 1
        resource = self._resources.get(url.serialize())
        delay = self._completion_delay(url, resource, use_cache)
        from_cache = use_cache and self.is_cached(url) and resource is not None

        if resource is not None and resource.redirect_to is not None:
            response = NetworkResponse(
                url, 200, resource, from_cache, final_url=resource.redirect_to
            )
        elif resource is not None:
            response = NetworkResponse(url, 200, resource, from_cache)
            if use_cache:
                self._cache[url.serialize()] = True
        else:
            response = NetworkResponse(url, 404, None, False)

        request = NetworkRequest(url, None)
        now = loop.sim.now
        for fault in self.faults:
            if fault.kind == "latency" and fault.matches(now, url):
                delay += fault.extra_ns
                if loop.sim.tracer.enabled:
                    loop.sim.tracer.metrics.counter("network.faults.latency").inc()

        if any(f.kind == "drop" and f.matches(now, url) for f in self.faults):
            # blackholed: no completion task is ever posted, the request
            # simply stays pending (abort still works on it)
            request.dropped = True
            self.requests_dropped += 1
            self.inflight.append(request)
            tracer = loop.sim.tracer
            if tracer.enabled:
                tracer.instant(
                    loop.sim.trace_pid,
                    loop.sim.trace_context,
                    "fault.net-drop",
                    now,
                    cat="fault",
                    args={"url": url.serialize()},
                )
                tracer.metrics.counter("network.faults.dropped").inc()
            return request

        def deliver() -> None:
            request.completed = True
            if request in self.inflight:
                self.inflight.remove(request)
            on_complete(response)

        task = loop.post(
            deliver,
            delay=delay,
            source=TaskSource.NETWORK,
            label=f"net:{url.path}",
        )
        request._task = task
        self.inflight.append(request)
        return request

    def abort_inflight(self, path_contains: str = "") -> int:
        """Force-abort matching in-flight requests (fault injection).

        Cancels every pending request whose path contains
        ``path_contains`` — the server resetting the connection mid
        transfer.  Returns the number of requests aborted.
        """
        aborted = 0
        for request in list(self.inflight):
            if request.completed or request.cancelled:
                self.inflight.remove(request)
                continue
            if path_contains in request.url.path:
                request.cancel()
                self.inflight.remove(request)
                aborted += 1
        return aborted

    def _completion_delay(self, url: URL, resource: Optional[Resource], use_cache: bool) -> int:
        if use_cache and resource is not None and self.is_cached(url):
            return self.cache_latency_ns
        jitter = self.rng.randint(0, self.jitter_ns) if self.jitter_ns > 0 else 0
        delay = self.base_latency_ns + jitter
        if resource is not None:
            delay += self.transfer_time(resource.size_bytes) + resource.server_time_ns
        return delay


def make_origin(host: str, scheme: str = "https") -> Origin:
    """Shorthand for building origins in workloads and tests."""
    return Origin(scheme, host)
