"""Discrete-event simulation core.

The :class:`Simulator` owns virtual time (integer nanoseconds, see
:mod:`repro.runtime.simtime`) and a priority queue of timed callbacks.  Every
other runtime component — event loops, timers, the network, the renderer —
drives itself by scheduling callbacks here.

Execution frames
----------------

JavaScript tasks run *for a duration*: a callback that busy-loops for 3 ms
occupies its thread for 3 ms of virtual time, during which
``performance.now()`` advances and cross-thread messages pile up unprocessed.
We model this with :class:`ExecutionFrame`: while a task's Python callable is
running, the frame accumulates ``elapsed`` cost (every simulated operation
calls :meth:`ExecutionFrame.consume`), and :attr:`Simulator.now` reports the
*local* time ``start + elapsed``.  When the callable returns, the owning
event loop marks its thread busy until that local time, so subsequent tasks
queue behind it exactly as in a real event loop.

Cross-thread side effects performed mid-task (posting a message, starting a
network request) are stamped with the local time, which keeps the global
event order causally consistent even though Python executes the overlapping
tasks sequentially.
"""

from __future__ import annotations

import os
from collections import deque
from contextlib import contextmanager
from typing import Callable, List, Optional, Tuple

from ..errors import DeadlockError, SimulationError
from ..trace import current_tracer
from .wheel import G_BITS, SLOT_MASK, TimerWheel, _L1_SHIFT

#: Sentinel upper bound for ``run(until=None)``: one comparison against
#: +inf per dispatch is cheaper than re-testing ``until is not None``.
_NO_BOUND = float("inf")

#: Environment variable overriding the default runaway-loop backstop.
MAX_EVENTS_ENV = "REPRO_MAX_EVENTS"

#: Built-in runaway-experiment backstop (events per run/run_until call).
DEFAULT_MAX_EVENTS = 50_000_000

#: How many recently dispatched labels a SimulationError reports.
RECENT_LABEL_WINDOW = 20


def default_max_events() -> int:
    """The effective ``max_events`` backstop: ``$REPRO_MAX_EVENTS`` or the
    built-in default.

    Fuzz campaigns lower this (a perturbed schedule can loop where the
    nominal one terminates) so a runaway run fails fast with context
    instead of spinning through fifty million events.
    """
    raw = os.environ.get(MAX_EVENTS_ENV, "")
    if not raw:
        return DEFAULT_MAX_EVENTS
    try:
        value = int(raw)
    except ValueError:
        raise SimulationError(
            f"{MAX_EVENTS_ENV} must be an integer, got {raw!r}"
        ) from None
    if value <= 0:
        raise SimulationError(f"{MAX_EVENTS_ENV} must be positive, got {value}")
    return value


#: The ambient schedule perturber (see :func:`perturbation`); ``None``
#: outside an exploration run.  Mirrors the tracer's capture pattern:
#: simulators snapshot it at construction time.
_active_perturber = None


def current_perturber():
    """The ambient schedule perturber, or ``None``."""
    return _active_perturber


@contextmanager
def perturbation(perturber):
    """Install ``perturber`` for every simulator built inside the block.

    The perturber sees every :meth:`Simulator.schedule` call (and, through
    the event loops, every posted task) and may push events later in
    virtual time — the schedule-space exploration hook used by
    :mod:`repro.explore`.  Nesting restores the previous perturber on
    exit.
    """
    global _active_perturber
    previous = _active_perturber
    _active_perturber = perturber
    try:
        yield perturber
    finally:
        _active_perturber = previous


class ScheduledCall:
    """Handle for a scheduled callback; supports cancellation.

    ``sim`` back-references the owning simulator while the call sits in
    its ready queue — cancellation decrements the simulator's live-event
    count in O(1) — and is cleared on dispatch so a late ``cancel()``
    cannot double-count.
    """

    __slots__ = ("time", "seq", "fn", "cancelled", "label", "sim")

    def __init__(
        self,
        time: int,
        seq: int,
        fn: Callable[[], None],
        label: str,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.label = label
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            sim._live -= 1
            self.sim = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall {self.label!r} at {self.time} ({state})>"


class ExecutionFrame:
    """Cost accounting for one running task.

    ``start`` is the virtual time at which the task began executing;
    ``elapsed`` is the simulated CPU time consumed so far by the task's
    synchronous code.
    """

    __slots__ = ("start", "elapsed", "thread_name")

    def __init__(self, start: int, thread_name: str):
        self.start = start
        self.elapsed = 0
        self.thread_name = thread_name

    @property
    def local_now(self) -> int:
        """The thread-local current time inside this task."""
        return self.start + self.elapsed

    def consume(self, cost_ns: int) -> None:
        """Account ``cost_ns`` of synchronous CPU work to this task."""
        if cost_ns < 0:
            raise SimulationError(f"negative cost: {cost_ns}")
        self.elapsed += cost_ns


class Simulator:
    """The global discrete-event scheduler.

    Only one task's Python code runs at a time; virtual-time overlap between
    threads is reconstructed from frame accounting (see module docstring).
    """

    def __init__(self):
        self._time = 0
        # Dual-lane ready queue.  Discrete-event workloads schedule mostly
        # in non-decreasing time order, so an in-order append goes to the
        # FIFO lane (deque of ScheduledCall, O(1) push/pop) and only
        # out-of-order schedules pay the timed lane — a hierarchical
        # timer wheel (see repro.runtime.wheel) whose push is O(1) and
        # whose per-slot sort replaces the old heap's O(log n) Python
        # tuple comparisons.  Dispatch takes the (time, seq) minimum
        # across both lanes, so the total order is exactly the
        # single-heap order the seed used.
        self._wheel = TimerWheel()
        self._fifo: deque = deque()
        # Seed-era heap lane: unused by this class, but kept so the
        # frozen ReferenceSimulator subclass (harness.bench_reference)
        # can keep exercising the original single-heap hot path.
        self._heap: List[Tuple[int, int, ScheduledCall]] = []
        self._seq = 0
        #: Scheduled, non-cancelled events — maintained on schedule/
        #: cancel/dispatch so ``pending_events`` is O(1).
        self._live = 0
        self._frames: List[ExecutionFrame] = []
        self.events_processed = 0
        # per-run deterministic id streams for traced objects (DOM nodes,
        # shared buffers...) — process-global counters would break the
        # byte-identical-capture guarantee
        self._object_seqs: dict = {}
        # label/ordinal of the scheduled call currently dispatching, for
        # attributing frameless (native) work in traces
        self._dispatch_label = "init"
        self._dispatch_ordinal = 0
        #: The active capture's tracer (the shared disabled one outside a
        #: capture); every runtime/kernel component reaches it through its
        #: simulator.  ``trace_pid`` is this run's Chrome-trace process id.
        self.tracer = current_tracer()
        self.trace_pid = self.tracer.register_run() if self.tracer.enabled else 0
        #: The ambient schedule perturber (``None`` outside an exploration
        #: run); consulted on every schedule() and notified per dispatch.
        self.perturber = current_perturber()
        #: Labels of the most recently dispatched events, newest last —
        #: context for runaway-loop errors.
        self._recent_labels: deque = deque(maxlen=RECENT_LABEL_WINDOW)
        #: True only while :meth:`run` is draining (and no perturber is
        #: installed).  Event loops may then dispatch a same-time follow-up
        #: task inline instead of scheduling a wake, provided no other
        #: simulator event could interleave — see EventLoop._wake.  Kept
        #: False under step()/run_until(), where callers observe per-event
        #: granularity (a predicate may become true between two same-time
        #: events).
        self._inline_wake_ok = False

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time.

        Inside a running task this is the task-local time (start + consumed
        cost); between tasks it is the time of the event being dispatched.
        """
        if self._frames:
            return self._frames[-1].local_now
        return self._time

    @property
    def dispatch_time(self) -> int:
        """Time of the most recent event pop (ignores frame progress)."""
        return self._time

    # ------------------------------------------------------------------
    # frames
    # ------------------------------------------------------------------
    def push_frame(self, frame: ExecutionFrame) -> None:
        """Enter a task execution frame (event loops call this)."""
        self._frames.append(frame)

    def pop_frame(self) -> ExecutionFrame:
        """Leave the current task execution frame."""
        if not self._frames:
            raise SimulationError("pop_frame with no active frame")
        return self._frames.pop()

    @property
    def current_frame(self) -> Optional[ExecutionFrame]:
        """The innermost active execution frame, if any."""
        return self._frames[-1] if self._frames else None

    def consume(self, cost_ns: int) -> None:
        """Account synchronous cost to the current frame (no-op outside)."""
        if self._frames:
            self._frames[-1].consume(cost_ns)

    @property
    def native_context(self) -> str:
        """Trace context for work running outside any execution frame.

        Each simulator dispatch gets a distinct ``native:<label>#<n>``
        context (``n`` is the dispatch ordinal, deterministic per run), so
        two frameless callbacks are never presented as sequenced on one
        pseudo-thread when they are in fact causally unrelated.
        """
        return f"native:{self._dispatch_label}#{self._dispatch_ordinal}"

    @property
    def trace_context(self) -> str:
        """The thread to attribute current work to in trace events:
        the running frame's thread, or the native pseudo-thread."""
        if self._frames:
            return self._frames[-1].thread_name
        return self.native_context

    def next_object_seq(self, prefix: str) -> int:
        """Next id in the per-run ``prefix`` stream (1-based, deterministic)."""
        seq = self._object_seqs.get(prefix, 0) + 1
        self._object_seqs[prefix] = seq
        return seq

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, at: int, fn: Callable[[], None], label: str = "") -> ScheduledCall:
        """Schedule ``fn`` to run at absolute virtual time ``at``.

        ``at`` may not be in the past relative to the *dispatch* clock; it
        may be earlier than the current frame's local time (a message sent
        late in a long task still has a send-time stamp inside the task).
        """
        if at < self._time:
            raise SimulationError(
                f"cannot schedule at {at} before dispatch time {self._time}"
            )
        perturber = self.perturber
        if perturber is not None:
            # exploration hook: perturbations may only *delay* events —
            # moving one earlier could violate causality (a message
            # delivered before it was sent), which would explore schedules
            # the real platform can never produce
            at = max(perturber.perturb(self, at, label), at)
        seq = self._seq + 1
        self._seq = seq
        call = ScheduledCall(at, seq, fn, label, self)
        fifo = self._fifo
        # seq strictly increases, so an equal-time append keeps the FIFO
        # lane sorted by (time, seq)
        if not fifo or at >= fifo[-1].time:
            fifo.append(call)
        else:
            wheel = self._wheel
            # TimerWheel.push's level-0 fast path, inlined: a rearming
            # timer storm pays this per schedule, and the extra call
            # frame showed up in profiles (keep in sync with wheel.py)
            if at >= wheel._ready_until and not ((at ^ wheel._base) >> _L1_SHIFT):
                index = (at >> G_BITS) & SLOT_MASK
                slots0 = wheel._slots0
                slot = slots0[index]
                if slot is None:
                    slots0[index] = [call]
                    wheel._occupied[0] |= 1 << index
                else:
                    slot.append(call)
                wheel._stored += 1
            else:
                wheel.push(call)
        self._live += 1
        return call

    def schedule_after(self, delay: int, fn: Callable[[], None], label: str = "") -> ScheduledCall:
        """Schedule ``fn`` after ``delay`` ns of *local* time."""
        return self.schedule(self.now + delay, fn, label)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def _pop_next(self) -> Optional[ScheduledCall]:
        """Pop the earliest live call across both lanes (``None`` if drained)."""
        fifo = self._fifo
        wheel = self._wheel
        while True:
            head = wheel.peek()
            if fifo:
                call = fifo[0]
                if head is not None and (
                    head.time < call.time
                    or (head.time == call.time and head.seq < call.seq)
                ):
                    call = wheel.pop()
                else:
                    fifo.popleft()
            elif head is not None:
                call = wheel.pop()
            else:
                return None
            if not call.cancelled:
                return call

    def _peek_time(self) -> Optional[int]:
        """Time of the earliest queued entry, cancelled entries included.

        A conservative bound for the event loops' inline-wake check: a
        cancelled head makes the loop take the normal schedule-a-wake
        path, which is always correct, just slower.
        """
        fifo = self._fifo
        head = self._wheel.peek()
        if fifo:
            t = fifo[0].time
            if head is not None and head.time < t:
                return head.time
            return t
        if head is not None:
            return head.time
        return None

    def _dispatch(self, call: ScheduledCall) -> None:
        """Shared (slow-path) dispatch used by :meth:`step` / :meth:`run_until`."""
        self._time = call.time
        self._live -= 1
        call.sim = None
        n = self.events_processed + 1
        self.events_processed = n
        label = call.label or "call"
        self._dispatch_label = label
        self._dispatch_ordinal = n
        self._recent_labels.append(label)
        if self.perturber is not None:
            self.perturber.on_dispatch(label)
        call.fn()

    def step(self) -> bool:
        """Dispatch the single earliest pending event.

        Returns ``False`` when no events remain.
        """
        call = self._pop_next()
        if call is None:
            return False
        prev_inline = self._inline_wake_ok
        self._inline_wake_ok = False  # single-step granularity is observable
        try:
            self._dispatch(call)
        finally:
            self._inline_wake_ok = prev_inline
        return True

    def recent_dispatch_context(self) -> str:
        """The last ~20 dispatched labels, oldest first (error context)."""
        if not self._recent_labels:
            return "(nothing dispatched yet)"
        return " -> ".join(self._recent_labels)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue empties or virtual time passes ``until``.

        ``max_events`` is a runaway-experiment backstop (default:
        ``$REPRO_MAX_EVENTS`` or :data:`DEFAULT_MAX_EVENTS`); hitting it
        raises :class:`SimulationError` — with the recently dispatched
        task labels for context — rather than spinning forever.
        """
        limit = default_max_events() if max_events is None else max_events
        bound = _NO_BOUND if until is None else until
        # Hot loop: everything reachable per dispatch is bound to a local
        # once, the lane selection is inlined (no step() call per event),
        # and with the tracer disabled a dispatch allocates nothing — the
        # popped call and its queue entry were allocated at schedule time.
        wheel = self._wheel
        # the ready-run list is mutated in place, never rebound, so one
        # binding outside the loop stays valid across primes
        wready = wheel._ready
        wheel_peek = wheel.peek
        fifo = self._fifo
        fifo_popleft = fifo.popleft
        recent_append = self._recent_labels.append
        perturber = self.perturber
        # The backstop counts events_processed deltas rather than loop
        # iterations: event loops may dispatch same-time tasks inline
        # (bumping events_processed without a queue round-trip), and those
        # must count against the runaway limit exactly as if each had been
        # a scheduled wake.
        base = self.events_processed
        prev_inline = self._inline_wake_ok
        self._inline_wake_ok = perturber is None
        try:
            while True:
                # peek the earliest queued entry (cancelled ones included,
                # as the bounded stop condition predates cancellation
                # pruning); the wheel head is its ready-run front,
                # priming (slot drain/cascade) only when the run is empty
                if wready:
                    whead = wready[wheel._pos]
                elif wheel._stored:
                    whead = wheel_peek()
                else:
                    whead = None
                if fifo:
                    call = fifo[0]
                    head_time = call.time
                    use_fifo = True
                    if whead is not None:
                        wt = whead.time
                        if wt < head_time or (wt == head_time and whead.seq < call.seq):
                            head_time = wt
                            use_fifo = False
                elif whead is not None:
                    head_time = whead.time
                    use_fifo = False
                else:
                    break
                if head_time > bound:
                    self._time = until
                    return
                if use_fifo:
                    fifo_popleft()
                else:
                    call = whead
                    pos = wheel._pos + 1
                    if pos == len(wready):
                        wready.clear()
                        wheel._pos = 0
                    else:
                        wheel._pos = pos
                if call.cancelled:
                    # seed-faithful step semantics: once the head passed
                    # the bound check, the next *live* event dispatches
                    # without a re-check, and a fully-cancelled remainder
                    # returns early
                    call = self._pop_next()
                    if call is None:
                        return
                self._time = call.time
                self._live -= 1
                call.sim = None
                n = self.events_processed + 1
                self.events_processed = n
                label = call.label or "call"
                self._dispatch_label = label
                self._dispatch_ordinal = n
                recent_append(label)
                if perturber is not None:
                    perturber.on_dispatch(label)
                call.fn()
                if self.events_processed - base > limit:
                    raise SimulationError(
                        f"simulation exceeded {limit} events (runaway loop?); "
                        f"last dispatched: {self.recent_dispatch_context()}"
                    )
        finally:
            self._inline_wake_ok = prev_inline
        if until is not None and until > self._time:
            self._time = until

    def run_until(
        self, predicate: Callable[[], bool], max_events: Optional[int] = None
    ) -> None:
        """Run until ``predicate()`` becomes true.

        Raises :class:`DeadlockError` if the event queue drains first: the
        awaited completion can then never occur.  ``max_events`` defaults
        like :meth:`run`.
        """
        limit = default_max_events() if max_events is None else max_events
        pop_next = self._pop_next
        dispatch = self._dispatch
        processed = 0
        # Inline wake batching stays off here: the predicate is checked
        # between events, so per-event granularity is observable (it may
        # become true between two same-time dispatches).
        prev_inline = self._inline_wake_ok
        self._inline_wake_ok = False
        try:
            while not predicate():
                call = pop_next()
                if call is None:
                    raise DeadlockError(
                        "event queue drained before the awaited condition became true"
                    )
                dispatch(call)
                processed += 1
                if processed > limit:
                    raise SimulationError(
                        f"run_until exceeded {limit} events (runaway loop?); "
                        f"last dispatched: {self.recent_dispatch_context()}"
                    )
        finally:
            self._inline_wake_ok = prev_inline

    @property
    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled events (O(1): the count is
        maintained on schedule/cancel/dispatch, never by scanning)."""
        return self._live
