"""``indexedDB`` with private-browsing semantics.

CVE-2017-7843: Firefox kept private-browsing indexedDB data reachable
across private sessions, letting a site fingerprint users who believed
private mode was ephemeral.  The store models both the correct behaviour
(per-session, discarded on session end) and the buggy one (writes land in
a persistent store shared across private sessions).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..errors import SecurityError
from ..trace import state_access
from .origin import Origin

#: Cost of one indexedDB operation (transaction + (de)serialisation).
IDB_OP_COST = 15_000


class IndexedDBStore:
    """Browser-wide indexedDB state (all origins, both modes)."""

    def __init__(self, sim, persist_private_writes: bool = False):
        self.sim = sim
        #: The buggy behaviour flag (CVE-2017-7843).
        self.persist_private_writes = persist_private_writes
        self._persistent: Dict[Tuple[str, str], Any] = {}
        self._private_session: Dict[Tuple[str, str], Any] = {}
        #: Set by JSKernel's CVE policy to deny private-mode access.
        self.private_access_blocked = False

    # ------------------------------------------------------------------
    def put(self, origin: Origin, key: str, value: Any, private_mode: bool) -> None:
        """``objectStore.put(value, key)``."""
        self.sim.consume(IDB_OP_COST)
        state_access(
            self.sim,
            f"idb:{origin.serialize()}:{key}",
            "write",
            "idb",
            access="put",
            detail={"private": private_mode},
        )
        self._check_policy(private_mode)
        slot = (origin.serialize(), key)
        if private_mode and not self.persist_private_writes:
            self._private_session[slot] = value
        else:
            # correct browsers write non-private data persistently; the
            # buggy path ALSO lands private writes here
            self._persistent[slot] = value

    def get(self, origin: Origin, key: str, private_mode: bool) -> Optional[Any]:
        """``objectStore.get(key)``."""
        self.sim.consume(IDB_OP_COST)
        state_access(
            self.sim,
            f"idb:{origin.serialize()}:{key}",
            "read",
            "idb",
            access="get",
            detail={"private": private_mode},
        )
        self._check_policy(private_mode)
        slot = (origin.serialize(), key)
        if private_mode:
            if slot in self._private_session:
                return self._private_session[slot]
            if self.persist_private_writes:
                # bug: private reads can see the persistent store
                return self._persistent.get(slot)
            return None
        return self._persistent.get(slot)

    def end_private_session(self) -> None:
        """Close the private window: ephemeral data must vanish."""
        self._private_session.clear()

    def _check_policy(self, private_mode: bool) -> None:
        if private_mode and self.private_access_blocked:
            raise SecurityError(
                "indexedDB access in private browsing denied by policy"
            )

    # ------------------------------------------------------------------
    @property
    def persistent_size(self) -> int:
        """Number of keys in the persistent store (tests/analysis)."""
        return len(self._persistent)
