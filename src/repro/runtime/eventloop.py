"""Per-thread event loop with busy-time accounting.

Each JavaScript thread (the main thread and every worker) owns one
:class:`EventLoop`.  The loop holds a macrotask queue ordered by ready time
and a microtask queue drained after each macrotask, mirroring the HTML event
loop processing model closely enough for the paper's purposes: ordering,
queueing delays and interleaving are exact in virtual time.

Busy-time model
---------------

When the loop dispatches a task it opens an :class:`ExecutionFrame` on the
simulator, charges the task's fixed cost plus the loop's per-task dispatch
cost, runs the Python callback (which may consume more cost), drains
microtasks in the same frame, and finally marks the thread busy until the
frame's local end time.  A task whose ready time falls inside another task's
busy window is dispatched when the thread frees up — exactly the queueing
behaviour implicit clocks measure.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..errors import SimulationError
from ..trace import QUEUE_DELAY_BUCKETS_NS
from .simulator import ExecutionFrame, ScheduledCall, Simulator
from .task import Microtask, Task, TaskRecord, TaskSource


class EventLoop:
    """One thread's macrotask + microtask queues, driven by the simulator."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        task_dispatch_cost: int = 2_000,
        record_trace: bool = False,
    ):
        self.sim = sim
        self.name = name
        self.task_dispatch_cost = task_dispatch_cost
        self._queue: List[Tuple[int, int, Task]] = []
        # deque: the checkpoint pops from the left, and list.pop(0) is
        # O(n) — quadratic over a promise-heavy task's microtask chain
        self._microtasks: Deque[Microtask] = deque()
        self.busy_until = 0
        self.stopped = False
        self._wakeup: Optional[ScheduledCall] = None
        self._in_task = False
        self.tasks_run = 0
        self.record_trace = record_trace
        self.trace: List[TaskRecord] = []
        #: Observers called as fn(task, start, end) after each dispatch.
        self.task_observers: List[Callable[[Task, int, int], None]] = []

    # ------------------------------------------------------------------
    # posting work
    # ------------------------------------------------------------------
    def post_task(self, task: Task) -> Task:
        """Enqueue a macrotask; it runs no earlier than ``task.ready_time``."""
        if self.stopped:
            return task  # terminated workers silently drop new work
        task.enqueue_time = self.sim.now
        perturber = self.sim.perturber
        if perturber is not None:
            # schedule-space exploration hook: a perturbation may delay a
            # task's ready time (never advance it), reordering it against
            # tasks from other sources — see repro.explore.perturb
            task.ready_time = max(
                perturber.perturb(self.sim, task.ready_time, task.label or task.source.value),
                task.ready_time,
            )
        if task.ready_time < self.sim.dispatch_time:
            task.ready_time = self.sim.dispatch_time
        heapq.heappush(self._queue, (task.ready_time, task.id, task))
        self._arm()
        return task

    def post(
        self,
        callback: Callable[..., None],
        *args,
        delay: int = 0,
        source: TaskSource = TaskSource.SCRIPT,
        cost: int = 0,
        label: str = "",
    ) -> Task:
        """Convenience wrapper building and posting a :class:`Task`."""
        task = Task(
            callback,
            args,
            source=source,
            ready_time=self.sim.now + delay,
            cost=cost,
            label=label,
        )
        return self.post_task(task)

    def post_microtask(self, micro: Microtask) -> None:
        """Enqueue a microtask.

        If the loop is mid-task the microtask runs at the current task's
        microtask checkpoint; otherwise a carrier macrotask is created so
        the microtask still runs asynchronously (matches queueMicrotask
        semantics from non-task contexts).
        """
        if self.stopped:
            return
        self._microtasks.append(micro)
        if not self._in_task:
            self.post(
                lambda: None,
                source=TaskSource.SCRIPT,
                label="microtask-checkpoint",
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Terminate the loop: drop all queued work, refuse new work."""
        self.stopped = True
        self._queue.clear()
        self._microtasks.clear()
        if self._wakeup is not None:
            self._wakeup.cancel()
            self._wakeup = None

    @property
    def pending_tasks(self) -> int:
        """Number of queued, non-cancelled macrotasks."""
        return sum(1 for _r, _i, t in self._queue if not t.cancelled)

    @property
    def idle(self) -> bool:
        """True when nothing is queued and no task is executing."""
        return not self._in_task and self.pending_tasks == 0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _next_task_time(self) -> Optional[int]:
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        ready = self._queue[0][0]
        return max(ready, self.busy_until, self.sim.dispatch_time)

    def _arm(self) -> None:
        """(Re)schedule the simulator wakeup for the next runnable task."""
        if self.stopped or self._in_task:
            return
        run_at = self._next_task_time()
        if run_at is None:
            return
        if self._wakeup is not None and not self._wakeup.cancelled:
            if self._wakeup.time <= run_at:
                return
            self._wakeup.cancel()
        self._wakeup = self.sim.schedule(run_at, self._wake, label=f"{self.name}:wake")

    def _wake(self) -> None:
        self._wakeup = None
        if self.stopped:
            return
        run_at = self._next_task_time()
        if run_at is None:
            return
        if run_at > self.sim.dispatch_time:
            self._arm()
            return
        _ready, _id, task = heapq.heappop(self._queue)
        if task.cancelled:
            self._arm()
            return
        self._run_task(task)
        self._arm()

    def _run_task(self, task: Task) -> None:
        start = max(self.sim.dispatch_time, self.busy_until, task.ready_time)
        frame = ExecutionFrame(start, self.name)
        self.sim.push_frame(frame)
        self._in_task = True
        try:
            frame.consume(self.task_dispatch_cost + task.cost)
            task.callback(*task.args)
            self._drain_microtasks(frame)
        finally:
            self._in_task = False
            self.sim.pop_frame()
        end = frame.local_now
        self.busy_until = max(self.busy_until, end)
        self.tasks_run += 1
        if self.record_trace:
            self.trace.append(TaskRecord(task.id, task.label, task.source, start, end))
        tracer = self.sim.tracer
        if tracer.enabled:
            queue_delay = max(start - task.ready_time, 0)
            tracer.complete(
                self.sim.trace_pid,
                self.name,
                task.label,
                start,
                end,
                cat="task",
                args={"source": task.source.value, "queue_delay_ns": queue_delay},
            )
            metrics = tracer.metrics
            metrics.counter(f"eventloop.tasks.{task.source.value}").inc()
            metrics.histogram(
                f"eventloop.queue_delay_ns.{self.name}", QUEUE_DELAY_BUCKETS_NS
            ).record(queue_delay)
        for observer in list(self.task_observers):
            observer(task, start, end)

    def _drain_microtasks(self, frame: ExecutionFrame) -> None:
        """Run the microtask checkpoint (bounded to catch runaway chains)."""
        budget = 100_000
        drained = 0
        while self._microtasks:
            micro = self._microtasks.popleft()
            frame.consume(micro.cost)
            micro.callback(*micro.args)
            drained += 1
            budget -= 1
            if budget <= 0:
                raise SimulationError(
                    f"microtask checkpoint on {self.name!r} exceeded 100000 "
                    "microtasks (runaway promise chain?)"
                )
        tracer = self.sim.tracer
        if drained and tracer.enabled:
            tracer.instant(
                self.sim.trace_pid,
                self.name,
                "microtask-checkpoint",
                frame.local_now,
                cat="task",
                args={"count": drained},
            )
            tracer.metrics.counter(f"eventloop.microtasks.{self.name}").inc(drained)
