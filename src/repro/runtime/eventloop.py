"""Per-thread event loop with busy-time accounting.

Each JavaScript thread (the main thread and every worker) owns one
:class:`EventLoop`.  The loop holds a macrotask queue ordered by ready time
and a microtask queue drained after each macrotask, mirroring the HTML event
loop processing model closely enough for the paper's purposes: ordering,
queueing delays and interleaving are exact in virtual time.

Busy-time model
---------------

When the loop dispatches a task it opens an :class:`ExecutionFrame` on the
simulator, charges the task's fixed cost plus the loop's per-task dispatch
cost, runs the Python callback (which may consume more cost), drains
microtasks in the same frame, and finally marks the thread busy until the
frame's local end time.  A task whose ready time falls inside another task's
busy window is dispatched when the thread frees up — exactly the queueing
behaviour implicit clocks measure.

Hot path
--------

The macrotask queue is dual-lane like the simulator's ready queue: tasks
posted in non-decreasing ``(ready_time, id)`` order ride a FIFO deque,
out-of-order posts go to a heap, and the pop takes the minimum across both
— the same total order as a single heap at a fraction of the cost for the
common in-order workload.  The dispatch path binds its hot attributes to
locals, builds no strings when the tracer is disabled, and reuses cached
metric handles when it is enabled (see DESIGN.md §12).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..errors import SimulationError
from ..trace import QUEUE_DELAY_BUCKETS_NS
from .simulator import ExecutionFrame, ScheduledCall, Simulator
from .task import Microtask, Task, TaskRecord, TaskSource

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Same-time tasks one wake dispatch may run inline before falling back to
#: a scheduled wake.  The fallback keeps the simulator's ``max_events``
#: backstop effective against runaway same-time task chains while costing
#: one queue round-trip per batch.
_INLINE_BATCH_LIMIT = 100

#: Heap-lane size beyond which a wake converts it to the FIFO lane with
#: one sorted pass (see EventLoop._flush_heap_lane).
_HEAP_FLUSH_THRESHOLD = 32


def _task_order(task: "Task") -> "Tuple[int, int]":
    return (task.ready_time, task.id)


class EventLoop:
    """One thread's macrotask + microtask queues, driven by the simulator."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        task_dispatch_cost: int = 2_000,
        record_trace: bool = False,
    ):
        self.sim = sim
        self.name = name
        self.task_dispatch_cost = task_dispatch_cost
        # dual-lane macrotask queue: in-order posts ride the FIFO deque,
        # out-of-order posts go to the heap (see module docstring)
        self._queue: List[Tuple[int, int, Task]] = []
        self._tfifo: Deque[Task] = deque()
        # deque: the checkpoint pops from the left, and list.pop(0) is
        # O(n) — quadratic over a promise-heavy task's microtask chain
        self._microtasks: Deque[Microtask] = deque()
        self.busy_until = 0
        self.stopped = False
        self._wakeup: Optional[ScheduledCall] = None
        self._in_task = False
        self.tasks_run = 0
        self.record_trace = record_trace
        self.trace: List[TaskRecord] = []
        #: Observers called as fn(task, start, end) after each dispatch.
        self.task_observers: List[Callable[[Task, int, int], None]] = []
        # the wakeup label is per-loop constant: building it per _arm()
        # would allocate a string for every posted task
        self._wake_label = f"{name}:wake"
        # cached metric handles, rebound when the capture's tracer changes
        # (Tracer.attach can swap sim.tracer after construction)
        self._mh_tracer = None
        self._mh_task_counters: dict = {}
        self._mh_delay_hist = None
        self._mh_micro_counter = None

    # ------------------------------------------------------------------
    # posting work
    # ------------------------------------------------------------------
    def post_task(self, task: Task) -> Task:
        """Enqueue a macrotask; it runs no earlier than ``task.ready_time``."""
        if self.stopped:
            return task  # terminated workers silently drop new work
        task.enqueue_time = self.sim.now
        perturber = self.sim.perturber
        if perturber is not None:
            # schedule-space exploration hook: a perturbation may delay a
            # task's ready time (never advance it), reordering it against
            # tasks from other sources — see repro.explore.perturb
            task.ready_time = max(
                perturber.perturb(self.sim, task.ready_time, task.label or task.source.value),
                task.ready_time,
            )
        ready = task.ready_time
        if ready < self.sim.dispatch_time:
            ready = task.ready_time = self.sim.dispatch_time
        fifo = self._tfifo
        if not fifo:
            fifo.append(task)
        else:
            tail = fifo[-1]
            # ids are not guaranteed monotone for pre-built tasks, so the
            # in-order test compares the full (ready_time, id) key
            if ready > tail.ready_time or (ready == tail.ready_time and task.id > tail.id):
                fifo.append(task)
            else:
                _heappush(self._queue, (ready, task.id, task))
        self._arm()
        return task

    def post(
        self,
        callback: Callable[..., None],
        *args,
        delay: int = 0,
        source: TaskSource = TaskSource.SCRIPT,
        cost: int = 0,
        label: str = "",
    ) -> Task:
        """Convenience wrapper building and posting a :class:`Task`."""
        task = Task(
            callback,
            args,
            source=source,
            ready_time=self.sim.now + delay,
            cost=cost,
            label=label,
        )
        return self.post_task(task)

    def post_microtask(self, micro: Microtask) -> None:
        """Enqueue a microtask.

        If the loop is mid-task the microtask runs at the current task's
        microtask checkpoint; otherwise a carrier macrotask is created so
        the microtask still runs asynchronously (matches queueMicrotask
        semantics from non-task contexts).
        """
        if self.stopped:
            return
        self._microtasks.append(micro)
        if not self._in_task:
            self.post(
                lambda: None,
                source=TaskSource.SCRIPT,
                label="microtask-checkpoint",
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Terminate the loop: drop all queued work, refuse new work."""
        self.stopped = True
        self._queue.clear()
        self._tfifo.clear()
        self._microtasks.clear()
        if self._wakeup is not None:
            self._wakeup.cancel()
            self._wakeup = None

    @property
    def pending_tasks(self) -> int:
        """Number of queued, non-cancelled macrotasks."""
        live = sum(1 for _r, _i, t in self._queue if not t.cancelled)
        return live + sum(1 for t in self._tfifo if not t.cancelled)

    @property
    def idle(self) -> bool:
        """True when nothing is queued and no task is executing."""
        return not self._in_task and self.pending_tasks == 0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _peek_task(self) -> Optional[Task]:
        """Earliest live queued task, pruning cancelled heads (not popped)."""
        heap = self._queue
        fifo = self._tfifo
        while heap and heap[0][2].cancelled:
            _heappop(heap)
        while fifo and fifo[0].cancelled:
            fifo.popleft()
        if fifo:
            task = fifo[0]
            if heap:
                head = heap[0]
                ht = head[0]
                if ht < task.ready_time or (ht == task.ready_time and head[1] < task.id):
                    return head[2]
            return task
        if heap:
            return heap[0][2]
        return None

    def _pop_task(self, task: Task) -> None:
        """Remove ``task`` — always the current :meth:`_peek_task` result —
        from whichever lane holds it."""
        fifo = self._tfifo
        if fifo and fifo[0] is task:
            fifo.popleft()
        else:
            _heappop(self._queue)

    def _next_task_time(self) -> Optional[int]:
        task = self._peek_task()
        if task is None:
            return None
        ready = task.ready_time
        busy = self.busy_until
        if ready < busy:
            ready = busy
        dispatch = self.sim.dispatch_time
        return ready if ready >= dispatch else dispatch

    def _arm(self) -> None:
        """(Re)schedule the simulator wakeup for the next runnable task."""
        if self.stopped or self._in_task:
            return
        run_at = self._next_task_time()
        if run_at is None:
            return
        wakeup = self._wakeup
        if wakeup is not None and not wakeup.cancelled:
            if wakeup.time <= run_at:
                return
            wakeup.cancel()
        self._wakeup = self.sim.schedule(run_at, self._wake, label=self._wake_label)

    def _flush_heap_lane(self) -> None:
        """Drain a bulky heap lane into the FIFO lane in one sorted pass.

        A burst of out-of-order posts (30k timers set upfront, say) lands
        in the heap, and popping them back costs O(log n) Python-level
        tuple comparisons each.  One ``sorted()`` over tasks from both
        lanes is a single C-speed pass and leaves every subsequent pop
        O(1).  The key is the same ``(ready_time, id)`` the heap orders
        by, so the total order is unchanged.
        """
        heap = self._queue
        fifo = self._tfifo
        tasks = [entry[2] for entry in heap]
        heap.clear()
        tasks.extend(fifo)
        fifo.clear()
        tasks.sort(key=_task_order)
        fifo.extend(tasks)

    def _wake(self) -> None:
        self._wakeup = None
        if self.stopped:
            return
        if len(self._queue) > _HEAP_FLUSH_THRESHOLD:
            self._flush_heap_lane()
        sim = self.sim
        task = self._peek_task()
        if task is None:
            return
        run_at = task.ready_time
        busy = self.busy_until
        if run_at < busy:
            run_at = busy
        if run_at > sim._time:
            self._arm()
            return
        self._pop_task(task)
        self._run_task(task)
        self._continue_inline()

    def _continue_inline(self) -> None:
        """Post-dispatch continuation: inline same-time follow-ups, else arm.

        Inline continuation: when the *next* task would be woken at
        exactly the current dispatch time and no other simulator event
        is queued at (or before) that time, nothing can interleave — the
        wake the seed would schedule is provably the very next dispatch.
        Run the task here instead, replicating the wake's bookkeeping
        (events_processed, dispatch label/ordinal, recent labels) so
        every downstream observable — trace ordinals included — matches
        the schedule-a-wake path bit for bit.  Timer storms, where
        hundreds of timers share one millisecond slot, collapse from one
        full queue round-trip per task to one per slot.

        Also called by the compiled-chain batch executor
        (:mod:`repro.runtime.compile`) at every batch exit, so a bailed
        batch rejoins the generic schedule through exactly the code an
        interpreted wake would have run.
        """
        sim = self.sim
        budget = _INLINE_BATCH_LIMIT
        run = self._run_task
        wake_label = self._wake_label
        recent_append = sim._recent_labels.append
        heap = self._queue
        fifo = self._tfifo
        swheel = sim._wheel
        swready = swheel._ready
        sfifo = sim._fifo
        heappop = _heappop
        while not self.stopped:
            # earliest live queued task (_peek_task, inlined)
            while heap and heap[0][2].cancelled:
                heappop(heap)
            while fifo and fifo[0].cancelled:
                fifo.popleft()
            use_fifo = False
            if fifo:
                task = fifo[0]
                use_fifo = True
                if heap:
                    head = heap[0]
                    ht = head[0]
                    if ht < task.ready_time or (
                        ht == task.ready_time and head[1] < task.id
                    ):
                        task = head[2]
                        use_fifo = False
            elif heap:
                task = heap[0][2]
            else:
                return
            run_at = task.ready_time
            busy = self.busy_until
            if run_at < busy:
                run_at = busy
            dispatch = sim._time
            if run_at > dispatch or not sim._inline_wake_ok or budget <= 0:
                self._arm()
                return
            # no other simulator event may exist at (or before) the current
            # time (Simulator._peek_time, inlined conservatively; cancelled
            # entries count, and a wheel with an empty ready run reports
            # its drained-region bound — every stored entry is at or past
            # it, so a bound beyond the dispatch time proves no entry can
            # interleave, without forcing a slot drain from here)
            if sfifo:
                nt = sfifo[0].time
                if swready:
                    wt = swready[swheel._pos].time
                    if wt < nt:
                        nt = wt
                elif swheel._stored:
                    wt = swheel._ready_until
                    if wt < nt:
                        nt = wt
                if nt <= dispatch:
                    self._arm()
                    return
            elif swready:
                if swready[swheel._pos].time <= dispatch:
                    self._arm()
                    return
            elif swheel._stored and swheel._ready_until <= dispatch:
                self._arm()
                return
            budget -= 1
            n = sim.events_processed + 1
            sim.events_processed = n
            sim._dispatch_label = wake_label
            sim._dispatch_ordinal = n
            recent_append(wake_label)
            if use_fifo:
                fifo.popleft()
            else:
                heappop(heap)
            run(task)

    def _bind_metrics(self, tracer) -> None:
        """(Re)bind cached metric handles to ``tracer``'s registry."""
        self._mh_tracer = tracer
        self._mh_task_counters = {}
        metrics = tracer.metrics
        self._mh_delay_hist = metrics.histogram(
            f"eventloop.queue_delay_ns.{self.name}", QUEUE_DELAY_BUCKETS_NS
        )
        self._mh_micro_counter = metrics.counter(f"eventloop.microtasks.{self.name}")

    def _run_task(self, task: Task) -> None:
        sim = self.sim
        dispatch_time = sim._time
        busy = self.busy_until
        start = dispatch_time if dispatch_time > busy else busy
        if task.ready_time > start:
            start = task.ready_time
        frame = ExecutionFrame(start, self.name)
        frames = sim._frames
        frames.append(frame)
        self._in_task = True
        try:
            frame.consume(self.task_dispatch_cost + task.cost)
            task.callback(*task.args)
            if self._microtasks:
                self._drain_microtasks(frame)
        finally:
            self._in_task = False
            frames.pop()
        end = frame.start + frame.elapsed
        if end > self.busy_until:
            self.busy_until = end
        self.tasks_run += 1
        if self.record_trace:
            self.trace.append(TaskRecord(task.id, task.label, task.source, start, end))
        tracer = sim.tracer
        if tracer.enabled:
            queue_delay = start - task.ready_time
            if queue_delay < 0:
                queue_delay = 0
            source = task.source
            tracer.complete(
                sim.trace_pid,
                self.name,
                task.label,
                start,
                end,
                cat="task",
                args={"source": source.value, "queue_delay_ns": queue_delay},
            )
            if tracer is not self._mh_tracer:
                self._bind_metrics(tracer)
            counter = self._mh_task_counters.get(source)
            if counter is None:
                counter = self._mh_task_counters[source] = tracer.metrics.counter(
                    f"eventloop.tasks.{source.value}"
                )
            counter.inc()
            self._mh_delay_hist.record(queue_delay)
        observers = self.task_observers
        if observers:
            for observer in list(observers):
                observer(task, start, end)

    def _drain_microtasks(self, frame: ExecutionFrame) -> None:
        """Run the microtask checkpoint (bounded to catch runaway chains)."""
        budget = 100_000
        drained = 0
        micros = self._microtasks
        popleft = micros.popleft
        consume = frame.consume
        while micros:
            micro = popleft()
            consume(micro.cost)
            micro.callback(*micro.args)
            drained += 1
            budget -= 1
            if budget <= 0:
                raise SimulationError(
                    f"microtask checkpoint on {self.name!r} exceeded 100000 "
                    "microtasks (runaway promise chain?)"
                )
        if drained:
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.instant(
                    self.sim.trace_pid,
                    self.name,
                    "microtask-checkpoint",
                    frame.local_now,
                    cat="task",
                    args={"count": drained},
                )
                if tracer is not self._mh_tracer:
                    self._bind_metrics(tracer)
                self._mh_micro_counter.inc(drained)
