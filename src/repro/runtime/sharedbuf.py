"""ArrayBuffers, transferables and the SharedArrayBuffer timer.

Two distinct objects matter to the paper:

* :class:`SimArrayBuffer` — a transferable buffer backed by a native heap
  allocation.  Transferring detaches the sender's reference; the CVE
  scenarios that free a transferred buffer on worker termination
  (CVE-2014-1488) operate on its :class:`~repro.runtime.heap.NativePtr`.

* :class:`SharedCounterBuffer` — shared memory used as a fine-grained timer
  (Schwarz et al., "Fantastic Timers" [12]): a worker increments a counter
  in a tight loop while the main thread reads it.  We model the tight loop
  as a *rate activity*: once a worker declares it is spinning at rate ``r``,
  any read at virtual time ``t`` observes ``floor((t - t0) · r)`` plus the
  base value.  This keeps concurrent reads exact without simulating every
  increment.

The counter math lives in :class:`repro.runtime.sharedmem.atomics`
(:class:`RateActivity` and :class:`AtomicCounterCore`, re-exported here
for compatibility); this module keeps only the flat counter's tracing
and cost accounting, whose event stream is pinned byte-for-byte by the
golden digests in ``tests/golden/sharedbuf_digests.json``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import SimulationError
from ..trace import state_access
from .heap import NativePtr, SimHeap
from .sharedmem.atomics import ELEMENT_ACCESS_COST, AtomicCounterCore, RateActivity
from .simulator import Simulator


class SimArrayBuffer:
    """A (transferable) ArrayBuffer backed by the simulated native heap."""

    def __init__(self, heap: SimHeap, byte_length: int, label: str = "ArrayBuffer"):
        self.byte_length = byte_length
        self.label = label
        self._ptr: NativePtr = heap.alloc(bytearray(min(byte_length, 4096)), "ArrayBuffer")
        self.detached = False

    @property
    def ptr(self) -> NativePtr:
        """The backing native allocation (used by CVE scenarios)."""
        return self._ptr

    def detach(self) -> None:
        """Neuter this reference (structured-clone transfer)."""
        self.detached = True

    def transferred_view(self) -> "SimArrayBuffer":
        """The receiver-side object after a transfer.

        Shares the same backing allocation (that is the point of
        transferring) under a fresh, non-detached reference.
        """
        view = SimArrayBuffer.__new__(SimArrayBuffer)
        view.byte_length = self.byte_length
        view.label = f"{self.label}/transferred"
        view._ptr = self._ptr
        view.detached = False
        return view

    def read(self, index: int = 0, cve: str = "") -> int:
        """Read one byte; enforces detach + memory-safety semantics."""
        if self.detached:
            raise SimulationError(f"{self.label}: read from detached ArrayBuffer")
        data = self._ptr.deref(cve=cve)
        return data[index % len(data)] if data else 0

    def write(self, index: int, value: int, cve: str = "") -> None:
        """Write one byte; enforces detach + memory-safety semantics."""
        if self.detached:
            raise SimulationError(f"{self.label}: write to detached ArrayBuffer")
        data = self._ptr.deref(cve=cve)
        if data:
            data[index % len(data)] = value & 0xFF


class SharedCounterBuffer:
    """SharedArrayBuffer used as a monotone counter / fine-grained timer."""

    def __init__(self, sim: Simulator, label: str = "SharedArrayBuffer"):
        self.sim = sim
        self.label = label
        self.trace_obj = f"sab:{label}#{sim.next_object_seq('sab')}"
        self._core = AtomicCounterCore(0)

    # ------------------------------------------------------------------
    # writer side (worker)
    # ------------------------------------------------------------------
    def start_increment_activity(self, rate_per_ms: float) -> None:
        """Declare a tight increment loop starting now at ``rate_per_ms``."""
        state_access(self.sim, self.trace_obj, "write", "sab", access="increment_start")
        if self._core.activity is not None:
            self.stop_increment_activity()
        self._core.start_rate(self.sim.now, rate_per_ms)

    def stop_increment_activity(self) -> None:
        """End the current increment loop, freezing the counter."""
        if self._core.activity is None:
            return
        state_access(self.sim, self.trace_obj, "write", "sab", access="increment_stop")
        self._core.stop_rate(self.sim.now)

    def store(self, value: int) -> None:
        """Atomics.store: set the counter (stops any running activity)."""
        self.sim.consume(ELEMENT_ACCESS_COST)
        state_access(self.sim, self.trace_obj, "write", "sab", access="store")
        self.stop_increment_activity()
        self._core.set_value(value)

    # ------------------------------------------------------------------
    # reader side (any thread)
    # ------------------------------------------------------------------
    def load(self) -> int:
        """Atomics.load: read the counter at the caller's local time."""
        self.sim.consume(ELEMENT_ACCESS_COST)
        state_access(self.sim, self.trace_obj, "read", "sab", access="load")
        return self.load_raw()

    def load_raw(self) -> int:
        """Read without charging access cost (internal use)."""
        return self._core.value_at(self.sim.now)

    @property
    def incrementing(self) -> bool:
        """True while a rate activity is running."""
        return self._core.activity is not None

    @property
    def current_activity(self) -> Optional[RateActivity]:
        """The running rate activity, if any (read by SAB-wrapping defenses)."""
        return self._core.activity


def make_timer_pair(sim: Simulator) -> Tuple[SharedCounterBuffer, SharedCounterBuffer]:
    """Convenience: (counter, flag) buffers as SAB timer attacks use."""
    return SharedCounterBuffer(sim, "sab-counter"), SharedCounterBuffer(sim, "sab-flag")
