"""Interposition machinery: setter traps and sealed attributes.

The paper's kernel interface (§III-B) relies on three JavaScript
capabilities that we mirror for Python objects:

* **API redefinition** — any scope attribute can be reassigned (plain
  Python attribute assignment), so a defense can swap ``setTimeout`` for a
  wrapped version exactly like an extension content-script does;
* **kernel traps** — ``Object.defineProperty(obj, 'onmessage', {set})``:
  a registered *setter trap* observes/redirects assignments to a property;
* **sealing** — ``Object.freeze`` / non-configurable properties: once a
  name is sealed, further assignment (and trap replacement) raises
  :class:`~repro.errors.SecurityError`.  This is what stops the adversarial
  self-modifying code of §VI from restoring the native APIs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Set

from ..errors import SecurityError


class Interposable:
    """Base class providing setter traps and attribute sealing."""

    def __init__(self):
        object.__setattr__(self, "_setter_traps", {})
        object.__setattr__(self, "_sealed_attrs", set())

    # ------------------------------------------------------------------
    def define_setter_trap(self, name: str, trap: Callable[[Any], None]) -> None:
        """Register ``trap`` to intercept assignments to ``name``.

        Installing a trap on a sealed name is rejected — the kernel seals
        its own traps so user scripts cannot replace them.
        """
        traps: Dict[str, Callable] = object.__getattribute__(self, "_setter_traps")
        sealed: Set[str] = object.__getattribute__(self, "_sealed_attrs")
        if name in sealed and name in traps:
            raise SecurityError(f"setter trap for {name!r} is sealed")
        traps[name] = trap

    def seal_attribute(self, name: str) -> None:
        """Make ``name`` non-configurable (assignment raises)."""
        sealed: Set[str] = object.__getattribute__(self, "_sealed_attrs")
        sealed.add(name)

    def sealed(self, name: str) -> bool:
        """True when ``name`` has been sealed."""
        return name in object.__getattribute__(self, "_sealed_attrs")

    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: Any) -> None:
        if not name.startswith("_"):
            traps = object.__getattribute__(self, "_setter_traps")
            trap = traps.get(name)
            if trap is not None:
                # like a non-configurable accessor: assignment runs the
                # (possibly sealed) setter rather than replacing it
                trap(value)
                return
            sealed = object.__getattribute__(self, "_sealed_attrs")
            if name in sealed:
                raise SecurityError(
                    f"attribute {name!r} is sealed (non-configurable)"
                )
        super().__setattr__(name, value)

    def set_raw(self, name: str, value: Any) -> None:
        """Bypass traps and seals (kernel-internal writes only)."""
        object.__setattr__(self, name, value)
