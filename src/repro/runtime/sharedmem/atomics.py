"""Atomics over shared cells: load/store/add/compareExchange/wait/notify.

Every operation is a single, indivisible access in virtual time (one
:meth:`SharedHeap.access` call inside one execution frame), which is what
makes the ops linearizable at their access points — the property the
sequential-reference hypothesis test pins.

Two pieces live here because the flat SAB counter shares them:

* :class:`RateActivity` — the declared increments-at-rate-``r`` interval
  (moved from ``repro.runtime.sharedbuf``, which re-exports it);
* :class:`AtomicCounterCore` — the static-value/rate-activity state
  machine behind both :class:`AtomicCell` spin counters and
  :class:`~repro.runtime.sharedbuf.SharedCounterBuffer`.  Pure math:
  no tracing, no cost accounting, so the flat counter's trace stream is
  byte-identical to its pre-sharedmem form.

Wait semantics
--------------

``Atomics.wait`` cannot block a run-to-completion simulated thread, so it
is continuation-passing: the caller provides ``on_wake`` and the cell
posts it back to the waiting agent's loop when a ``notify`` (or the
timeout) fires.  Each notify emits an ``atomics.notify`` instant carrying
a fresh flow id; every wake it causes re-emits that id, which is how the
happens-before builder gets its wait→notify edges (see
``repro.analysis.hbgraph``).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ...errors import SimulationError
from ..simtime import MS
from ..task import TaskSource

#: Cost of one atomic element access (matches the flat SAB counter).
ELEMENT_ACCESS_COST = 40


class RateActivity:
    """A declared increments-at-rate-r interval on a shared counter."""

    __slots__ = ("start", "end", "rate_per_ms", "base")

    def __init__(self, start: int, rate_per_ms: float, base: int):
        self.start = start
        self.end: Optional[int] = None
        self.rate_per_ms = rate_per_ms
        self.base = base

    def value_at(self, now: int) -> int:
        """Counter value contributed by this activity at time ``now``."""
        effective_end = now if self.end is None else min(now, self.end)
        if effective_end <= self.start:
            return self.base
        elapsed_ms = (effective_end - self.start) / MS
        return self.base + int(elapsed_ms * self.rate_per_ms)


class AtomicCounterCore:
    """Static value + optional rate activity: the counter state machine."""

    __slots__ = ("static_value", "activity", "history")

    def __init__(self, value: int = 0):
        self.static_value = value
        self.activity: Optional[RateActivity] = None
        self.history: List[RateActivity] = []

    def value_at(self, now: int) -> int:
        """The counter value observed at virtual time ``now``."""
        if self.activity is not None:
            return self.activity.value_at(now)
        return self.static_value

    def start_rate(self, now: int, rate_per_ms: float) -> None:
        """Begin a tight increment loop (caller stops any prior one)."""
        self.activity = RateActivity(now, rate_per_ms, self.value_at(now))

    def stop_rate(self, now: int) -> None:
        """Freeze the counter at its current value."""
        activity = self.activity
        if activity is None:
            return
        activity.end = now
        self.static_value = activity.value_at(now)
        self.history.append(activity)
        self.activity = None

    def set_value(self, value: int) -> None:
        """Overwrite the static value (callers stop the activity first)."""
        self.static_value = value


class _Waiter:
    """One parked Atomics.wait continuation."""

    __slots__ = ("thread", "loop", "callback", "timer", "woken")

    def __init__(self, thread: str, loop, callback: Callable[[str], None]):
        self.thread = thread
        self.loop = loop
        self.callback = callback
        self.timer = None
        self.woken = False


class AtomicCell:
    """One shared integer cell with Atomics-style operations."""

    def __init__(self, heap, label: str = "atomic"):
        self.heap = heap
        self.cell = heap.alloc_cell("shm-atomic", label, payload=None)
        self.core = AtomicCounterCore(0)
        self._waiters: List[_Waiter] = []

    @property
    def obj_id(self) -> str:
        """Run-deterministic trace identity."""
        return self.cell.obj_id

    # ------------------------------------------------------------------
    # plain atomics
    # ------------------------------------------------------------------
    def load(self) -> int:
        """``Atomics.load``: policy-interposed shared read."""
        policy = self.heap.access(self.cell, "read", "load")
        raw = self.core.value_at(self.heap.sim.now)
        if policy is not None:
            return policy.counter_value(self.cell, self.core, raw)
        return raw

    def store(self, value: int) -> int:
        """``Atomics.store``: stops any spin loop, sets the value."""
        self.heap.access(self.cell, "write", "store")
        self.core.stop_rate(self.heap.sim.now)
        self.core.set_value(value)
        return value

    def add(self, delta: int) -> int:
        """``Atomics.add``: returns the OLD value (spec semantics)."""
        self.heap.access(self.cell, "write", "add")
        now = self.heap.sim.now
        old = self.core.value_at(now)
        self.core.stop_rate(now)
        self.core.set_value(old + delta)
        return old

    def compare_exchange(self, expected: int, replacement: int) -> int:
        """``Atomics.compareExchange``: returns the OLD value."""
        self.heap.access(self.cell, "write", "compareExchange")
        now = self.heap.sim.now
        old = self.core.value_at(now)
        if old == expected:
            self.core.stop_rate(now)
            self.core.set_value(replacement)
        return old

    # ------------------------------------------------------------------
    # spin loop (the counter-thread timer substrate)
    # ------------------------------------------------------------------
    def start_spin(self, rate_per_ms: float) -> None:
        """Declare a tight increment loop at ``rate_per_ms`` (writer side)."""
        self.heap.access(self.cell, "write", "spin_start")
        now = self.heap.sim.now
        self.core.stop_rate(now)
        self.core.start_rate(now, rate_per_ms)

    def stop_spin(self) -> None:
        """End the increment loop, freezing the counter."""
        if self.core.activity is None:
            return
        self.heap.access(self.cell, "write", "spin_stop")
        self.core.stop_rate(self.heap.sim.now)

    @property
    def spinning(self) -> bool:
        """True while a rate activity is running."""
        return self.core.activity is not None

    # ------------------------------------------------------------------
    # wait / notify
    # ------------------------------------------------------------------
    def wait(
        self,
        expected: int,
        on_wake: Callable[[str], None],
        timeout_ns: Optional[int] = None,
    ) -> str:
        """``Atomics.wait`` with virtual-time semantics.

        Returns ``"not-equal"`` immediately when the value differs from
        ``expected``; otherwise parks ``on_wake`` and returns
        ``"waiting"``.  ``on_wake`` later receives ``"ok"`` (notified) or
        ``"timed-out"``.
        """
        heap = self.heap
        heap.access(self.cell, "read", "wait")
        if self.core.value_at(heap.sim.now) != expected:
            return "not-equal"
        binding = heap.binding_for_current()
        if binding is None:
            raise SimulationError(
                "Atomics.wait outside an attached agent (no event loop to wake)"
            )
        waiter = _Waiter(binding.thread, binding.loop, on_wake)
        self._waiters.append(waiter)
        heap.sync_event("atomics.wait", self.cell.obj_id)
        if timeout_ns is not None:
            waiter.timer = binding.loop.post(
                self._wake_timeout,
                waiter,
                delay=timeout_ns,
                source=TaskSource.TIMER,
                label="atomics:wait-timeout",
            )
        return "waiting"

    def notify(self, count: int = 1) -> int:
        """``Atomics.notify``: wake up to ``count`` waiters (FIFO)."""
        heap = self.heap
        heap.access(self.cell, "write", "notify")
        woken = 0
        flow = 0
        tracer = heap.sim.tracer
        to_wake: List[_Waiter] = []
        while self._waiters and woken < count:
            waiter = self._waiters.pop(0)
            waiter.woken = True
            if waiter.timer is not None:
                waiter.timer.cancel()
            to_wake.append(waiter)
            woken += 1
        if tracer.enabled:
            if to_wake:
                flow = tracer.next_flow_id()
            heap.sync_event(
                "atomics.notify", self.cell.obj_id, {"woken": woken, "flow": flow}
            )
        for waiter in to_wake:
            waiter.loop.post(
                self._wake,
                waiter,
                "ok",
                flow,
                source=TaskSource.MESSAGE,
                label="atomics:wake",
            )
        return woken

    def _wake(self, waiter: _Waiter, reason: str, flow: int) -> None:
        args = {"reason": reason}
        if flow:
            args["flow"] = flow
        self.heap.sync_event("atomics.wake", self.cell.obj_id, args)
        waiter.callback(reason)

    def _wake_timeout(self, waiter: _Waiter) -> None:
        if waiter.woken:
            return
        waiter.woken = True
        if waiter in self._waiters:
            self._waiters.remove(waiter)
        self._wake(waiter, "timed-out", 0)
