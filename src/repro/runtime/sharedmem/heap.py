"""The shared-object heap: arena, refcounts and the stop-the-world GC.

A :class:`SharedHeap` is one per-browser arena of :class:`SharedCell`
slots carved out of the simulated native heap (one ``NativePtr``
allocation backs the whole arena, allocated lazily so browsers that never
touch shared memory leave the native address stream untouched).  Every
agent (page main thread, worker) that wants shared objects *attaches*,
yielding an :class:`AgentBinding` that carries the agent's GC root set
and its defense :class:`~repro.runtime.sharedmem.api.AccessPolicy`.

Memory management is Myenk-style two-tier:

* **refcounts** — object-to-object references are counted; a cell whose
  count hits zero while no binding roots it is freed immediately;
* **mark/sweep GC** — explicit ``gc()`` marks from every binding's roots
  and sweeps the rest, pausing all attached agents for the duration
  (``gc.pause`` spans) — stop-the-world, unless a bug flag says
  otherwise:

  - ``shm_gc_thread_roots`` (legacy profiles): the collector only scans
    the *triggering* agent's root set and sweeps asynchronously without
    pausing anyone — the GC-vs-mutator race.  Cells rooted by another
    agent get condemned and a later read raises
    :class:`~repro.errors.UseAfterCollectError`.
  - ``shm_gc_cycle_leak`` (legacy profiles): the sweeper trusts
    refcounts and skips unreachable cells whose count is non-zero, so
    cycle garbage survives forever (``sharedmem.leak`` instants — the
    ``shared-leak`` fuzz oracle).

  A defense policy with ``guards_gc = True`` (JSKernel) forces the safe
  stop-the-world path regardless of the bug flags: the kernel mediates
  the collection entry point, so the buggy native fast path is never
  reached.

Every data access funnels through :meth:`access`: defense policy first
(pacing — or nothing, measurably), then cost, then a
``trace.state_access`` instant, then the liveness check.  Lock and
wait/notify *synchronisation* events go through :meth:`sync_event`
instead — they order accesses rather than being accesses, and emitting
them as ``state.access`` would make the race detector flag the lock
itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...errors import UseAfterCollectError
from ...trace import state_access
from ..task import TaskSource

#: Virtual-time costs (ns) of shared-heap operations.
ALLOC_COST = 120
DICT_OP_COST = 60
ARRAY_OP_COST = 50
LOCK_OP_COST = 50

#: Stop-the-world pause: base plus a per-live-cell mark/sweep cost.
GC_PAUSE_BASE = 50_000
GC_PAUSE_PER_CELL = 2_000

#: Delay between a buggy (non-STW) collection's mark and its sweep — the
#: window the GC-vs-mutator scenario races in.
UNSAFE_SWEEP_DELAY = 200_000


class SharedCell:
    """One slot in the shared arena."""

    __slots__ = ("addr", "obj_id", "kind", "label", "payload", "refcount", "freed", "marked")

    def __init__(self, addr: int, obj_id: str, kind: str, label: str, payload):
        self.addr = addr
        self.obj_id = obj_id
        self.kind = kind
        self.label = label
        self.payload = payload
        #: Object-to-object references only; roots are tracked per binding.
        self.refcount = 0
        self.freed = False
        self.marked = False


class AgentBinding:
    """One attached agent: its loop, GC roots and access policy."""

    __slots__ = ("thread", "loop", "roots", "policy")

    def __init__(self, thread: str, loop):
        self.thread = thread
        self.loop = loop
        self.roots: List[SharedCell] = []
        self.policy = None

    def add_root(self, cell: SharedCell) -> None:
        self.roots.append(cell)

    def drop_root(self, cell: SharedCell) -> bool:
        if cell in self.roots:
            self.roots.remove(cell)
            return True
        return False


class SharedHeap:
    """The browser-wide shared-object arena."""

    def __init__(self, sim, native_heap, profile):
        self.sim = sim
        self.native_heap = native_heap
        self.profile = profile
        self.cells: Dict[int, SharedCell] = {}
        self.bindings: Dict[str, AgentBinding] = {}
        #: Name of the policy forcing safe GC, or None (see module doc).
        self.gc_guard: Optional[str] = None
        #: Blocked lock acquisitions: waiter thread -> lock (wait-for graph).
        self.lock_waits: Dict[str, object] = {}
        #: Locks currently owned, per thread (ordering policies read this).
        self.held_locks: Dict[str, List[object]] = {}
        #: Deadlocks detected so far (read by the deadlock attack/oracle).
        self.deadlocks: List[dict] = []
        #: Unreachable-but-surviving cells per gc (shared-leak accounting).
        self.leaked_cells: List[SharedCell] = []
        self.gc_runs = 0
        self._arena = None  # lazy: see module docstring
        self._addrs = 0

    # ------------------------------------------------------------------
    # attachment / thread resolution
    # ------------------------------------------------------------------
    def attach(self, loop) -> AgentBinding:
        """Attach one agent (idempotent per loop name)."""
        binding = self.bindings.get(loop.name)
        if binding is None:
            binding = AgentBinding(loop.name, loop)
            self.bindings[loop.name] = binding
        return binding

    def current_thread(self) -> str:
        """The simulated thread performing the current operation."""
        frame = self.sim.current_frame
        return frame.thread_name if frame is not None else self.sim.native_context

    def binding_for_current(self) -> Optional[AgentBinding]:
        """The attached agent whose loop is running the current frame."""
        return self.bindings.get(self.current_thread())

    def policy_for_current(self):
        binding = self.binding_for_current()
        return binding.policy if binding is not None else None

    # ------------------------------------------------------------------
    # allocation / refcounts
    # ------------------------------------------------------------------
    def alloc_cell(self, kind: str, label: str, payload) -> SharedCell:
        """Allocate one cell (charged + traced as a write access)."""
        if self._arena is None:
            self._arena = self.native_heap.alloc(self, "SharedHeapArena")
        self._addrs += 1
        obj_id = f"shm:{label}#{self.sim.next_object_seq('shm')}"
        cell = SharedCell(self._addrs, obj_id, kind, label, payload)
        self.cells[cell.addr] = cell
        policy = self.policy_for_current()
        if policy is not None:
            policy.before_access(self.sim, cell, "write", "alloc")
        self.sim.consume(ALLOC_COST)
        state_access(self.sim, obj_id, "write", kind, access="alloc")
        return cell

    def retain(self, cell: SharedCell) -> None:
        """Add one object-to-object reference."""
        cell.refcount += 1

    def release(self, cell: SharedCell) -> None:
        """Drop one object-to-object reference; rc 0 + unrooted frees now."""
        if cell.freed:
            return
        if cell.refcount > 0:
            cell.refcount -= 1
        if cell.refcount == 0 and not self._rooted(cell):
            self._free_cell(cell, "refcount")

    def _rooted(self, cell: SharedCell) -> bool:
        return any(cell in binding.roots for binding in self.bindings.values())

    def _free_cell(self, cell: SharedCell, via: str) -> None:
        cell.freed = True
        state_access(
            self.sim, cell.obj_id, "write", cell.kind,
            access="free", detail={"via": via},
        )
        # break outgoing references so transitively dead cells free too
        payload, cell.payload = cell.payload, None
        for child in _referenced_cells(payload):
            self.release(child)
        self.cells.pop(cell.addr, None)

    # ------------------------------------------------------------------
    # the access gate
    # ------------------------------------------------------------------
    def access(self, cell: SharedCell, op: str, access: str, cost: int = DICT_OP_COST):
        """Policy → cost → trace → liveness, for one shared data access.

        Returns the policy that interposed (or None), so counter-style
        reads can apply its value transform.
        """
        sim = self.sim
        policy = self.policy_for_current()
        if policy is not None:
            policy.before_access(sim, cell, op, access)
        sim.consume(cost)
        state_access(sim, cell.obj_id, op, cell.kind, access=access)
        if cell.freed:
            raise UseAfterCollectError(
                f"use-after-collect: {cell.obj_id} ({access}) was swept by the shared GC"
            )
        return policy

    def sync_event(self, name: str, obj_id: str, extra: Optional[dict] = None) -> None:
        """Emit one synchronisation instant (lock/wait-notify traffic)."""
        tracer = self.sim.tracer
        if not tracer.enabled:
            return
        args = {"obj": obj_id}
        if extra:
            args.update(extra)
        tracer.instant(
            self.sim.trace_pid,
            self.current_thread(),
            name,
            self.sim.now,
            cat="sync",
            args=args,
        )

    # ------------------------------------------------------------------
    # deadlock bookkeeping (locks call these)
    # ------------------------------------------------------------------
    def note_blocked(self, thread: str, lock) -> None:
        """Record ``thread`` blocking on ``lock``; detect wait-for cycles."""
        self.lock_waits[thread] = lock
        cycle = self._find_cycle(thread, lock)
        if cycle is None:
            return
        record = {
            "time_ns": self.sim.now,
            "cycle": " -> ".join(cycle),
            "threads": cycle[::2],
            "locks": cycle[1::2],
        }
        self.deadlocks.append(record)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                self.sim.trace_pid,
                self.current_thread(),
                "sharedmem.deadlock",
                self.sim.now,
                cat="sync",
                args={"cycle": record["cycle"]},
            )
            tracer.metrics.counter("sharedmem.deadlocks").inc()

    def note_unblocked(self, thread: str) -> None:
        self.lock_waits.pop(thread, None)

    def note_acquired(self, thread: str, lock) -> None:
        self.held_locks.setdefault(thread, []).append(lock)

    def note_released(self, thread: str, lock) -> None:
        held = self.held_locks.get(thread)
        if held and lock in held:
            held.remove(lock)

    def _find_cycle(self, thread: str, lock) -> Optional[List[str]]:
        path = [thread]
        current = lock
        seen = set()
        while current is not None and current not in seen:
            seen.add(current)
            owner = current.owner
            path.append(current.trace_label)
            if owner is None:
                return None
            if owner == thread:
                path.append(owner)
                return path
            path.append(owner)
            current = self.lock_waits.get(owner)
        return None

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def gc(self, force_safe: bool = False, reason: str = "explicit") -> dict:
        """Collect unreachable cells; returns the sweep statistics.

        Safe mode (the default on fixed browsers, and forced whenever a
        ``guards_gc`` policy is installed) marks from every binding's
        roots and sweeps under a stop-the-world pause.  Buggy mode (the
        ``shm_gc_thread_roots`` flag) marks from the triggering agent's
        roots only and sweeps asynchronously, pausing nobody.
        """
        self.gc_runs += 1
        unsafe = (
            self.profile.has_bug("shm_gc_thread_roots")
            and not force_safe
            and self.gc_guard is None
        )
        leaky = (
            self.profile.has_bug("shm_gc_cycle_leak")
            and not force_safe
            and self.gc_guard is None
        )
        live_before = len(self.cells)

        # mark
        for cell in self.cells.values():
            cell.marked = False
        if unsafe:
            binding = self.binding_for_current()
            root_sets = [binding.roots] if binding is not None else []
        else:
            root_sets = [b.roots for b in self.bindings.values()]
        stack = [cell for roots in root_sets for cell in roots]
        while stack:
            cell = stack.pop()
            if cell.marked or cell.freed:
                continue
            cell.marked = True
            stack.extend(_referenced_cells(cell.payload))

        condemned: List[SharedCell] = []
        leaked: List[SharedCell] = []
        for cell in list(self.cells.values()):
            if cell.marked:
                continue
            if leaky and cell.refcount > 0:
                leaked.append(cell)
            else:
                condemned.append(cell)

        stats = {
            "mode": "unsafe" if unsafe else "stw",
            "reason": reason,
            "live_before": live_before,
            "condemned": len(condemned),
            "leaked": len(leaked),
            "roots": sum(len(r) for r in root_sets),
        }

        if unsafe:
            # no pauses; the sweep lands later, racing every mutator
            self.sim.schedule(
                self.sim.now + UNSAFE_SWEEP_DELAY,
                lambda: self._sweep(condemned, "gc-unsafe"),
                label="sharedmem:gc-sweep",
            )
        else:
            self._pause_all(live_before)
            self._sweep(condemned, "gc")

        if leaked:
            self.leaked_cells.extend(leaked)
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.instant(
                    self.sim.trace_pid,
                    self.current_thread(),
                    "sharedmem.leak",
                    self.sim.now,
                    cat="gc",
                    args={"cells": len(leaked), "objs": [c.obj_id for c in leaked]},
                )
                tracer.metrics.counter("sharedmem.leaked_cells").inc(len(leaked))

        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                self.sim.trace_pid,
                self.current_thread(),
                "gc.sweep",
                self.sim.now,
                cat="gc",
                args=dict(stats),
            )
            tracer.metrics.counter("sharedmem.gc.runs").inc()
        return stats

    def _pause_all(self, live_before: int) -> None:
        """Stop the world: every attached agent loses ``pause_ns``."""
        pause_ns = GC_PAUSE_BASE + GC_PAUSE_PER_CELL * live_before
        sim = self.sim
        current = self.current_thread()
        start = sim.now
        sim.consume(pause_ns)
        tracer = sim.tracer
        if tracer.enabled:
            tracer.complete(
                sim.trace_pid, current, "gc.pause", start, sim.now,
                cat="gc", args={"agent": current, "trigger": True},
            )
        for binding in self.bindings.values():
            if binding.thread == current or binding.loop.stopped:
                continue
            binding.loop.post(
                self._pause_agent,
                binding.thread,
                pause_ns,
                source=TaskSource.SCRIPT,
                label="gc:pause",
            )

    def _pause_agent(self, thread: str, pause_ns: int) -> None:
        sim = self.sim
        start = sim.now
        sim.consume(pause_ns)
        tracer = sim.tracer
        if tracer.enabled:
            tracer.complete(
                sim.trace_pid, thread, "gc.pause", start, sim.now,
                cat="gc", args={"agent": thread, "trigger": False},
            )

    def _sweep(self, condemned: List[SharedCell], via: str) -> None:
        for cell in condemned:
            if not cell.freed:
                self._free_cell(cell, via)

    # ------------------------------------------------------------------
    @property
    def live_cells(self) -> int:
        """Number of unswept cells (tests assert bounded live sets)."""
        return len(self.cells)


def _referenced_cells(payload) -> List[SharedCell]:
    """Cells referenced from a dict/list payload (one level: values)."""
    if isinstance(payload, dict):
        values = payload.values()
    elif isinstance(payload, list):
        values = payload
    else:
        return []
    refs: List[SharedCell] = []
    for value in values:
        cell = getattr(value, "cell", None)
        if isinstance(cell, SharedCell):
            refs.append(cell)
    return refs
