"""Structured shared objects: SharedDict and SharedArray.

Each wraps one :class:`~repro.runtime.sharedmem.heap.SharedCell` whose
payload is a plain dict/list.  Values may be other shared objects
(stored by reference and refcounted); ``get`` returns such a value as a
**borrowed** reference — the caller must ``adopt`` it through its
:class:`~repro.runtime.sharedmem.api.SharedMemAPI` to root it, exactly
the two-step pattern real SAB-backed object libraries expose (and the
window the GC-vs-mutator scenario races in).

Every operation is one :meth:`SharedHeap.access` call: policy
interposition, cost, ``state.access`` instant, liveness check — an
operation on a swept cell raises
:class:`~repro.errors.UseAfterCollectError`.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .heap import ARRAY_OP_COST, DICT_OP_COST, SharedCell, SharedHeap


class SharedObject:
    """Base wrapper: one cell plus the owning heap."""

    __slots__ = ("heap", "cell")

    def __init__(self, heap: SharedHeap, cell: SharedCell):
        self.heap = heap
        self.cell = cell

    @property
    def obj_id(self) -> str:
        """Run-deterministic trace identity."""
        return self.cell.obj_id

    @property
    def freed(self) -> bool:
        """True once the shared GC has swept this object."""
        return self.cell.freed

    def _retain_value(self, value: Any) -> None:
        if isinstance(value, SharedObject):
            self.heap.retain(value.cell)

    def _release_value(self, value: Any) -> None:
        if isinstance(value, SharedObject):
            self.heap.release(value.cell)


class SharedDict(SharedObject):
    """A shared string-keyed dictionary."""

    __slots__ = ()

    @classmethod
    def create(cls, heap: SharedHeap, label: str = "dict") -> "SharedDict":
        return cls(heap, heap.alloc_cell("shm-dict", label, payload={}))

    def get(self, key: str) -> Any:
        """Read one slot (shared-object values are returned *borrowed*)."""
        self.heap.access(self.cell, "read", "get", DICT_OP_COST)
        return self.cell.payload.get(key)

    def set(self, key: str, value: Any) -> None:
        """Write one slot (refcounts shared-object values)."""
        self.heap.access(self.cell, "write", "set", DICT_OP_COST)
        payload = self.cell.payload
        old = payload.get(key)
        self._retain_value(value)
        payload[key] = value
        if old is not value:
            self._release_value(old)

    def delete(self, key: str) -> bool:
        """Remove one slot, dropping its reference."""
        self.heap.access(self.cell, "write", "delete", DICT_OP_COST)
        payload = self.cell.payload
        if key not in payload:
            return False
        self._release_value(payload.pop(key))
        return True

    def has(self, key: str) -> bool:
        """Membership test (a read access)."""
        self.heap.access(self.cell, "read", "has", DICT_OP_COST)
        return key in self.cell.payload

    def keys(self) -> List[str]:
        """Snapshot of the keys (a read access)."""
        self.heap.access(self.cell, "read", "keys", DICT_OP_COST)
        return list(self.cell.payload.keys())

    @property
    def size(self) -> int:
        """Number of entries (a read access)."""
        self.heap.access(self.cell, "read", "size", DICT_OP_COST)
        return len(self.cell.payload)


class SharedArray(SharedObject):
    """A shared growable array."""

    __slots__ = ()

    @classmethod
    def create(cls, heap: SharedHeap, label: str = "array") -> "SharedArray":
        return cls(heap, heap.alloc_cell("shm-array", label, payload=[]))

    def get(self, index: int) -> Any:
        """Read one element (borrowed for shared-object values)."""
        self.heap.access(self.cell, "read", "get", ARRAY_OP_COST)
        payload = self.cell.payload
        if 0 <= index < len(payload):
            return payload[index]
        return None

    def set(self, index: int, value: Any) -> None:
        """Write one element in place."""
        self.heap.access(self.cell, "write", "set", ARRAY_OP_COST)
        payload = self.cell.payload
        if not 0 <= index < len(payload):
            raise IndexError(f"{self.obj_id}: index {index} out of range")
        old = payload[index]
        self._retain_value(value)
        payload[index] = value
        if old is not value:
            self._release_value(old)

    def push(self, value: Any) -> int:
        """Append; returns the new length."""
        self.heap.access(self.cell, "write", "push", ARRAY_OP_COST)
        self._retain_value(value)
        self.cell.payload.append(value)
        return len(self.cell.payload)

    def pop(self) -> Optional[Any]:
        """Remove and return the last element (borrowed), or None."""
        self.heap.access(self.cell, "write", "pop", ARRAY_OP_COST)
        payload = self.cell.payload
        if not payload:
            return None
        value = payload.pop()
        self._release_value(value)
        return value

    @property
    def size(self) -> int:
        """Length (a read access)."""
        self.heap.access(self.cell, "read", "size", ARRAY_OP_COST)
        return len(self.cell.payload)
