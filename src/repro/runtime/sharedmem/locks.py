"""Shared locks: mutual exclusion with owner tracking and trace events.

Blocking is continuation-passing (a run-to-completion simulated thread
cannot spin): ``acquire(callback)`` runs the callback synchronously when
the lock is free, otherwise parks it FIFO and the releaser posts a grant
task to the waiter's loop.  Ownership transfers at release time (the
grant is reserved), so a barging third thread can never observe the lock
free between a release and the woken waiter's dispatch.

Trace protocol — the events the happens-before builder consumes
(:mod:`repro.analysis.hbgraph`):

* ``lock.acquired`` — emitted on the acquiring thread once it owns the
  lock (inline or in the grant task);
* ``lock.release`` — emitted on the releasing thread; the next
  ``lock.acquired`` on the same object gets a happens-before edge from
  it, which is what makes the race detector lock-set aware;
* ``lock.acquire`` — a blocked request (diagnostic only).

Blocked acquisitions feed the heap's wait-for graph; a cycle at block
time is recorded as a deadlock (``sharedmem.deadlock`` instant +
``SharedHeap.deadlocks``) and the parked continuations simply never run —
the simulation drains, which is how the deadlock scenario terminates.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ...errors import SimulationError
from ..task import TaskSource
from .heap import LOCK_OP_COST, SharedHeap


class SharedLock:
    """A mutex over shared state, with owner tracking."""

    def __init__(self, heap: SharedHeap, label: str = "lock"):
        self.heap = heap
        self.label = label
        #: Allocation order — the canonical order lock-ordering policies
        #: enforce acquisition in.
        self.seq = heap.sim.next_object_seq("lock")
        self.trace_label = f"lock:{label}#{self.seq}"
        #: Owning thread name, or None.
        self.owner: Optional[str] = None
        self._waiters: List[Tuple[str, object, Optional[Callable[[], None]]]] = []
        self.acquisitions = 0

    # ------------------------------------------------------------------
    def acquire(self, callback: Optional[Callable[[], None]] = None) -> bool:
        """Take the lock; run ``callback`` under it (now or when granted).

        Returns True when the lock was acquired synchronously.
        """
        heap = self.heap
        heap.sim.consume(LOCK_OP_COST)
        thread = heap.current_thread()
        self._check_policy(thread)
        if self.owner is None and not self._waiters:
            self._grant(thread)
            if callback is not None:
                callback()
            return True
        binding = heap.bindings.get(thread)
        if binding is None:
            raise SimulationError(
                f"blocking acquire of {self.trace_label} outside an attached agent"
            )
        heap.sync_event(
            "lock.acquire", self.trace_label, {"owner": self.owner or ""}
        )
        self._waiters.append((thread, binding.loop, callback))
        heap.note_blocked(thread, self)
        return False

    def try_acquire(self) -> bool:
        """Non-blocking acquire."""
        heap = self.heap
        heap.sim.consume(LOCK_OP_COST)
        thread = heap.current_thread()
        self._check_policy(thread)
        if self.owner is None and not self._waiters:
            self._grant(thread)
            return True
        return False

    def release(self) -> None:
        """Release; ownership passes FIFO to the next waiter (if any)."""
        heap = self.heap
        heap.sim.consume(LOCK_OP_COST)
        thread = heap.current_thread()
        if self.owner != thread:
            raise SimulationError(
                f"{self.trace_label}: release by {thread!r} but owner is {self.owner!r}"
            )
        heap.sync_event("lock.release", self.trace_label)
        self.owner = None
        heap.note_released(thread, self)
        if not self._waiters:
            return
        next_thread, loop, callback = self._waiters.pop(0)
        # reservation: the waiter owns the lock from this instant
        self.owner = next_thread
        heap.note_acquired(next_thread, self)
        heap.note_unblocked(next_thread)
        loop.post(
            self._granted,
            next_thread,
            callback,
            source=TaskSource.SCRIPT,
            label=f"lock:grant:{self.label}",
        )

    @property
    def held(self) -> bool:
        """True while some thread owns the lock."""
        return self.owner is not None

    # ------------------------------------------------------------------
    def _check_policy(self, thread: str) -> None:
        heap = self.heap
        policy = heap.policy_for_current()
        if policy is not None:
            policy.before_lock(heap.sim, self, thread, heap.held_locks.get(thread, ()))

    def _grant(self, thread: str) -> None:
        self.owner = thread
        self.acquisitions += 1
        self.heap.note_acquired(thread, self)
        self.heap.sync_event("lock.acquired", self.trace_label)

    def _granted(self, thread: str, callback: Optional[Callable[[], None]]) -> None:
        self.acquisitions += 1
        self.heap.sync_event("lock.acquired", self.trace_label)
        if callback is not None:
            callback()


class SharedRwLock:
    """A readers-writer lock (FIFO, writer-exclusive).

    Grant order is strictly FIFO; consecutive queued readers are granted
    together.  Only write releases create the ``lock.release`` sync point
    (reader releases emit ``lock.release_read``, which the happens-before
    builder deliberately ignores: readers do not order each other).
    Deadlock tracking covers writer ownership only.
    """

    def __init__(self, heap: SharedHeap, label: str = "rwlock"):
        self.heap = heap
        self.label = label
        self.seq = heap.sim.next_object_seq("lock")
        self.trace_label = f"rwlock:{label}#{self.seq}"
        self.writer: Optional[str] = None
        self.readers: List[str] = []
        self._waiters: List[Tuple[str, str, object, Optional[Callable[[], None]]]] = []

    @property
    def owner(self) -> Optional[str]:
        """The writer, for wait-for-graph purposes."""
        return self.writer

    # ------------------------------------------------------------------
    def acquire_read(self, callback: Optional[Callable[[], None]] = None) -> bool:
        heap = self.heap
        heap.sim.consume(LOCK_OP_COST)
        thread = heap.current_thread()
        if self.writer is None and not self._waiters:
            self.readers.append(thread)
            heap.sync_event("lock.acquired", self.trace_label, {"mode": "read"})
            if callback is not None:
                callback()
            return True
        self._enqueue("read", thread, callback)
        return False

    def acquire_write(self, callback: Optional[Callable[[], None]] = None) -> bool:
        heap = self.heap
        heap.sim.consume(LOCK_OP_COST)
        thread = heap.current_thread()
        policy = heap.policy_for_current()
        if policy is not None:
            policy.before_lock(heap.sim, self, thread, heap.held_locks.get(thread, ()))
        if self.writer is None and not self.readers and not self._waiters:
            self.writer = thread
            heap.note_acquired(thread, self)
            heap.sync_event("lock.acquired", self.trace_label, {"mode": "write"})
            if callback is not None:
                callback()
            return True
        self._enqueue("write", thread, callback)
        heap.note_blocked(thread, self)
        return False

    def release_read(self) -> None:
        heap = self.heap
        heap.sim.consume(LOCK_OP_COST)
        thread = heap.current_thread()
        if thread not in self.readers:
            raise SimulationError(f"{self.trace_label}: release_read by non-reader {thread!r}")
        self.readers.remove(thread)
        heap.sync_event("lock.release_read", self.trace_label)
        self._drain()

    def release_write(self) -> None:
        heap = self.heap
        heap.sim.consume(LOCK_OP_COST)
        thread = heap.current_thread()
        if self.writer != thread:
            raise SimulationError(
                f"{self.trace_label}: release_write by {thread!r} but writer is {self.writer!r}"
            )
        heap.sync_event("lock.release", self.trace_label)
        self.writer = None
        heap.note_released(thread, self)
        self._drain()

    # ------------------------------------------------------------------
    def _enqueue(self, mode: str, thread: str, callback) -> None:
        heap = self.heap
        binding = heap.bindings.get(thread)
        if binding is None:
            raise SimulationError(
                f"blocking acquire of {self.trace_label} outside an attached agent"
            )
        heap.sync_event(
            "lock.acquire", self.trace_label, {"mode": mode, "owner": self.writer or ""}
        )
        self._waiters.append((mode, thread, binding.loop, callback))

    def _drain(self) -> None:
        """Grant the FIFO head (and, for reads, every consecutive read)."""
        heap = self.heap
        while self._waiters:
            mode, thread, loop, callback = self._waiters[0]
            if mode == "write":
                if self.readers or self.writer is not None:
                    return
                self._waiters.pop(0)
                self.writer = thread
                heap.note_acquired(thread, self)
                heap.note_unblocked(thread)
                loop.post(
                    self._granted, thread, "write", callback,
                    source=TaskSource.SCRIPT, label=f"lock:grant:{self.label}",
                )
                return
            if self.writer is not None:
                return
            self._waiters.pop(0)
            self.readers.append(thread)
            loop.post(
                self._granted, thread, "read", callback,
                source=TaskSource.SCRIPT, label=f"lock:grant:{self.label}",
            )

    def _granted(self, thread: str, mode: str, callback) -> None:
        self.heap.sync_event("lock.acquired", self.trace_label, {"mode": mode})
        if callback is not None:
            callback()
