"""Shared-memory object runtime: SAB-backed structures, locks, atomics, GC.

The package models a Myenk-style shared-object layer on top of the
simulated native heap: a per-browser :class:`SharedHeap` arena,
structured :class:`SharedDict`/:class:`SharedArray` objects, an
:class:`AtomicCell` with virtual-time ``wait``/``notify``, owner-tracked
:class:`SharedLock`/:class:`SharedRwLock`, a refcount + stop-the-world
mark/sweep GC, and the Hacky-Racers :class:`CounterThreadClock`.

Agents consume it through ``scope.sharedmem`` (a :class:`SharedMemAPI`);
defenses interpose through :class:`AccessPolicy`.
"""

from .api import AccessPolicy, SharedMemAPI
from .atomics import AtomicCell, AtomicCounterCore, RateActivity
from .clockthread import DEFAULT_RATE_PER_MS, CounterThreadClock
from .heap import AgentBinding, SharedCell, SharedHeap
from .locks import SharedLock, SharedRwLock
from .objects import SharedArray, SharedDict, SharedObject

__all__ = [
    "AccessPolicy",
    "AgentBinding",
    "AtomicCell",
    "AtomicCounterCore",
    "CounterThreadClock",
    "DEFAULT_RATE_PER_MS",
    "RateActivity",
    "SharedArray",
    "SharedCell",
    "SharedDict",
    "SharedHeap",
    "SharedLock",
    "SharedMemAPI",
    "SharedObject",
    "SharedRwLock",
]
