"""Per-scope shared-memory namespace and the defense policy protocol.

Every page main thread and every worker gets ``scope.sharedmem``, a
:class:`SharedMemAPI` bound to that agent's event loop.  Construction
attaches the agent to the browser-wide :class:`SharedHeap` — silently
(no cost, no trace events), so browsers that never touch shared memory
produce byte-identical traces.

Defenses interpose by installing an :class:`AccessPolicy` on the scope's
API (``scope.sharedmem.set_policy(...)``).  The policy is bound to the
*agent*, not the object: shared objects cross threads freely, so the
policy that applies to an access is the one installed for the thread
performing it.  A scope with no policy installed accesses shared memory
natively — which is precisely how clock-fuzzing defenses measurably fail
against the counter-thread clock.
"""

from __future__ import annotations

from typing import Optional

from ...errors import SimulationError
from .atomics import AtomicCell
from .clockthread import CounterThreadClock
from .heap import SharedHeap
from .locks import SharedLock, SharedRwLock
from .objects import SharedArray, SharedDict, SharedObject


class AccessPolicy:
    """Defense interposition on shared-memory accesses (pass-through base)."""

    name = "base"
    #: True when installing this policy must force safe stop-the-world GC
    #: (the kernel mediates the collection entry point).
    guards_gc = False

    def before_access(self, sim, cell, op: str, access: str) -> None:
        """Called before every data access by the bound agent (pacing)."""

    def before_lock(self, sim, lock, thread: str, held) -> None:
        """Called before every lock acquisition by the bound agent.

        ``held`` is the sequence of locks the thread already owns; an
        ordering-enforcing policy raises ``SecurityError`` here to veto
        out-of-order acquisition (deadlock prevention by construction).
        """

    def counter_value(self, cell, core, raw: int) -> int:
        """Transform a counter-style read (clock-defense hook)."""
        return raw


class SharedMemAPI:
    """The ``scope.sharedmem`` namespace for one agent."""

    def __init__(self, heap: SharedHeap, loop):
        self.heap = heap
        self.binding = heap.attach(loop)

    # ------------------------------------------------------------------
    # factories (created objects are rooted to this agent)
    # ------------------------------------------------------------------
    def Dict(self, label: str = "dict") -> SharedDict:
        """Allocate a shared dictionary rooted to this agent."""
        obj = SharedDict.create(self.heap, label)
        self.binding.add_root(obj.cell)
        return obj

    def Array(self, label: str = "array") -> SharedArray:
        """Allocate a shared array rooted to this agent."""
        obj = SharedArray.create(self.heap, label)
        self.binding.add_root(obj.cell)
        return obj

    def Atomic(self, label: str = "atomic") -> AtomicCell:
        """Allocate an atomic cell rooted to this agent."""
        atom = AtomicCell(self.heap, label)
        self.binding.add_root(atom.cell)
        return atom

    def CounterClock(self, label: str = "counter-clock") -> CounterThreadClock:
        """Allocate a counter-thread clock rooted to this agent."""
        clock = CounterThreadClock(self.heap, label)
        self.binding.add_root(clock.cell)
        return clock

    def Lock(self, label: str = "lock") -> SharedLock:
        """Create a shared mutex (locks are not garbage-collected)."""
        return SharedLock(self.heap, label)

    def RwLock(self, label: str = "rwlock") -> SharedRwLock:
        """Create a shared readers-writer lock."""
        return SharedRwLock(self.heap, label)

    # ------------------------------------------------------------------
    # root management (the borrow/adopt protocol)
    # ------------------------------------------------------------------
    def adopt(self, obj) -> None:
        """Root a borrowed reference to this agent (a read access)."""
        cell = self._cell_of(obj)
        self.heap.access(cell, "read", "adopt")
        self.binding.add_root(cell)

    def drop(self, obj) -> None:
        """Un-root an object from this agent; may free it immediately."""
        cell = self._cell_of(obj)
        if self.binding.drop_root(cell):
            if cell.refcount == 0 and not cell.freed and not self.heap._rooted(cell):
                self.heap._free_cell(cell, "drop")

    def _cell_of(self, obj):
        cell = getattr(obj, "cell", None)
        if cell is None:
            raise SimulationError(f"not a shared object: {obj!r}")
        return cell

    # ------------------------------------------------------------------
    # collection + policy
    # ------------------------------------------------------------------
    def collect(self, force_safe: bool = False, reason: str = "explicit") -> dict:
        """Trigger a shared-GC cycle from this agent."""
        return self.heap.gc(force_safe=force_safe, reason=reason)

    def set_policy(self, policy: Optional[AccessPolicy]) -> None:
        """Install this agent's defense access policy."""
        self.binding.policy = policy
        if policy is not None and policy.guards_gc:
            self.heap.gc_guard = policy.name

    @property
    def policy(self) -> Optional[AccessPolicy]:
        return self.binding.policy

    def stats(self) -> dict:
        """Heap-level statistics (tests and telemetry)."""
        heap = self.heap
        return {
            "live_cells": heap.live_cells,
            "gc_runs": heap.gc_runs,
            "deadlocks": len(heap.deadlocks),
            "leaked_cells": len(heap.leaked_cells),
            "agents": len(heap.bindings),
        }


__all__ = ["AccessPolicy", "SharedMemAPI", "SharedObject"]
