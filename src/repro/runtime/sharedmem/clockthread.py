"""The counter-thread clock (Hacky Racers, Xiao & Ainsworth).

A fine-grained timer needs no clock API at all: a helper thread spins an
``Atomics.add`` loop on a shared cell and the measuring thread brackets
the secret operation with two loads.  Clock-fuzzing defenses (Fuzzyfox,
Tor's 100 ms clamp) interpose on the *explicit* clocks — they never see
this one, which is exactly the paper-extending bypass the
``counter-thread-clock`` attack pins.

Defenses that mediate every shared access do see it: JSKernel's
sharedmem policy paces the loads onto the kernel grid, and DetBrowser's
metronome answers loads from the reader's deterministic clock.
"""

from __future__ import annotations

from .atomics import AtomicCell
from .heap import SharedHeap

#: Default spin rate (counts per millisecond) — fast enough that two
#: loads a few hundred microseconds apart differ by hundreds of counts.
DEFAULT_RATE_PER_MS = 1_000.0


class CounterThreadClock:
    """A shared spin counter read as a timer."""

    def __init__(self, heap: SharedHeap, label: str = "counter-clock"):
        self.heap = heap
        self.atom = AtomicCell(heap, label=label)

    @property
    def obj_id(self) -> str:
        return self.atom.obj_id

    @property
    def cell(self):
        """The backing cell (lets the clock be stored in shared objects)."""
        return self.atom.cell

    # -- helper-thread side --------------------------------------------
    def start(self, rate_per_ms: float = DEFAULT_RATE_PER_MS) -> None:
        """Begin the tight increment loop (declared as a rate activity)."""
        self.atom.start_spin(rate_per_ms)

    def stop(self) -> None:
        """Freeze the counter."""
        self.atom.stop_spin()

    @property
    def running(self) -> bool:
        return self.atom.spinning

    # -- measuring side -------------------------------------------------
    def read(self) -> int:
        """One timer sample: a policy-interposed atomic load."""
        return self.atom.load()
