"""Exception hierarchy shared by the simulated runtime, kernel and attacks.

The hierarchy mirrors the failure classes that matter in the paper:

* :class:`SimulationError` — misuse of the simulator itself (a bug in the
  experiment code, not in the simulated browser).
* :class:`BrowserCrash` — the simulated browser hit a memory-safety bug.
  Concrete subclasses (:class:`UseAfterFreeError`, :class:`NullDerefError`,
  :class:`DoubleFreeError`) model the low-level vulnerabilities that web
  concurrency attacks trigger (paper §II-A2).
* :class:`SecurityError` — a security policy (same-origin policy, a JSKernel
  policy, …) stopped an operation.  Raising it is the *defense working*, not
  a crash.
* :class:`KernelError` — internal JSKernel invariant violation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this package."""


class SimulationError(ReproError):
    """The simulation was driven incorrectly (experiment-code bug)."""


class DeadlockError(SimulationError):
    """The simulator ran out of events while a completion was awaited."""


class BrowserCrash(ReproError):
    """The simulated browser executed a memory-safety bug.

    Instances carry the CVE identifier (when known) so attack harnesses can
    assert that the *intended* vulnerability was reached.
    """

    def __init__(self, message: str, cve: str = ""):
        super().__init__(message)
        self.cve = cve


class UseAfterFreeError(BrowserCrash):
    """A freed native object was dereferenced."""


class DoubleFreeError(BrowserCrash):
    """A native object was freed twice."""


class NullDerefError(BrowserCrash):
    """A null native pointer was dereferenced."""


class UseAfterCollectError(BrowserCrash):
    """A shared object swept by the shared GC was accessed.

    The shared-memory analogue of :class:`UseAfterFreeError`: a buggy
    collector (``shm_gc_thread_roots``) condemned a cell still rooted by
    another agent, and that agent touched it after the sweep.
    """


class SecurityError(ReproError):
    """An operation was blocked by a security policy.

    Mirrors the DOM ``SecurityError`` exception: same-origin violations,
    JSKernel policy denials and sealed-kernel-object tampering all raise it.
    """


class CrossOriginLeak(ReproError):
    """Raised by attack harnesses when cross-origin data was obtained.

    This is *not* raised by the runtime; attacks raise (or record) it to
    signal that an information-disclosure vulnerability was exploitable.
    """


class UnknownDefenseError(ReproError, KeyError):
    """An unregistered defense name was requested.

    Subclasses :class:`KeyError` so existing ``except KeyError`` callers
    (and tests) keep working, but carries the list of registered backends
    so the message is actionable.
    """

    def __init__(self, name: str, available):
        self.defense = name
        self.available = list(available)
        super().__init__(
            f"unknown defense {name!r}; available backends: "
            + ", ".join(self.available)
        )

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message; report it verbatim.
        return self.args[0]


class KernelError(ReproError):
    """A JSKernel internal invariant was violated."""


class PolicyError(KernelError):
    """A security policy is malformed or was misapplied."""
