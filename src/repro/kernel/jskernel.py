"""The JSKernel facade: install the kernel into a browser.

``JSKernel`` is the deployable artifact (the paper's browser extension):
constructed with a policy bundle, installed into a :class:`Browser`, it
injects a :class:`JSKernelInstance` into every new JavaScript context —
each page's main thread (here) and, through the thread manager, every
worker a page creates.
"""

from __future__ import annotations

from typing import List, Optional

from ..runtime.browser import Browser
from ..runtime.page import Page
from .interface import KernelInterface
from .policy import CompositePolicy, Policy, SchedulingGrid
from .policies import DeterministicSchedulingPolicy, WorkerLifecyclePolicy, all_cve_policies
from .space import KernelSpace
from .threadmgr import ThreadManager


class JSKernelInstance:
    """The kernel injected into one page (main-thread side)."""

    def __init__(self, kernel: "JSKernel", page: Page):
        self.kernel = kernel
        self.page = page
        self.policy = kernel.policy
        self.grid = kernel.grid
        self.kspace = KernelSpace(
            page.loop, kernel.policy, kernel.grid,
            label=f"kmain:{page.origin.host}",
        )
        self.interface = KernelInterface(self.kspace)
        scope = page.scope

        # capture natives the thread manager and wrappers will need
        self.kspace.natives["Worker"] = scope.Worker

        self.interface.install_clocks(scope)
        self.interface.install_timers(scope)
        self.interface.install_raf(scope)
        self.interface.install_fetch(scope)
        self.interface.install_dom_loading(page)
        self.interface.install_window_messaging(scope)
        self.interface.install_animations(scope)
        self.interface.install_media(scope)
        self.interface.install_shared_buffers(scope)
        self.interface.install_sharedmem(scope)
        self.interface.install_storage(scope, page)

        self.thread_manager = ThreadManager(self, page)
        scope.Worker = self.thread_manager.construct_worker

    # ------------------------------------------------------------------
    def policy_allows_deferred_teardown(self, kthread) -> bool:
        """Whether the lifecycle policy permits eventual native teardown."""
        policy = self.policy
        if isinstance(policy, CompositePolicy):
            lifecycle = policy.find(WorkerLifecyclePolicy.name)
        elif isinstance(policy, WorkerLifecyclePolicy):
            lifecycle = policy
        else:
            lifecycle = None
        if lifecycle is None:
            return True
        return bool(getattr(lifecycle, "allow_deferred_teardown", False))

    @property
    def threads(self):
        """Kernel threads created by this page."""
        return self.thread_manager.threads


class JSKernel:
    """The deployable JSKernel 'extension'.

    Usable directly (``JSKernel().install(browser)``) or through the
    defense registry (:mod:`repro.defenses.jskernel_defense`).
    """

    name = "jskernel"

    def __init__(
        self,
        policies: Optional[List[Policy]] = None,
        grid: Optional[SchedulingGrid] = None,
        include_cve_policies: bool = True,
    ):
        if policies is None:
            policies = [DeterministicSchedulingPolicy()]
            if include_cve_policies:
                policies.extend(all_cve_policies())
        self.policy = CompositePolicy(policies) if len(policies) > 1 else policies[0]
        if isinstance(self.policy, CompositePolicy):
            pass
        else:
            self.policy = CompositePolicy([self.policy])
        self.grid = grid or SchedulingGrid()
        self.instances: List[JSKernelInstance] = []

    # ------------------------------------------------------------------
    def install(self, browser: Browser) -> None:
        """Defense entry point: hook every new page."""
        browser.page_hooks.append(self.install_into_page)

    def install_into_page(self, page: Page) -> JSKernelInstance:
        """Inject the kernel into one page's JavaScript context."""
        instance = JSKernelInstance(self, page)
        self.instances.append(instance)
        page.jskernel = instance
        return instance

    def instance_for(self, page: Page) -> Optional[JSKernelInstance]:
        """The kernel instance injected into ``page`` (if any)."""
        for instance in self.instances:
            if instance.page is page:
                return instance
        return None
