"""Manually-specified per-CVE policies (paper §II-B2, §IV-B).

Each policy encodes the expert-extracted triggering condition of one (or
one family of) web concurrency CVE and blocks it at the kernel boundary.
They are deliberately small: the point of the paper is that once the
kernel structure exists, a CVE policy is a handful of lines.

Policy ↔ CVE map
----------------

* :class:`WorkerLifecyclePolicy` — CVE-2018-5092, CVE-2014-1488,
  CVE-2014-3194, CVE-2013-6646, CVE-2013-5602 (and the paper's Listing 4):
  user-requested terminations close the thread *at the user level only*;
  the kernel worker stays alive, so the buggy native teardown paths
  (freeing in-flight fetches with dangling abort registrations, freeing
  transferred buffers the parent owns, nulling ports that are still
  reachable) never execute.
* :class:`TransferNeuterPolicy` — CVE-2014-1719: the kernel performs its
  own neutering of transferred buffers, so even a browser whose
  structured-clone forgets to detach leaves the parent with a safely
  detached reference instead of a dangling pointer.
* :class:`WorkerXhrOriginPolicy` — CVE-2013-1714: "JSKernel enforces a
  policy to check the origins for all the requests coming from a web
  worker."
* :class:`ErrorSanitizerPolicy` — CVE-2014-1487, CVE-2015-7215,
  CVE-2011-1190, CVE-2010-4576: worker error messages are replaced by a
  new message without the cross-origin information.
* :class:`PrivateModeStoragePolicy` — CVE-2017-7843: "avoid access to
  indexedDB during private browsing mode to obey the mode's
  specification."
"""

from __future__ import annotations

from typing import Any

from ...errors import SecurityError
from ...runtime.origin import parse_url, same_origin
from ...runtime.sharedbuf import SimArrayBuffer
from ..policy import Policy

SANITIZED_ERROR = "Script error."


class WorkerLifecyclePolicy(Policy):
    """Keep kernel workers alive across user-level terminations."""

    name = "worker-lifecycle"
    kind = "specific"
    cves = (
        "CVE-2018-5092",
        "CVE-2014-1488",
        "CVE-2014-3194",
        "CVE-2013-6646",
        "CVE-2013-5602",
    )

    def __init__(self, allow_deferred_teardown: bool = False):
        #: When True, the thread manager may natively terminate once the
        #: thread is quiescent (no pending fetches, no live transferables).
        self.allow_deferred_teardown = allow_deferred_teardown

    def on_worker_terminate_request(self, kworker) -> bool:
        """Claim every termination: user-level close only."""
        return True


class TransferNeuterPolicy(Policy):
    """Kernel-side neutering of transferred ArrayBuffers."""

    name = "transfer-neuter"
    kind = "specific"
    cves = ("CVE-2014-1719",)

    def on_worker_message(self, kworker, direction: str, data: Any) -> None:
        """After a main->worker transfer, detach the sender's references."""
        if direction != "to_worker_transfer" or not data:
            return
        for item in data:
            if isinstance(item, SimArrayBuffer) and not item.detached:
                item.detach()


class WorkerXhrOriginPolicy(Policy):
    """Same-origin check for all worker-initiated requests."""

    name = "worker-xhr-origin"
    kind = "specific"
    cves = ("CVE-2013-1714",)

    def on_api_call(self, api: str, kspace, info) -> None:
        """Veto cross-origin worker XHR before the (buggy) native send."""
        if api != "worker.xhr.send":
            return
        url = info.get("url")
        origin = info.get("origin")
        base_url = info.get("base_url")
        if url is None or origin is None:
            return
        target = parse_url(url, base=base_url)
        if not same_origin(target.origin, origin):
            raise SecurityError(
                "kernel policy: worker XHR to cross-origin "
                f"{target.origin.serialize()} denied"
            )


class ErrorSanitizerPolicy(Policy):
    """Strip cross-origin information from worker error messages."""

    name = "error-sanitizer"
    kind = "specific"
    cves = ("CVE-2014-1487", "CVE-2015-7215", "CVE-2011-1190", "CVE-2010-4576")

    def on_error_event(self, kworker, message: str, cross_origin: bool) -> str:
        """Throw a new message without the cross-origin information."""
        if cross_origin:
            return SANITIZED_ERROR
        return message


class PrivateModeStoragePolicy(Policy):
    """Deny indexedDB in private browsing."""

    name = "private-mode-storage"
    kind = "specific"
    cves = ("CVE-2017-7843",)

    def allow_storage_access(self, page) -> bool:
        """Private-mode pages get no indexedDB at all."""
        return not getattr(page, "private_mode", False)


def all_cve_policies() -> list:
    """The full specific-policy bundle evaluated in Table I."""
    return [
        WorkerLifecyclePolicy(),
        TransferNeuterPolicy(),
        WorkerXhrOriginPolicy(),
        ErrorSanitizerPolicy(),
        PrivateModeStoragePolicy(),
    ]
