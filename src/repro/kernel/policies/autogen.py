"""Automatic policy extraction — a prototype of the paper's future work.

§VI: "At present, JSKernel only defends against other web concurrency
attacks on a case-by-case base, because JSKernel requires
vulnerability-specific policies.  We leave it as a future work to
automatically extract policies for a new vulnerability."

This module implements a first cut of that pipeline:

1. **Record** — run the exploit against an *instrumented* kernel
   (:class:`ApiCallRecorder`, a pass-through policy that observes every
   kernel API crossing together with security-relevant context features:
   cross-origin targets, private browsing, thread status).
2. **Localise** — mark the calls carrying *danger features* in the
   recorded trace.
3. **Synthesize** — emit a :class:`SynthesizedPolicy` whose rules deny
   exactly those (api, feature-set) combinations.
4. **Validate** — re-run the exploit under the synthesized policy and
   check it no longer succeeds, and that a benign probe suite still runs.

The prototype handles the *information-disclosure* class (the triggering
call itself carries the dangerous context: CVE-2013-1714's cross-origin
worker XHR, CVE-2017-7843's private-mode indexedDB).  It deliberately
reports failure on the use-after-free class, whose triggering condition
is a cross-thread liveness property no single call exhibits — exactly
why the paper calls the general problem future work.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ...errors import BrowserCrash, SecurityError
from ...runtime.origin import parse_url, same_origin
from ..policy import Policy

#: Context features the recorder derives from api_call info dicts.
DANGER_FEATURES = ("cross_origin", "private_mode")


class RecordedCall:
    """One kernel API crossing with its derived feature set."""

    __slots__ = ("api", "features", "kspace_label")

    def __init__(self, api: str, features: FrozenSet[str], kspace_label: str):
        self.api = api
        self.features = features
        self.kspace_label = kspace_label

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        feats = ",".join(sorted(self.features)) or "-"
        return f"<Call {self.api} [{feats}] @{self.kspace_label}>"


def _derive_features(info: Dict) -> FrozenSet[str]:
    features = set()
    url = info.get("url")
    origin = info.get("origin")
    base_url = info.get("base_url")
    if url is not None and origin is not None:
        try:
            target = parse_url(str(url), base=base_url)
            if not same_origin(target.origin, origin):
                features.add("cross_origin")
        except ValueError:
            pass
    if info.get("private_mode"):
        features.add("private_mode")
    return frozenset(features)


class ApiCallRecorder(Policy):
    """Pass-through policy that records every kernel API crossing."""

    name = "api-call-recorder"
    kind = "general"

    def __init__(self):
        self.trace: List[RecordedCall] = []

    def on_api_call(self, api: str, kspace, info: Dict) -> None:
        self.trace.append(RecordedCall(api, _derive_features(info), kspace.label))


class SynthesizedPolicy(Policy):
    """A deny-list policy produced by the extractor."""

    kind = "specific"

    def __init__(self, rules: List[Tuple[str, FrozenSet[str]]], label: str):
        self.rules = list(rules)
        self.name = f"synthesized:{label}"

    def on_api_call(self, api: str, kspace, info: Dict) -> None:
        features = _derive_features(info)
        for rule_api, rule_features in self.rules:
            if api == rule_api and rule_features <= features:
                raise SecurityError(
                    f"{self.name}: {api} with {sorted(rule_features)} denied"
                )

    def describe(self) -> str:
        """Human-readable rule listing (what an analyst would review)."""
        lines = [f"policy {self.name}:"]
        for api, features in self.rules:
            lines.append(f"  deny {api} when {sorted(features) or 'always'}")
        return "\n".join(lines)


def synthesize_from_trace(trace: List[RecordedCall], label: str) -> Optional[SynthesizedPolicy]:
    """Step 2+3: localise danger-feature calls and emit deny rules."""
    rules: List[Tuple[str, FrozenSet[str]]] = []
    for call in trace:
        dangerous = call.features & set(DANGER_FEATURES)
        if dangerous and (call.api, frozenset(dangerous)) not in rules:
            rules.append((call.api, frozenset(dangerous)))
    if not rules:
        return None
    return SynthesizedPolicy(rules, label)


class ExtractionResult:
    """Outcome of one extraction attempt."""

    def __init__(self, policy: Optional[SynthesizedPolicy], validated: bool, note: str):
        self.policy = policy
        self.validated = validated
        self.note = note

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "validated" if self.validated else "NOT validated"
        return f"<ExtractionResult {state}: {self.note}>"


def extract_policy_for(attack_name: str, seed: int = 0) -> ExtractionResult:
    """The full pipeline for one Table I CVE row.

    Runs the exploit on a vulnerable build under a recording (otherwise
    pass-through) kernel, synthesizes a policy from the trace, and
    validates it by re-running the exploit with the policy active.
    """
    from ...attacks import create
    from ...runtime.browser import Browser
    from ...runtime.profiles import vulnerable
    from ..jskernel import JSKernel

    # --- step 1: record an exploit run ---------------------------------
    recorder = ApiCallRecorder()
    attack = create(attack_name)

    def run_with(policies) -> bool:
        """Run the exploit under a kernel with ``policies``; True = leaked."""
        kernel = JSKernel(policies=policies)
        browser = Browser(profile=vulnerable("firefox"), seed=seed)
        kernel.install(browser)
        page = browser.open_page(attack.page_url)
        attack.setup(browser, page)
        try:
            return bool(attack.attempt(browser, page))
        except BrowserCrash:
            return True
        except SecurityError:
            return False
        except Exception:
            return False

    leaked = run_with([recorder])
    if not leaked:
        return ExtractionResult(
            None, False,
            "exploit did not reproduce through kernel-visible API calls "
            "(liveness/UAF class: beyond this extractor, as in the paper)",
        )

    # --- steps 2+3: synthesize -----------------------------------------
    policy = synthesize_from_trace(recorder.trace, attack_name)
    if policy is None:
        return ExtractionResult(
            None, False,
            "trace shows no danger-feature call to block "
            "(triggering condition is relational, not per-call)",
        )

    # --- step 4: validate ----------------------------------------------
    still_leaks = run_with([policy])
    if still_leaks:
        return ExtractionResult(policy, False, "synthesized policy failed validation")
    return ExtractionResult(policy, True, f"{len(policy.rules)} rule(s) block the exploit")
