"""Built-in JSKernel security policies."""

from .autogen import (
    ApiCallRecorder,
    ExtractionResult,
    SynthesizedPolicy,
    extract_policy_for,
    synthesize_from_trace,
)
from .cves import (
    ErrorSanitizerPolicy,
    PrivateModeStoragePolicy,
    TransferNeuterPolicy,
    WorkerLifecyclePolicy,
    WorkerXhrOriginPolicy,
    all_cve_policies,
)
from .deterministic import DeterministicSchedulingPolicy
from .fuzzy import FuzzySchedulingPolicy

__all__ = [
    "ApiCallRecorder",
    "DeterministicSchedulingPolicy",
    "ExtractionResult",
    "SynthesizedPolicy",
    "extract_policy_for",
    "synthesize_from_trace",
    "ErrorSanitizerPolicy",
    "FuzzySchedulingPolicy",
    "PrivateModeStoragePolicy",
    "TransferNeuterPolicy",
    "WorkerLifecyclePolicy",
    "WorkerXhrOriginPolicy",
    "all_cve_policies",
]
