"""A fuzzy-time scheduling policy (paper §III-D1 mentions "fuzzy time" as
an alternative scheduling algorithm).

Instead of canonical grid slots, predicted times carry seeded random
jitter.  This is strictly weaker than determinism — an attacker averaging
over many trials recovers the signal — and exists (a) for fidelity to the
paper's design space and (b) as the ablation baseline the benchmark
``test_ablations.py`` uses to show *why* the deterministic policy is the
one that works.
"""

from __future__ import annotations

import random
from typing import Optional

from ..policy import Policy


class FuzzySchedulingPolicy(Policy):
    """Grid slots + bounded random jitter."""

    name = "fuzzy-scheduling"
    kind = "general"
    enforces_order = True

    def __init__(self, rng: Optional[random.Random] = None, jitter_fraction: float = 0.5):
        self.rng = rng or random.Random(0x5EED)
        if not 0.0 <= jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        self.jitter_fraction = jitter_fraction

    def predict(self, event_kind: str, kspace, hint: Optional[int] = None) -> Optional[int]:
        """Real-time-anchored slot plus uniform jitter.

        This is fuzzy *time*, not determinism: events dispatch near when
        they would naturally, plus noise — so measurements remain
        correlated with real durations and averaging recovers them.
        """
        grid = kspace.grid.grid_for(event_kind)
        base = max(kspace.loop.sim.now, kspace.clock.now)
        if event_kind in ("timeout", "interval", "media") and hint is not None:
            base += max(hint, kspace.grid.min_lead_ns)
        jitter = self.rng.randint(0, int(grid * self.jitter_fraction))
        return base + jitter
