"""The general deterministic-scheduling policy (paper §II-B1, Listing 3).

"The policy arranges all the events, such as onmessage, in a
deterministic order": every registration receives a predicted time that
is a function only of the kernel's logical state — the kernel clock
(which itself ticks deterministically) and the per-kind slot grid — never
of physical durations.  All the implicit-clock timing attacks of Table I
collapse under this policy because the counts and timestamps they measure
become constants.
"""

from __future__ import annotations

from typing import Optional

from ..policy import Policy


class DeterministicSchedulingPolicy(Policy):
    """Predicted times from the deterministic slot grid."""

    name = "deterministic-scheduling"
    kind = "general"
    enforces_order = True

    def predict(self, event_kind: str, kspace, hint: Optional[int] = None) -> Optional[int]:
        """predictOnMessage & friends: grid-rounded logical times.

        * timers: kernel-now + requested delay, rounded up to the kind's
          grid (so a 0 ms timeout lands on the next 1 ms slot);
        * everything else: kernel-now + one grid step, rounded up.

        The scheduler then enforces global monotonicity and per-kind slot
        spacing for ``message`` events (the fixed 1 ms onmessage cadence
        that Table II reports for JSKernel).
        """
        grid = kspace.grid.grid_for(event_kind)
        base = kspace.clock.now
        if event_kind in ("timeout", "interval", "media") and hint is not None:
            target = base + max(hint, kspace.grid.min_lead_ns)
        else:
            target = base
        # next grid boundary strictly after the target
        return (target // grid + 1) * grid
