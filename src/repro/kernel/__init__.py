"""JSKernel: the paper's kernel-like structure for JavaScript.

Public surface: the :class:`JSKernel` facade plus the kernel building
blocks (event queue, clock, scheduler, dispatcher, policies) for tests,
ablations and custom policies.
"""

from .comm import classify, wrap_kernel, wrap_user
from .dispatcher import Dispatcher
from .jskernel import JSKernel, JSKernelInstance
from .kclock import KernelClock, KernelDate, KernelPerformance
from .kobjects import (
    CANCELLED,
    DISPATCHED,
    PENDING,
    READY,
    KernelEvent,
    KernelEventQueue,
)
from .policy import CompositePolicy, Policy, SchedulingGrid
from .scheduler import Scheduler
from .space import KernelSpace
from .threadmgr import KernelThread, KernelWorkerStub, ThreadManager

__all__ = [
    "CANCELLED",
    "CompositePolicy",
    "DISPATCHED",
    "Dispatcher",
    "JSKernel",
    "JSKernelInstance",
    "KernelClock",
    "KernelDate",
    "KernelEvent",
    "KernelEventQueue",
    "KernelPerformance",
    "KernelSpace",
    "KernelThread",
    "KernelWorkerStub",
    "PENDING",
    "Policy",
    "READY",
    "Scheduler",
    "SchedulingGrid",
    "ThreadManager",
    "classify",
    "wrap_kernel",
    "wrap_user",
]
