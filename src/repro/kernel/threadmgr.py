"""Thread management: kernel threads wrapping user workers (paper §III-E).

When user space constructs a Worker, the kernel instead creates a **kernel
thread**: a native WebWorker running kernel bootstrap code, which installs
a per-thread :class:`~repro.kernel.space.KernelSpace` (its own queue and
clock), wraps the worker-global APIs, and then imports the *user thread* —
whose source arrives over kernel-space communication, exactly as in the
paper's Listing 5.  User space only ever holds a :class:`KernelWorkerStub`.

The thread object carries the paper's four fields — ``status``, ``id``,
``src`` and ``kernel_worker`` — and the termination path consults the
installed policies: the worker-lifecycle policy closes threads *at the
user level only*, keeping the kernel worker alive, which is what defuses
the worker-lifecycle CVEs (2018-5092, 2014-1488, 2014-3194, 2013-5602,
2013-6646).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional

from ..runtime.interpose import Interposable
from ..runtime.messaging import MessageEvent
from ..runtime.scopes import ErrorEvent
from ..runtime.sharedbuf import SimArrayBuffer
from . import comm
from .interface import KernelInterface
from .space import KernelSpace

#: Fallback id stream for managers predating per-manager numbering.
_kthread_ids = itertools.count(1)

#: Sanitised message used when policies strip error details.
SANITIZED_ERROR = "Script error."


class KernelThread:
    """The kernel's thread object (paper §III-E1)."""

    def __init__(self, manager: "ThreadManager", src):
        self.manager = manager
        # per-manager numbering keeps kthread labels (and traces)
        # deterministic across repeated runs in one process
        self.id = next(getattr(manager, "kthread_seq", _kthread_ids))
        self.src = src
        #: "started" -> "ready" (user thread loaded) -> "closed"
        self.status = "started"
        #: The native worker handle backing this kernel thread.
        self.kernel_worker = None
        #: Worker-side kernel space (set by the bootstrap).
        self.worker_kspace: Optional[KernelSpace] = None
        #: Kernel fetch events the worker reported pending (Listing 4).
        self.pending_fetches: set = set()
        #: Buffers the worker transferred to the parent (lifecycle policy
        #: keeps the kernel worker alive while these are live).
        self.transferred_out: List[SimArrayBuffer] = []
        self.stub: Optional["KernelWorkerStub"] = None
        #: True when a policy deferred the native termination.
        self.user_level_closed_only = False

    @property
    def alive(self) -> bool:
        """True until user-level close."""
        return self.status != "closed"


class KernelWorkerStub(Interposable):
    """The user-space Worker stub (paper Listing 5's Proxy)."""

    def __init__(self, kthread: KernelThread):
        super().__init__()
        self.onmessage: Optional[Callable[[MessageEvent], None]] = None
        self.onerror: Optional[Callable[[ErrorEvent], None]] = None
        self._kthread = kthread
        # kernel trap: assignments are observed by the kernel, never touch
        # the native wrapper (CVE-2013-5602's null deref cannot be reached)
        self.define_setter_trap("onmessage", self._trap_onmessage)
        self.seal_attribute("onmessage")

    def _trap_onmessage(self, handler) -> None:
        self.set_raw("onmessage", handler)

    def postMessage(self, data: Any, transfer: Optional[list] = None) -> None:
        """User postMessage to the worker, via the kernel."""
        self._kthread.manager.post_to_worker(self._kthread, data, transfer)

    def terminate(self) -> None:
        """User terminate, mediated by policy."""
        self._kthread.manager.terminate(self._kthread)

    @property
    def state(self) -> str:
        """Kernel thread status (user-visible convenience)."""
        return self._kthread.status


class ThreadManager:
    """Main-thread side of kernel thread management for one page."""

    def __init__(self, kernel_instance, page):
        self.kernel = kernel_instance
        self.page = page
        self.kspace = kernel_instance.kspace
        self.threads: List[KernelThread] = []
        #: Id stream for this manager's kernel threads.
        self.kthread_seq = itertools.count(1)

    # ------------------------------------------------------------------
    # construction (user calls new Worker(...))
    # ------------------------------------------------------------------
    def construct_worker(self, src) -> KernelWorkerStub:
        """Create a kernel thread and return the user stub."""
        self.kspace.api_call("Worker", {"src": str(src)})
        kthread = KernelThread(self, src)
        stub = KernelWorkerStub(kthread)
        kthread.stub = stub
        self.threads.append(kthread)

        bootstrap = self._make_bootstrap(kthread)
        native_worker_ctor = self.kspace.natives["Worker"]
        handle = native_worker_ctor(bootstrap)
        kthread.kernel_worker = handle
        handle.onmessage = lambda event: self._receive_from_worker(kthread, event)
        handle.onerror = lambda error: self._receive_worker_error(kthread, error)

        # pass the user thread source over kernel-space communication
        handle.postMessage(comm.wrap_kernel("load-user-thread", None))
        self.kernel.policy.on_worker_create(kthread)
        sim = self.kspace.loop.sim
        tracer = sim.tracer
        if tracer.enabled:
            tracer.instant(
                sim.trace_pid,
                self.kspace.scheduler.trace_row,
                "kthread.spawn",
                sim.now,
                cat="kernel",
                args={"kthread": f"kthread-{kthread.id}", "ctx": sim.trace_context},
            )
            tracer.metrics.counter("kernel.threads_spawned").inc()
        return stub

    def _make_bootstrap(self, kthread: KernelThread) -> Callable:
        """The kernel code that runs first inside the new worker."""
        kernel = self.kernel
        manager = self

        def kernel_worker_bootstrap(ws) -> None:
            kspace_w = KernelSpace(
                ws.loop, kernel.policy, kernel.grid, label=f"kthread-{kthread.id}"
            )
            kthread.worker_kspace = kspace_w
            interface = KernelInterface(kspace_w)
            interface.install_clocks(ws)
            interface.install_timers(ws)
            interface.install_shared_buffers(ws)
            interface.install_sharedmem(ws)
            manager._install_worker_messaging(kthread, kspace_w, ws)
            manager._install_worker_fetch(kthread, kspace_w, interface, ws)
            manager._install_worker_xhr(kthread, kspace_w, ws)
            manager._install_worker_import_scripts(kthread, kspace_w, ws)

            def k_close() -> None:
                kspace_w.api_call("worker.close", {})
                manager.terminate(kthread)

            ws.close = k_close

        return kernel_worker_bootstrap

    # ------------------------------------------------------------------
    # worker-side wiring (runs in the kernel thread)
    # ------------------------------------------------------------------
    def _install_worker_messaging(self, kthread: KernelThread, kspace_w: KernelSpace, ws) -> None:
        natives = kspace_w.natives
        natives["postMessage"] = ws.postMessage
        kspace_w.state["user_onmessage"] = None

        def receiver(event: MessageEvent) -> None:
            kind, payload, command = comm.classify(event.data)
            if kind == "kernel":
                self._worker_sys_command(kthread, kspace_w, ws, command, payload)
                return
            if not kthread.alive:
                return
            delivered = MessageEvent(
                payload,
                origin=event.origin,
                timestamp=event.timestamp,
                transferred=event.transferred,
            )

            def deliver(msg: MessageEvent) -> None:
                handler = kspace_w.state.get("user_onmessage")
                if handler is not None:
                    handler(msg)

            kspace_w.scheduler.register_confirmed(
                "message", deliver, args=(delivered,), label="worker-inbox",
                chain="msg:parent",
            )

        ws.set_raw("onmessage", receiver)
        ws.define_setter_trap(
            "onmessage", lambda fn: kspace_w.state.__setitem__("user_onmessage", fn)
        )
        ws.seal_attribute("onmessage")

        def k_post_message(data: Any, transfer: Optional[list] = None) -> None:
            kspace_w.api_call("worker.postMessage", {})
            if not kthread.alive:
                return
            self.kernel.policy.on_worker_message(kthread, "to_parent", data)
            for item in transfer or []:
                if isinstance(item, SimArrayBuffer):
                    kthread.transferred_out.append(item)
            natives["postMessage"](comm.wrap_user(data), transfer)

        ws.postMessage = k_post_message

    def _worker_sys_command(self, kthread, kspace_w, ws, command: str, payload) -> None:
        if command == "load-user-thread":
            self._load_user_thread(kthread, ws)
        elif command == "confirmFetch":
            # Listing 4: the main thread confirmed it knows about the fetch
            kspace_w.state.setdefault("confirmed_fetches", set()).add(payload)

    def _load_user_thread(self, kthread: KernelThread, ws) -> None:
        if not kthread.alive:
            # user space terminated the thread before its source arrived:
            # never run the user code, never resurrect the status
            return
        src = kthread.src
        try:
            if callable(src):
                src(ws)
            else:
                ws.importScripts(str(src))
        except Exception as exc:
            self._deliver_error(kthread, str(exc), cross_origin=True)
            return
        kthread.status = "ready"

    def _install_worker_fetch(self, kthread, kspace_w, interface: KernelInterface, ws) -> None:
        natives = kspace_w.natives

        def on_register(event) -> None:
            kthread.pending_fetches.add(event.id)
            natives["postMessage"](comm.wrap_kernel("pendingChildFetch", event.id))

        def on_settle(event) -> None:
            kthread.pending_fetches.discard(event.id)
            natives["postMessage"](comm.wrap_kernel("childFetchSettled", event.id))

        interface.install_fetch(ws, on_register=on_register, on_settle=on_settle)

    def _install_worker_xhr(self, kthread, kspace_w, ws) -> None:
        natives = kspace_w.natives
        natives["XMLHttpRequest"] = ws.XMLHttpRequest
        kernel = self.kernel

        class KernelXHR:
            """XHR stub: the kernel checks origins before delegating."""

            def __init__(self):
                kspace_w.api_call("worker.xhr", {})
                self._native = natives["XMLHttpRequest"]()
                self._url: Optional[str] = None

            def open(self, method: str, url: str) -> None:
                self._url = url
                self._native.open(method, url)

            def send(self) -> None:
                kernel.policy.on_api_call(
                    "worker.xhr.send",
                    kspace_w,
                    {"url": self._url, "origin": ws.origin, "base_url": ws.base_url},
                )
                self._native.send()

            def __getattr__(self, name):
                return getattr(self._native, name)

            def __setattr__(self, name, value):
                if name.startswith("_"):
                    object.__setattr__(self, name, value)
                else:
                    setattr(self._native, name, value)

        ws.XMLHttpRequest = KernelXHR

    def _install_worker_import_scripts(self, kthread, kspace_w, ws) -> None:
        natives = kspace_w.natives
        natives["importScripts"] = ws.importScripts
        kernel = self.kernel

        def k_import_scripts(url: str) -> None:
            kspace_w.api_call("worker.importScripts", {"url": url})
            try:
                natives["importScripts"](url)
            except Exception as exc:
                # the paper's policy sanitises importScripts errors as a
                # class: even a same-origin load may fail because of a
                # cross-origin redirect, so all details are stripped
                message = kernel.policy.on_error_event(kthread, str(exc), True)
                raise type(exc)(message) from None

        ws.importScripts = k_import_scripts

    # ------------------------------------------------------------------
    # main-side traffic
    # ------------------------------------------------------------------
    def post_to_worker(self, kthread: KernelThread, data: Any, transfer: Optional[list]) -> None:
        """Stub postMessage: kernel-mediated main -> worker."""
        self.kspace.api_call("worker.postMessage", {})
        if not kthread.alive:
            # kernel drops messages to closed threads without touching the
            # native wrapper (CVE-2014-3194 cannot be reached)
            return
        self.kernel.policy.on_worker_message(kthread, "to_worker", data)
        kthread.kernel_worker.postMessage(comm.wrap_user(data), transfer)
        self.kernel.policy.on_worker_message(kthread, "to_worker_transfer", transfer)

    def _receive_from_worker(self, kthread: KernelThread, event: MessageEvent) -> None:
        kind, payload, command = comm.classify(event.data)
        if kind == "kernel":
            self._main_sys_command(kthread, command, payload)
            return
        if not kthread.alive:
            return
        delivered = MessageEvent(
                payload,
                origin=event.origin,
                timestamp=event.timestamp,
                transferred=event.transferred,
            )

        def deliver(msg: MessageEvent) -> None:
            handler = getattr(kthread.stub, "onmessage", None)
            if handler is not None:
                handler(msg)

        self.kspace.scheduler.register_confirmed(
            "message", deliver, args=(delivered,), label="worker-msg",
            chain=f"msg:kthread-{kthread.id}",
        )

    def _main_sys_command(self, kthread: KernelThread, command: str, payload) -> None:
        if command == "pendingChildFetch":
            kthread.pending_fetches.add(payload)
            kthread.kernel_worker.postMessage(comm.wrap_kernel("confirmFetch", payload))
        elif command == "childFetchSettled":
            kthread.pending_fetches.discard(payload)
            self._maybe_finish_deferred_termination(kthread)

    def _receive_worker_error(self, kthread: KernelThread, error: ErrorEvent) -> None:
        self._deliver_error(kthread, error.message, cross_origin=True)

    def _deliver_error(self, kthread: KernelThread, message: str, cross_origin: bool) -> None:
        filtered = self.kernel.policy.on_error_event(kthread, message, cross_origin)
        event = ErrorEvent(filtered)

        def deliver() -> None:
            handler = getattr(kthread.stub, "onerror", None)
            if handler is not None:
                handler(event)

        self.kspace.scheduler.register_confirmed("dom", deliver, label="worker-error")

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def terminate(self, kthread: KernelThread) -> None:
        """User-requested termination, mediated by policy."""
        if not kthread.alive:
            return
        kthread.status = "closed"
        claimed = self.kernel.policy.on_worker_terminate_request(kthread)
        sim = self.kspace.loop.sim
        tracer = sim.tracer
        if tracer.enabled:
            tracer.instant(
                sim.trace_pid,
                self.kspace.scheduler.trace_row,
                "kthread.terminate",
                sim.now,
                cat="kernel",
                args={
                    "kthread": f"kthread-{kthread.id}",
                    "user_level_only": bool(claimed),
                    "ctx": sim.trace_context,
                },
            )
            tracer.metrics.counter("kernel.threads_terminated").inc()
        if claimed:
            # user-level close only: the kernel worker stays alive, so no
            # buggy native teardown (dangling fetches, freed transferables,
            # open ports) can occur
            kthread.user_level_closed_only = True
            return
        self._native_terminate(kthread)

    def _native_terminate(self, kthread: KernelThread) -> None:
        if kthread.kernel_worker is not None:
            kthread.kernel_worker.terminate()

    def _maybe_finish_deferred_termination(self, kthread: KernelThread) -> None:
        """Hook for policies that terminate once the thread is quiescent."""
        if (
            kthread.user_level_closed_only
            and not kthread.pending_fetches
            and not kthread.transferred_out
            and self.kernel.policy_allows_deferred_teardown(kthread)
        ):
            kthread.user_level_closed_only = False
            self._native_terminate(kthread)
