"""Security-policy model (paper §II-B).

A policy in JSKernel is a set of handlers the kernel consults at its hook
points.  The paper distinguishes **general** policies (the deterministic
scheduling policy that defends all timing attacks) from **specific**
policies (hand-written per CVE).  Both kinds are expressed here as
subclasses of :class:`Policy` overriding the hooks they care about; a
:class:`CompositePolicy` stacks them, consulting each in order.

Hook points
-----------

* :meth:`predict` — the scheduling algorithm: given an event kind and the
  kernel clock, produce the predicted time.  This is where determinism
  (or fuzzy time) lives.
* :meth:`on_api_call` — a user-space API call crossed into the kernel;
  may veto it by raising :class:`~repro.errors.SecurityError`.
* :meth:`on_worker_create` / :meth:`on_worker_terminate_request` /
  :meth:`on_worker_message` — thread-manager hooks for the CVE policies.
* :meth:`on_error_event` — may sanitise error text before user space
  sees it.
* :meth:`allow_storage_access` — storage-gating hook (CVE-2017-7843).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import PolicyError
from ..runtime.simtime import ms


class SchedulingGrid:
    """Per-kind prediction parameters used by deterministic scheduling."""

    def __init__(
        self,
        grids_ns: Optional[Dict[str, int]] = None,
        min_lead_ns: int = ms(1),
        spaced_kinds: Optional[set] = None,
    ):
        defaults = {
            "timeout": ms(1),
            "interval": ms(1),
            "message": ms(1),
            "raf": ms(10),
            "network": ms(10),
            "dom": ms(10),
            "media": ms(1),
            "storage": ms(1),
            "generic": ms(1),
        }
        if grids_ns:
            defaults.update(grids_ns)
        self.grids_ns = defaults
        self.min_lead_ns = min_lead_ns
        #: Kinds whose consecutive events must sit a full grid step apart
        #: (messages: the fixed 1 ms spacing is the loopscan defense).
        #: Other kinds may share a slot — e.g. all fetches issued by one
        #: task land on the same predicted slot, so page loads are not
        #: serialised.
        self.spaced_kinds = spaced_kinds if spaced_kinds is not None else {"message"}

    def grid_for(self, kind: str) -> int:
        """Slot spacing for an event kind."""
        return self.grids_ns.get(kind, self.grids_ns["generic"])

    def is_spaced(self, kind: str) -> bool:
        """True when consecutive events of ``kind`` get distinct slots."""
        return kind in self.spaced_kinds


class Policy:
    """Base policy: every hook is a pass-through."""

    #: Short identifier (shows up in policy listings and tests).
    name = "base"
    #: Whether this is a paper-style "general" or "specific" policy.
    kind = "general"
    #: True when the policy's predicted times define a schedule the
    #: dispatcher must enforce (order + pacing).  Pass-through policies
    #: leave events dispatching at their natural confirmation times.
    enforces_order = False

    def predict(self, event_kind: str, kspace, hint: Optional[int] = None) -> Optional[int]:
        """Return a predicted time (kernel ns) or None to defer."""
        return None

    def on_api_call(self, api: str, kspace, info: Dict[str, Any]) -> None:
        """A user API call entered the kernel; raise SecurityError to veto."""

    def on_worker_create(self, kworker) -> None:
        """A kernel thread was created for a user worker."""

    def on_worker_terminate_request(self, kworker) -> bool:
        """User space asked to terminate a worker.

        Return ``True`` if the policy takes ownership of the termination
        (the thread manager then must NOT natively terminate now).
        """
        return False

    def on_worker_message(self, kworker, direction: str, data: Any) -> None:
        """A user message crossed the kernel worker boundary."""

    def on_error_event(self, kworker, message: str, cross_origin: bool) -> str:
        """Filter an error message before user space sees it."""
        return message

    def allow_storage_access(self, page) -> bool:
        """Gate indexedDB access for a page."""
        return True


class CompositePolicy(Policy):
    """Stack of policies consulted in order.

    * ``predict``: first non-None wins (general scheduling policy should
      therefore be listed first).
    * veto hooks: every policy runs; any may raise.
    * ``on_worker_terminate_request``: True if any policy claims it.
    * ``on_error_event``: filters compose left to right.
    * ``allow_storage_access``: all must allow.
    """

    name = "composite"

    def __init__(self, policies: List[Policy]):
        if not policies:
            raise PolicyError("CompositePolicy needs at least one policy")
        self.policies = list(policies)
        self.enforces_order = any(p.enforces_order for p in self.policies)

    def predict(self, event_kind: str, kspace, hint: Optional[int] = None) -> Optional[int]:
        for policy in self.policies:
            predicted = policy.predict(event_kind, kspace, hint)
            if predicted is not None:
                return predicted
        return None

    def on_api_call(self, api: str, kspace, info: Dict[str, Any]) -> None:
        for policy in self.policies:
            policy.on_api_call(api, kspace, info)

    def on_worker_create(self, kworker) -> None:
        for policy in self.policies:
            policy.on_worker_create(kworker)

    def on_worker_terminate_request(self, kworker) -> bool:
        claimed = False
        for policy in self.policies:
            claimed = policy.on_worker_terminate_request(kworker) or claimed
        return claimed

    def on_worker_message(self, kworker, direction: str, data: Any) -> None:
        for policy in self.policies:
            policy.on_worker_message(kworker, direction, data)

    def on_error_event(self, kworker, message: str, cross_origin: bool) -> str:
        for policy in self.policies:
            message = policy.on_error_event(kworker, message, cross_origin)
        return message

    def allow_storage_access(self, page) -> bool:
        return all(policy.allow_storage_access(page) for policy in self.policies)

    def find(self, name: str) -> Optional[Policy]:
        """Look a stacked policy up by name."""
        for policy in self.policies:
            if policy.name == name:
                return policy
        return None
