"""Kernel objects: events and the kernel event queue (paper §III-C1).

A :class:`KernelEvent` is the kernel's record of one asynchronous
occurrence (a timer firing, a message arriving, a frame callback, a fetch
completing).  Its lifecycle follows the paper's two-stage scheduling:

    registered (PENDING, predicted time assigned)
        → confirmed (READY, args/this/callback bound)
        → dispatched (DISPATCHED)
    with CANCELLED reachable from PENDING/READY.

The :class:`KernelEventQueue` orders events by predicted time and supports
the paper's queue API: ``push``, ``pop``, ``top``, ``remove``, ``lookup``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import KernelError

# lifecycle states
PENDING = "pending"
READY = "ready"
CANCELLED = "cancelled"
DISPATCHED = "dispatched"

_event_ids = itertools.count(1)


class KernelEvent:
    """One event in the kernel queue."""

    __slots__ = (
        "id",
        "kind",
        "predicted_time",
        "status",
        "callbacks",
        "chosen_callback",
        "args",
        "this",
        "label",
        "stub",
        "on_dispatch",
        "reg_time",
        "confirm_time",
        "trace_span",
        "queue",
    )

    def __init__(
        self,
        kind: str,
        predicted_time: int,
        callbacks: Optional[Dict[str, Callable]] = None,
        label: str = "",
    ):
        self.id = next(_event_ids)
        self.kind = kind
        self.predicted_time = predicted_time
        self.status = PENDING
        #: All possible callbacks (e.g. {"onload": f, "onerror": g}); the
        #: confirmation stage picks one and deletes the others (§III-D1).
        self.callbacks: Dict[str, Callable] = dict(callbacks) if callbacks else {}
        self.chosen_callback: Optional[Callable] = None
        self.args: Tuple[Any, ...] = ()
        self.this: Any = None
        self.label = label or kind
        #: User-space stub value returned at registration (e.g. a promise).
        self.stub: Any = None
        #: Optional dispatcher hook run instead of the callback.
        self.on_dispatch: Optional[Callable[["KernelEvent"], None]] = None
        #: Lifecycle stamps (virtual ns) for tracing: set by the scheduler
        #: at registration / confirmation.
        self.reg_time = 0
        self.confirm_time = 0
        #: Tracer-local async-span id (0 when the capture is disabled).
        self.trace_span = 0
        #: Back-reference to the owning :class:`KernelEventQueue`, set on
        #: push and cleared on removal, so status transitions can keep the
        #: queue's O(1) live/pending counters exact without heap scans.
        self.queue: Optional["KernelEventQueue"] = None

    # ------------------------------------------------------------------
    def confirm(
        self,
        args: Tuple[Any, ...] = (),
        this: Any = None,
        which: Optional[str] = None,
    ) -> None:
        """Confirmation stage: bind args/this, select the callback."""
        if self.status == CANCELLED:
            return
        if self.status != PENDING:
            raise KernelError(f"confirm on {self.status} event #{self.id}")
        self.args = args
        self.this = this
        if which is not None:
            if which not in self.callbacks:
                raise KernelError(f"event #{self.id} has no callback {which!r}")
            self.chosen_callback = self.callbacks[which]
            self.callbacks = {which: self.chosen_callback}
        elif self.callbacks:
            name, callback = next(iter(self.callbacks.items()))
            self.chosen_callback = callback
            self.callbacks = {name: callback}
        self.status = READY
        queue = self.queue
        if queue is not None:
            queue._pending -= 1

    def cancel(self) -> None:
        """Mark the event cancelled (dispatcher will discard it)."""
        status = self.status
        if status == PENDING or status == READY:
            self.status = CANCELLED
            queue = self.queue
            if queue is not None:
                queue._live -= 1
                if status == PENDING:
                    queue._pending -= 1
                self.queue = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<KernelEvent #{self.id} {self.kind} @{self.predicted_time} "
            f"{self.status}>"
        )


class KernelEventQueue:
    """Priority queue of kernel events ordered by predicted time."""

    def __init__(self):
        self._heap: List[Tuple[int, int, KernelEvent]] = []
        self._by_id: Dict[int, KernelEvent] = {}
        self._sim = None
        self._trace_row = ""
        self._last_depth = -1
        # O(1) bookkeeping, kept exact by the push/pop/remove paths below
        # and by KernelEvent.cancel/confirm via the event's queue backref —
        # replaces the O(n) heap scans the seed used for len()/pending_count
        self._live = 0
        self._pending = 0

    def bind_trace(self, sim, row: str) -> None:
        """Emit depth counters onto ``row`` of ``sim``'s tracer."""
        self._sim = sim
        self._trace_row = row

    def _depth_changed(self) -> None:
        # one counter sample per net depth change; ``_by_id`` is the live
        # membership (heap entries linger until lazily pruned)
        sim = self._sim
        if sim is None or not sim.tracer.enabled:
            return
        depth = len(self._by_id)
        if depth == self._last_depth:
            return
        self._last_depth = depth
        sim.tracer.counter(
            sim.trace_pid,
            self._trace_row,
            "kernel.queue_depth",
            sim.now,
            {"depth": depth},
            cat="kernel",
        )
        sim.tracer.metrics.gauge(f"kernel.queue.depth.{self._trace_row}").set(depth)

    def push(self, event: KernelEvent) -> KernelEvent:
        """Insert an event at its predicted time."""
        heapq.heappush(self._heap, (event.predicted_time, event.id, event))
        self._by_id[event.id] = event
        status = event.status
        if status == PENDING or status == READY:
            event.queue = self
            self._live += 1
            if status == PENDING:
                self._pending += 1
        self._depth_changed()
        return event

    def top(self) -> Optional[KernelEvent]:
        """Earliest non-dispatched event, kept in the queue."""
        self._prune()
        if not self._heap:
            return None
        return self._heap[0][2]

    def pop(self) -> Optional[KernelEvent]:
        """Earliest event, removed from the queue."""
        self._prune()
        if not self._heap:
            return None
        _t, _i, event = heapq.heappop(self._heap)
        self._by_id.pop(event.id, None)
        self._forget(event)
        self._depth_changed()
        return event

    def remove(self, event: KernelEvent) -> None:
        """Remove an event regardless of predicted time (lazy)."""
        self._forget(event)
        event.status = DISPATCHED if event.status == DISPATCHED else CANCELLED
        self._by_id.pop(event.id, None)
        self._depth_changed()

    def lookup(self, event_id: int) -> Optional[KernelEvent]:
        """Find an event by id."""
        return self._by_id.get(event_id)

    def top_ready(self) -> Optional[KernelEvent]:
        """Earliest READY event, skipping pending heads.

        Used by pass-through (non-order-enforcing) dispatch, where an
        unconfirmed event must not hold back confirmed ones.
        """
        self._prune()
        best: Optional[KernelEvent] = None
        for _t, _i, event in self._heap:
            if event.status == READY and (
                best is None or event.predicted_time < best.predicted_time
            ):
                best = event
        return best

    def remove_by_id(self, event_id: int) -> None:
        """Drop an event from the id index (heap entry pruned lazily)."""
        event = self._by_id.pop(event_id, None)
        if event is not None:
            self._forget(event)
        self._depth_changed()

    def _forget(self, event: KernelEvent) -> None:
        """Stop counting ``event`` as a live member of this queue."""
        if event.queue is self:
            event.queue = None
            self._live -= 1
            if event.status == PENDING:
                self._pending -= 1

    def _prune(self) -> None:
        while self._heap and self._heap[0][2].status in (CANCELLED, DISPATCHED):
            _t, _i, event = heapq.heappop(self._heap)
            self._by_id.pop(event.id, None)
            self._forget(event)
        self._depth_changed()

    def __len__(self) -> int:
        """Live (non-cancelled, non-dispatched) members — O(1)."""
        return self._live

    @property
    def pending_count(self) -> int:
        """Events awaiting confirmation — O(1)."""
        return self._pending
