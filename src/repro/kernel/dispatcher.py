"""The kernel dispatcher (paper §III-D3).

"The dispatcher is essentially an event loop that keeps fetching events
from the event queue following their predicted time."

The dispatcher examines the head of the kernel queue:

* READY → invoke its callback (as one native macrotask), after *pacing*:
  an event is never dispatched before its predicted time on the real
  timeline, so events confirmed early (messages flooding in faster than
  their deterministic slots) are held back;
* PENDING → wait; the order is frozen by predicted times, so nothing
  behind the head may run first.  Confirmation will kick the dispatcher;
* CANCELLED → discard and continue.

Invoking an event ticks the kernel clock to the event's predicted time,
which is how the user-visible time axis stays deterministic.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.task import TaskSource
from ..trace import LATENCY_BUCKETS_NS
from .kobjects import CANCELLED, DISPATCHED, PENDING, KernelEvent

#: Native cost charged per dispatched kernel event (queue + context prep).
DISPATCH_COST = 1_500


class Dispatcher:
    """Per-kernel-thread dispatch loop."""

    def __init__(self, kspace):
        self.kspace = kspace
        self.loop = kspace.loop
        # real<->kernel anchors for pacing
        self._anchor_real = self.loop.sim.now
        self._anchor_kernel = kspace.clock.now
        self._armed_for: Optional[int] = None
        self._dispatch_scheduled = False
        self.dispatched_count = 0
        #: Kernel invariant telemetry: under an order-enforcing policy the
        #: dispatched predicted times must be monotone non-decreasing.
        #: Any violation is a kernel bug (fuzz oracle, see
        #: repro.explore.oracles).
        self._last_predicted: Optional[int] = None
        self.order_violations = 0
        # per-kind label caches: kick() runs on every register/confirm and
        # must not build an f-string per call on the untraced path
        self._kick_labels: dict = {}
        self._span_names: dict = {}
        # cached metric handles, rebound when the capture's tracer changes
        self._mh_tracer = None
        self._mh_dispatched: dict = {}
        self._mh_latency_hist = None

    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Re-examine the queue head (called on confirm/cancel/register)."""
        if self._dispatch_scheduled:
            return
        head = self._next_actionable()
        if head is None:
            return
        allowed_real = self._allowed_real(head)
        now = self.loop.sim.now
        delay = max(allowed_real - now, 0)
        self._dispatch_scheduled = True
        kind = head.kind
        label = self._kick_labels.get(kind)
        if label is None:
            label = self._kick_labels[kind] = f"kdispatch:{kind}"
        self.loop.post(
            self._dispatch_head,
            delay=delay,
            source=TaskSource.KERNEL,
            label=label,
        )

    def _next_actionable(self) -> Optional[KernelEvent]:
        queue = self.kspace.queue
        if not self.kspace.policy.enforces_order:
            # pass-through: confirmed events dispatch regardless of
            # pending earlier-slotted ones
            return queue.top_ready()
        while True:
            head = queue.top()
            if head is None:
                return None
            if head.status == CANCELLED:
                queue.pop()
                continue
            if head.status == PENDING:
                return None  # frozen order: wait for confirmation
            return head

    def _allowed_real(self, event: KernelEvent) -> int:
        if not self.kspace.policy.enforces_order:
            return 0  # pass-through: no pacing
        return self._anchor_real + (event.predicted_time - self._anchor_kernel)

    # ------------------------------------------------------------------
    def _dispatch_head(self) -> None:
        self._dispatch_scheduled = False
        head = self._next_actionable()
        if head is None:
            return
        now = self.loop.sim.now
        allowed_real = self._allowed_real(head)
        if now < allowed_real:
            self.kick()
            return
        if now > allowed_real and self.kspace.policy.enforces_order:
            # we are late (a confirmation straggled): slip the anchor so
            # relative pacing is preserved from here on
            self._anchor_real = now - (head.predicted_time - self._anchor_kernel)
        # in pass-through mode the dispatched event may not be the heap
        # head; marking it DISPATCHED lets the queue prune it lazily
        self.kspace.queue.remove_by_id(head.id)
        self._invoke(head)
        self.kick()

    def _invoke(self, event: KernelEvent) -> None:
        sim = self.loop.sim
        sim.consume(DISPATCH_COST)
        if self.kspace.policy.enforces_order:
            if (
                self._last_predicted is not None
                and event.predicted_time < self._last_predicted
            ):
                self.order_violations += 1
                if sim.tracer.enabled:
                    sim.tracer.instant(
                        sim.trace_pid,
                        self.kspace.scheduler.trace_row,
                        "kernel.order-violation",
                        sim.now,
                        cat="kernel",
                        args={
                            "kind": event.kind,
                            "predicted_ns": event.predicted_time,
                            "previous_ns": self._last_predicted,
                        },
                    )
                    sim.tracer.metrics.counter("kernel.order_violations").inc()
            self._last_predicted = event.predicted_time
        self.kspace.clock.tick_to(event.predicted_time)
        event.status = DISPATCHED
        self.dispatched_count += 1
        tracer = sim.tracer
        if tracer.enabled:
            now = sim.now
            kind = event.kind
            dispatch_latency = now - (event.confirm_time or event.reg_time)
            if event.trace_span:
                name = self._span_names.get(kind)
                if name is None:
                    name = self._span_names[kind] = f"kevent:{kind}"
                tracer.async_event(
                    "e",
                    sim.trace_pid,
                    self.kspace.scheduler.trace_row,
                    name,
                    event.trace_span,
                    now,
                    cat="kernel-event",
                    args={
                        "predicted_ns": event.predicted_time,
                        "confirm_latency_ns": event.confirm_time - event.reg_time,
                        "dispatch_latency_ns": dispatch_latency,
                        "ctx": sim.trace_context,
                    },
                )
            if tracer is not self._mh_tracer:
                self._mh_tracer = tracer
                self._mh_dispatched = {}
                self._mh_latency_hist = tracer.metrics.histogram(
                    f"kernel.dispatch_latency_ns.{self.kspace.label}",
                    LATENCY_BUCKETS_NS,
                )
            counter = self._mh_dispatched.get(kind)
            if counter is None:
                counter = self._mh_dispatched[kind] = tracer.metrics.counter(
                    f"kernel.dispatched.{kind}"
                )
            counter.inc()
            self._mh_latency_hist.record(dispatch_latency)
        if event.on_dispatch is not None:
            event.on_dispatch(event)
            return
        callback = event.chosen_callback
        if callback is None:
            return
        if event.this is not None:
            callback(event.this, *event.args)
        else:
            callback(*event.args)
