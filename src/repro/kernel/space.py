"""KernelSpace: the kernel instance owned by one thread.

Paper §III-E1: "a kernel thread maintains a separate event queue and
clock from the main thread" — every JavaScript thread (the main thread
and each worker) gets its own :class:`KernelSpace` bundling the kernel
objects (queue + clock), the scheduler and the dispatcher, plus the saved
native API references the kernel captured before redefining them.
"""

from __future__ import annotations

from typing import Any, Dict

from ..errors import SecurityError
from ..runtime.eventloop import EventLoop
from .dispatcher import Dispatcher
from .kclock import KernelClock
from .kobjects import KernelEventQueue
from .policy import Policy, SchedulingGrid
from .scheduler import Scheduler


class KernelSpace:
    """Kernel objects + scheduler + dispatcher for one thread."""

    def __init__(
        self,
        loop: EventLoop,
        policy: Policy,
        grid: SchedulingGrid,
        label: str = "kernel",
    ):
        self.loop = loop
        self.policy = policy
        self.grid = grid
        self.label = label
        self.queue = KernelEventQueue()
        self.queue.bind_trace(loop.sim, f"kernel:{label}")
        self.clock = KernelClock()
        self.scheduler = Scheduler(self)
        self.dispatcher = Dispatcher(self)
        #: Native API references captured before redefinition ("the kernel
        #: obtains all the JavaScript functions and redefines them using a
        #: customized pointer", §VI).
        self.natives: Dict[str, Any] = {}
        #: Per-kernel-thread scratch state for policies.
        self.state: Dict[str, Any] = {}

    def api_call(self, api: str, info: Dict[str, Any] = None) -> None:
        """Common prologue for every kernel-interposed API call.

        Charges the (small, real) kernel-crossing cost, ticks the kernel
        clock deterministically, and lets the policy veto.
        """
        sim = self.loop.sim
        sim.consume(250)
        self.clock.api_tick()
        tracer = sim.tracer
        if tracer.enabled:
            tracer.metrics.counter(f"kernel.api_calls.{api}").inc()
        try:
            self.policy.on_api_call(api, self, info or {})
        except SecurityError as veto:
            if tracer.enabled:
                frame = sim.current_frame
                ctx = frame.thread_name if frame is not None else sim.native_context
                tracer.instant(
                    sim.trace_pid,
                    self.scheduler.trace_row,
                    "policy.veto",
                    sim.now,
                    cat="policy",
                    args={"api": api, "rule": str(veto), "ctx": ctx},
                )
                tracer.metrics.counter("kernel.policy_vetoes").inc()
            raise

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KernelSpace {self.label} queue={len(self.queue)} clock={self.clock.now}>"
