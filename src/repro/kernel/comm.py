"""Kernel/user message overlay (paper §III-E2).

"Because there only exists one channel, i.e., the postMessage and
onmessage one, between two threads, we create an overlay upon the
channel."  Every message the kernel forwards is wrapped in an envelope
with a type field; kernel-space traffic (clock exchange, thread source,
policy handshakes like ``pendingChildFetch``) is handled by kernel code,
user-space traffic by the scheduler of the receiving thread.

User payloads that *look like* envelopes are escaped before wrapping so a
malicious page cannot spoof kernel commands.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

ENVELOPE_KEY = "__jskernel__"
TYPE_USER = "user"
TYPE_KERNEL = "kernel"
TYPE_ESCAPED = "escaped-user"


def wrap_user(payload: Any) -> Dict[str, Any]:
    """Wrap a user payload for transport."""
    if isinstance(payload, dict) and ENVELOPE_KEY in payload:
        # spoofing attempt (or unlucky collision): escape one level
        return {ENVELOPE_KEY: TYPE_ESCAPED, "payload": payload}
    return {ENVELOPE_KEY: TYPE_USER, "payload": payload}


def wrap_kernel(command: str, data: Any = None) -> Dict[str, Any]:
    """Wrap a kernel-space command."""
    return {ENVELOPE_KEY: TYPE_KERNEL, "command": command, "data": data}


def classify(message: Any) -> Tuple[str, Any, Optional[str]]:
    """Classify an incoming message.

    Returns ``(kind, payload, command)`` where kind is ``"user"``,
    ``"kernel"`` or ``"raw"`` (a message that did not come from a kernel
    endpoint — e.g. posted before the kernel was installed).
    """
    if not isinstance(message, dict) or ENVELOPE_KEY not in message:
        return "raw", message, None
    envelope_type = message[ENVELOPE_KEY]
    if envelope_type == TYPE_KERNEL:
        return "kernel", message.get("data"), message.get("command")
    if envelope_type == TYPE_ESCAPED:
        return "user", message.get("payload"), None
    return "user", message.get("payload"), None
