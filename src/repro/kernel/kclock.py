"""The kernel logical clock (paper §III-C2).

"A clock in JSKernel is simply a counter that ticks based on certain
information, which could be a physical clock tick or specific API calls."

Our kernel clock ticks in two ways:

* **per API call** — every kernel-interposed API call advances the clock
  by a fixed quantum.  Two consecutive ``performance.now()`` calls always
  differ by exactly the quantum, so counting cheap operations between
  clock edges (the clock-edge attack) learns nothing;
* **per event dispatch** — the dispatcher ticks the clock *to* each
  event's predicted time, so all user-visible event timestamps come from
  the deterministic predicted-time axis.

The display API quantises onto a coarse grid, like a real clock's
resolution.
"""

from __future__ import annotations

from ..runtime.simtime import MS, quantize, to_ms, us

#: Clock advance per kernel API call.
DEFAULT_API_TICK = us(10)
#: Display granularity of the kernel clock.
DEFAULT_DISPLAY_RESOLUTION = MS


class KernelClock:
    """Deterministic logical clock for one kernel thread."""

    def __init__(
        self,
        api_tick_ns: int = DEFAULT_API_TICK,
        display_resolution_ns: int = DEFAULT_DISPLAY_RESOLUTION,
    ):
        self.api_tick_ns = api_tick_ns
        self.display_resolution_ns = display_resolution_ns
        self._now = 0
        self.api_ticks = 0
        self.dispatch_ticks = 0

    # ------------------------------------------------------------------
    # ticking API (paper: "tick either by or to a certain value")
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current kernel time in ns (internal, full precision)."""
        return self._now

    def tick_by(self, delta_ns: int) -> int:
        """Advance the clock by ``delta_ns``."""
        self._now += max(delta_ns, 0)
        return self._now

    def tick_to(self, target_ns: int) -> int:
        """Advance the clock to ``target_ns`` (never backwards)."""
        if target_ns > self._now:
            self._now = target_ns
        self.dispatch_ticks += 1
        return self._now

    def api_tick(self) -> int:
        """The per-API-call tick."""
        self.api_ticks += 1
        self._now += self.api_tick_ns
        return self._now

    # ------------------------------------------------------------------
    # displaying API
    # ------------------------------------------------------------------
    def display_ns(self) -> int:
        """Quantised kernel time in ns."""
        return quantize(self._now, self.display_resolution_ns)

    def display_ms(self) -> float:
        """Quantised kernel time in float ms (performance.now shape)."""
        return to_ms(self.display_ns())


class KernelPerformance:
    """The ``performance`` object the kernel exposes to user space.

    Every call ticks the kernel clock (that is the point: observable time
    advances with the program's own actions, not with physical time).
    """

    def __init__(self, clock: KernelClock, sim):
        self._clock = clock
        self._sim = sim

    def now(self) -> float:
        """``performance.now()`` on the kernel time axis."""
        self._sim.consume(200)  # real cost of crossing the kernel boundary
        self._clock.api_tick()
        return self._clock.display_ms()

    @property
    def time_origin(self) -> float:
        """``performance.timeOrigin`` (kernel epoch is always 0)."""
        return 0.0


class KernelDate:
    """``Date.now()`` backed by the kernel clock."""

    EPOCH_MS = 1_577_836_800_000

    def __init__(self, clock: KernelClock, sim):
        self._clock = clock
        self._sim = sim

    def now(self) -> int:
        """``Date.now()`` in kernel milliseconds."""
        self._sim.consume(200)
        self._clock.api_tick()
        return self.EPOCH_MS + int(self._clock.display_ms())
