"""The kernel scheduler: two-stage event scheduling (paper §III-D).

Registration: a pending :class:`KernelEvent` is created with a *predicted*
time and pushed into the kernel queue; the kernel then registers its own
confirmation callback with the native browser API.  Confirmation: when the
browser really fires, the scheduler binds arguments / ``this`` / the
observed callback and flips the event to READY, waking the dispatcher.

Predicted-time assignment is delegated to the installed policy (that is
what makes scheduling deterministic or fuzzy) and then made **globally
monotone** — a new event is never predicted before an already-registered
one — so the dispatcher's predicted-time order is always compatible with
registration order and the queue can never deadlock behind an event that
was predicted into the past.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import KernelError
from ..trace import LATENCY_BUCKETS_NS
from .kobjects import CANCELLED, DISPATCHED, PENDING, READY, KernelEvent, KernelEventQueue

#: Minimum spacing enforced between consecutively assigned predictions.
MIN_SLOT_GAP = 1_000  # 1 µs

#: The monotonicity floor never advances more than this far beyond the
#: kernel clock.  The floor exists so that arrival-observed events can
#: never be slotted — and therefore never dispatched — before an
#: already-registered completion event: otherwise a slow cross-thread
#: message flood could count arrivals against a secret-dependent
#: completion and leak.  Capping it trades determinism range for latency:
#: a 10 s setTimeout must not force every subsequent message past 10 s,
#: so completions more than the horizon in the future only push the floor
#: to the horizon.  Events farther out than this are protected only by
#: slot ordering, a residual channel DESIGN.md documents honestly.
FLOOR_HORIZON = 30 * 1_000_000  # 30 ms


class Scheduler:
    """Per-kernel-thread scheduler."""

    def __init__(self, kspace):
        self.kspace = kspace
        self.queue: KernelEventQueue = kspace.queue
        #: Last predicted time handed out for each event kind.
        self._last_slot: Dict[str, int] = {}
        #: Last predicted time handed out overall (monotonicity floor).
        self._last_assigned = 0
        self.registered_count = 0
        self.confirmed_count = 0
        self.cancelled_count = 0
        #: Trace thread row shared by this kspace's scheduler + dispatcher.
        self.trace_row = f"kernel:{kspace.label}"
        # per-kind "kevent:<kind>" name cache for the traced path
        self._span_names: Dict[str, str] = {}
        # cached metric handles, rebound when the capture's tracer changes
        self._mh_tracer = None
        self._mh_registered: Dict[str, Any] = {}
        self._mh_cancelled: Dict[str, Any] = {}
        self._mh_confirmed = None
        self._mh_confirm_hist = None

    def _span_name(self, kind: str) -> str:
        name = self._span_names.get(kind)
        if name is None:
            name = self._span_names[kind] = f"kevent:{kind}"
        return name

    def _bind_metrics(self, tracer) -> None:
        """(Re)bind cached metric handles to ``tracer``'s registry."""
        self._mh_tracer = tracer
        self._mh_registered = {}
        self._mh_cancelled = {}
        metrics = tracer.metrics
        self._mh_confirmed = metrics.counter("kernel.confirmed")
        self._mh_confirm_hist = metrics.histogram(
            f"kernel.confirm_latency_ns.{self.kspace.label}", LATENCY_BUCKETS_NS
        )

    # ------------------------------------------------------------------
    # registration stage
    # ------------------------------------------------------------------
    def register(
        self,
        kind: str,
        callbacks: Optional[Dict[str, Callable]] = None,
        hint: Optional[int] = None,
        label: str = "",
        chain: Optional[str] = None,
    ) -> KernelEvent:
        """Create and enqueue a pending event with a predicted time.

        ``hint`` carries kind-specific information for the policy — for a
        timeout it is the requested delay in ns.  ``chain`` names the slot
        chain for spaced kinds: messages are spaced *per channel* (one
        worker's flood must not serialise another worker's traffic), so
        each channel passes its own chain id.
        """
        predicted = self.kspace.policy.predict(kind, self.kspace, hint)
        if predicted is None:
            predicted = self._default_predict(kind, hint)
        # Arrival-observed kinds (messages) RESPECT the floor — they can
        # never be slotted before an already-registered completion — but
        # must not RAISE it: during a main-thread stall a worker flood
        # keeps arriving, and letting those slots push the floor would
        # leak the stall length into the next completion's predicted time.
        #
        # Timers are the mirror image: they RAISE the floor (messages may
        # not sneak before them) but do not READ it — a timer's slot is a
        # deterministic function of the kernel clock and its delay, so an
        # abort timer may legitimately be scheduled before an in-flight
        # fetch's completion slot.  Tick chains still order correctly
        # because their slots advance with the clock and ties break by
        # registration order.
        arrival_observed = self.kspace.grid.is_spaced(kind)
        is_timer = kind in ("timeout", "interval")
        predicted = self._monotone(
            kind,
            predicted,
            update_floor=not arrival_observed,
            read_floor=not is_timer,
            chain=chain,
        )
        event = KernelEvent(kind, predicted, callbacks, label=label)
        sim = self.kspace.loop.sim
        event.reg_time = sim.now
        self.queue.push(event)
        self.registered_count += 1
        tracer = sim.tracer
        if tracer.enabled:
            event.trace_span = tracer.next_span_id()
            tracer.async_event(
                "b",
                sim.trace_pid,
                self.trace_row,
                self._span_name(kind),
                event.trace_span,
                event.reg_time,
                cat="kernel-event",
                args={
                    "predicted_ns": predicted,
                    "label": event.label,
                    "ctx": sim.trace_context,
                },
            )
            if tracer is not self._mh_tracer:
                self._bind_metrics(tracer)
            counter = self._mh_registered.get(kind)
            if counter is None:
                counter = self._mh_registered[kind] = tracer.metrics.counter(
                    f"kernel.registered.{kind}"
                )
            counter.inc()
        return event

    def _default_predict(self, kind: str, hint: Optional[int]) -> int:
        """Fallback when no scheduling policy claims the event.

        Pass-through scheduling: predict the event at its natural *real*
        time.  This is what a kernel without the deterministic policy
        does — it interposes but does not reorder, so timing attacks that
        count events against completions still leak (the ablation the
        benchmarks measure).
        """
        base = max(self.kspace.loop.sim.now, self.kspace.clock.now)
        return base + (hint if hint is not None else self.kspace.grid.min_lead_ns)

    def _monotone(
        self,
        kind: str,
        predicted: int,
        update_floor: bool = True,
        read_floor: bool = True,
        chain: Optional[str] = None,
    ) -> int:
        key = chain or kind
        if read_floor:
            floored = max(predicted, self._last_assigned + MIN_SLOT_GAP)
        else:
            floored = max(predicted, self.kspace.clock.now + MIN_SLOT_GAP)
        if self.kspace.grid.is_spaced(kind):
            floored = max(
                floored,
                self._last_slot.get(key, 0) + self.kspace.grid.grid_for(kind),
            )
        self._last_slot[key] = floored
        if update_floor:
            capped = min(floored, self.kspace.clock.now + FLOOR_HORIZON)
            self._last_assigned = max(self._last_assigned, capped)
        # (arrival-observed events keep their slot but leave the floor
        # alone; beyond-horizon slots only push the floor to the horizon.
        # Either way some events may dispatch "out of registration order"
        # relative to later small-slot events, which is harmless when both
        # sides of that order are secret-independent — see DESIGN.md for
        # the residual-channel discussion.)
        return floored

    # ------------------------------------------------------------------
    # confirmation stage
    # ------------------------------------------------------------------
    def confirm(
        self,
        event: KernelEvent,
        args: Tuple[Any, ...] = (),
        this: Any = None,
        which: Optional[str] = None,
    ) -> None:
        """The browser fired: flip the event to READY, wake the dispatcher."""
        if event.status == CANCELLED:
            return
        event.confirm(args=args, this=this, which=which)
        self.confirmed_count += 1
        sim = self.kspace.loop.sim
        event.confirm_time = sim.now
        tracer = sim.tracer
        if tracer.enabled:
            latency = event.confirm_time - event.reg_time
            if event.trace_span:
                tracer.async_event(
                    "n",
                    sim.trace_pid,
                    self.trace_row,
                    self._span_name(event.kind),
                    event.trace_span,
                    event.confirm_time,
                    cat="kernel-event",
                    args={
                        "stage": "confirm",
                        "confirm_latency_ns": latency,
                        "ctx": sim.trace_context,
                    },
                )
            if tracer is not self._mh_tracer:
                self._bind_metrics(tracer)
            self._mh_confirmed.inc()
            self._mh_confirm_hist.record(latency)
        self.kspace.dispatcher.kick()

    def register_confirmed(
        self,
        kind: str,
        callback: Callable,
        args: Tuple[Any, ...] = (),
        hint: Optional[int] = None,
        label: str = "",
        chain: Optional[str] = None,
    ) -> KernelEvent:
        """Register + immediately confirm (events observed only on arrival,
        e.g. inbound messages)."""
        event = self.register(kind, {"default": callback}, hint=hint, label=label, chain=chain)
        self.confirm(event, args=args)
        return event

    # ------------------------------------------------------------------
    # cancellation (paper §III-D2: three cases)
    # ------------------------------------------------------------------
    def cancel(self, event: KernelEvent) -> str:
        """Cancel an event; returns which of the paper's cases applied."""
        if event.status == PENDING:
            event.cancel()
            self.cancelled_count += 1
            self._trace_cancel(event, "not-happened")
            # a cancelled head may have been blocking confirmed events
            self.kspace.dispatcher.kick()
            return "not-happened"
        if event.status == READY:
            event.cancel()
            self.cancelled_count += 1
            self._trace_cancel(event, "confirmed-not-invoked")
            self.kspace.dispatcher.kick()
            return "confirmed-not-invoked"
        if event.status == DISPATCHED:
            return "already-invoked"
        return "already-cancelled"

    def _trace_cancel(self, event: KernelEvent, case: str) -> None:
        sim = self.kspace.loop.sim
        tracer = sim.tracer
        if not tracer.enabled:
            return
        if event.trace_span:
            tracer.async_event(
                "e",
                sim.trace_pid,
                self.trace_row,
                self._span_name(event.kind),
                event.trace_span,
                sim.now,
                cat="kernel-event",
                args={"cancelled": case, "ctx": sim.trace_context},
            )
        if tracer is not self._mh_tracer:
            self._bind_metrics(tracer)
        counter = self._mh_cancelled.get(case)
        if counter is None:
            counter = self._mh_cancelled[case] = tracer.metrics.counter(
                f"kernel.cancelled.{case}"
            )
        counter.inc()

    def lookup(self, event_id: int) -> Optional[KernelEvent]:
        """Find an event by id (policy handlers use this)."""
        event = self.queue.lookup(event_id)
        if event is None:
            raise KernelError(f"no kernel event #{event_id}")
        return event
