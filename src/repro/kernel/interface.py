"""The kernel interface: API redefinition, traps and stubs (paper §III-B).

Each ``install_*`` method captures the native API reference into
``kspace.natives`` (the kernel's "customized pointer") and rebinds the
scope attribute to a kernel wrapper implementing two-stage scheduling:

    user call → **registration** (pending kernel event, predicted time,
    native API invoked with a kernel confirmation callback)
    → browser fires → **confirmation** (args/this/callback bound)
    → **dispatch** (kernel dispatcher invokes the user callback on the
    deterministic predicted-time axis).

Everything the page can observe time through — timers, rAF, fetch,
element onload/onerror, window messaging, CSS animation sampling, video
clocks, SharedArrayBuffer counters — is wrapped here.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..runtime.messaging import MessageEvent
from ..runtime.promises import SimPromise
from ..runtime.sharedmem import AccessPolicy as SharedMemAccessPolicy
from ..runtime.simtime import ms, to_ms
from . import comm
from .kclock import KernelDate, KernelPerformance
from .kobjects import PENDING
from .space import KernelSpace


class KernelInterface:
    """Installs kernel wrappers onto one scope."""

    def __init__(self, kspace: KernelSpace):
        self.kspace = kspace
        self._timer_ids = 0
        self._timers: Dict[int, Dict[str, Any]] = {}
        self._raf_ids = 0
        self._rafs: Dict[int, Any] = {}
        self._element_events: Dict[int, Any] = {}
        self._animations: Dict[tuple, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # clocks
    # ------------------------------------------------------------------
    def install_clocks(self, scope) -> None:
        """Replace ``performance`` and ``Date`` with kernel clocks."""
        kspace = self.kspace
        kspace.natives["performance"] = scope.performance
        kspace.natives["Date"] = scope.Date
        scope.set_raw("performance", KernelPerformance(kspace.clock, kspace.loop.sim))
        scope.set_raw("Date", KernelDate(kspace.clock, kspace.loop.sim))
        scope.seal_attribute("performance")
        scope.seal_attribute("Date")

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def install_timers(self, scope) -> None:
        """Wrap setTimeout/setInterval/clearTimeout/clearInterval."""
        kspace = self.kspace
        natives = kspace.natives
        natives["setTimeout"] = scope.setTimeout
        natives["clearTimeout"] = scope.clearTimeout
        natives["setInterval"] = scope.setInterval
        natives["clearInterval"] = scope.clearInterval

        def k_set_timeout(callback: Callable, delay_ms: float = 0, *args) -> int:
            kspace.api_call("setTimeout", {"delay_ms": delay_ms})
            event = kspace.scheduler.register(
                "timeout", {"default": callback}, hint=ms(max(delay_ms, 0)),
                label="setTimeout",
            )
            native_id = natives["setTimeout"](
                lambda: kspace.scheduler.confirm(event, args=args), delay_ms
            )
            self._timer_ids += 1
            kid = self._timer_ids
            self._timers[kid] = {"event": event, "native_id": native_id, "interval": False}
            return kid

        def k_set_interval(callback: Callable, delay_ms: float = 0, *args) -> int:
            kspace.api_call("setInterval", {"delay_ms": delay_ms})
            self._timer_ids += 1
            kid = self._timer_ids
            state = {"event": None, "native_id": None, "interval": True, "cleared": False}
            self._timers[kid] = state

            def register_next() -> None:
                if state["cleared"]:
                    return
                state["event"] = kspace.scheduler.register(
                    "interval",
                    {"default": run_once},
                    hint=ms(max(delay_ms, 0)),
                    label="setInterval",
                )

            def run_once(*call_args) -> None:
                callback(*call_args)
                register_next()

            def on_native_fire() -> None:
                event = state["event"]
                if event is not None and event.status == PENDING:
                    kspace.scheduler.confirm(event, args=args)
                # a fire racing ahead of the paced dispatcher is coalesced,
                # like browsers coalesce interval callbacks

            register_next()
            state["native_id"] = natives["setInterval"](on_native_fire, delay_ms)
            return kid

        def k_clear_timeout(kid: int) -> None:
            kspace.api_call("clearTimeout", {})
            state = self._timers.pop(kid, None)
            if state is None:
                return
            state["cleared"] = True
            if state.get("event") is not None:
                kspace.scheduler.cancel(state["event"])
            if state.get("native_id") is not None:
                if state["interval"]:
                    natives["clearInterval"](state["native_id"])
                else:
                    natives["clearTimeout"](state["native_id"])

        scope.setTimeout = k_set_timeout
        scope.setInterval = k_set_interval
        scope.clearTimeout = k_clear_timeout
        scope.clearInterval = k_clear_timeout

    # ------------------------------------------------------------------
    # requestAnimationFrame
    # ------------------------------------------------------------------
    def install_raf(self, scope) -> None:
        """Wrap rAF: user callbacks see kernel predicted timestamps."""
        kspace = self.kspace
        natives = kspace.natives
        natives["requestAnimationFrame"] = scope.requestAnimationFrame
        natives["cancelAnimationFrame"] = scope.cancelAnimationFrame

        def k_raf(callback: Callable[[float], None]) -> int:
            kspace.api_call("requestAnimationFrame", {})
            event = kspace.scheduler.register("raf", label="rAF")
            timestamp_ms = to_ms(event.predicted_time)
            event.callbacks = {"default": callback}

            def on_native_frame(_native_timestamp: float) -> None:
                if event.status == PENDING:
                    kspace.scheduler.confirm(event, args=(timestamp_ms,))

            native_id = natives["requestAnimationFrame"](on_native_frame)
            self._raf_ids += 1
            kid = self._raf_ids
            self._rafs[kid] = {"event": event, "native_id": native_id}
            return kid

        def k_cancel_raf(kid: int) -> None:
            kspace.api_call("cancelAnimationFrame", {})
            state = self._rafs.pop(kid, None)
            if state is None:
                return
            kspace.scheduler.cancel(state["event"])
            natives["cancelAnimationFrame"](state["native_id"])

        scope.requestAnimationFrame = k_raf
        scope.cancelAnimationFrame = k_cancel_raf

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------
    def install_fetch(self, scope, on_register=None, on_settle=None) -> None:
        """Wrap fetch: completion is delivered on the kernel time axis.

        ``on_register``/``on_settle`` are thread-manager hooks used by the
        CVE-2018-5092 policy handshake (pendingChildFetch/confirmFetch).
        """
        kspace = self.kspace
        natives = kspace.natives
        natives["fetch"] = scope.fetch

        def k_fetch(url: str, options: Optional[dict] = None) -> SimPromise:
            kspace.api_call("fetch", {"url": url})
            user_promise = SimPromise(kspace.loop, label=f"kfetch:{url}")
            event = kspace.scheduler.register(
                "network",
                {
                    "onload": user_promise.resolve,
                    "onerror": user_promise.reject,
                },
                label=f"fetch:{url}",
            )
            event.stub = user_promise
            if on_register is not None:
                on_register(event)

            def settled(which: str, value: Any) -> None:
                if event.status == PENDING:
                    kspace.scheduler.confirm(event, args=(value,), which=which)
                if on_settle is not None:
                    on_settle(event)

            native_promise = natives["fetch"](url, options)
            native_promise.then(
                lambda response: settled("onload", response),
                lambda error: settled("onerror", error),
            )
            return user_promise

        scope.fetch = k_fetch

    # ------------------------------------------------------------------
    # DOM subresource events (script parsing / image decoding channel)
    # ------------------------------------------------------------------
    def install_dom_loading(self, page) -> None:
        """Two-stage scheduling for element onload/onerror."""
        kspace = self.kspace

        def on_load_start(element) -> None:
            event = kspace.scheduler.register(
                "dom",
                {
                    "onload": lambda: element.onload() if element.onload else None,
                    "onerror": lambda: element.onerror() if element.onerror else None,
                },
                label=f"load:{element.tag}",
            )
            self._element_events[element.node_id] = event

        def route(element, name: str, _handler) -> None:
            event = self._element_events.pop(element.node_id, None)
            if event is None:
                # load started before the kernel was installed; fall back
                # to a register+confirm at delivery
                kspace.scheduler.register_confirmed(
                    "dom", _handler or (lambda: None), label=f"late:{name}"
                )
                return
            kspace.scheduler.confirm(event, which=name)

        page.load_start_hook = on_load_start
        page.element_event_router = route

    # ------------------------------------------------------------------
    # window self-messaging (loopscan channel)
    # ------------------------------------------------------------------
    def install_window_messaging(self, scope) -> None:
        """Wrap window.postMessage/onmessage through the kernel queue."""
        kspace = self.kspace
        natives = kspace.natives
        natives["postMessage"] = scope.postMessage
        kspace.state["window_onmessage"] = None

        def kernel_receiver(event: MessageEvent) -> None:
            kind, payload, _command = comm.classify(event.data)
            if kind == "kernel":
                return  # no kernel commands on the window self-channel
            delivered = MessageEvent(
                payload,
                origin=event.origin,
                timestamp=event.timestamp,
                transferred=event.transferred,
            )

            def deliver(msg: MessageEvent) -> None:
                handler = kspace.state.get("window_onmessage")
                if handler is not None:
                    handler(msg)

            kspace.scheduler.register_confirmed(
                "message", deliver, args=(delivered,), label="window-msg",
                chain="msg:window",
            )

        def trap(handler) -> None:
            kspace.state["window_onmessage"] = handler

        scope.set_raw("onmessage", kernel_receiver)
        scope.define_setter_trap("onmessage", trap)
        scope.seal_attribute("onmessage")

        def k_post_message(data: Any) -> None:
            kspace.api_call("postMessage", {})
            natives["postMessage"](comm.wrap_user(data))

        scope.postMessage = k_post_message

    # ------------------------------------------------------------------
    # CSS animation sampling (getComputedStyle clock)
    # ------------------------------------------------------------------
    def install_animations(self, scope) -> None:
        """Wrap animate/getComputedStyle: progress follows the kernel clock."""
        kspace = self.kspace
        natives = kspace.natives
        natives["animate"] = scope.animate
        natives["getComputedStyle"] = scope.getComputedStyle

        def k_animate(element, prop="left", from_value=0.0, to_value=1000.0, duration_ms=10_000.0):
            kspace.api_call("animate", {})
            native_animation = natives["animate"](element, prop, from_value, to_value, duration_ms)
            self._animations[(element.node_id, prop)] = {
                "start_kernel_ns": kspace.clock.now,
                "from": from_value,
                "to": to_value,
                "duration_ms": duration_ms,
                "native": native_animation,
            }
            return native_animation

        def k_get_computed_style(element, prop: str) -> float:
            kspace.api_call("getComputedStyle", {})
            # the kernel consults its animation table and rebuilds the
            # style value from kernel time: the per-call cost behind the
            # paper's worst Dromaeo case (DOM attributes, ~21%)
            kspace.loop.sim.consume(250)
            record = self._animations.get((element.node_id, prop))
            if record is None:
                return natives["getComputedStyle"](element, prop)
            elapsed_ms = to_ms(kspace.clock.now - record["start_kernel_ns"])
            if record["duration_ms"] <= 0:
                fraction = 1.0
            else:
                fraction = max(0.0, min(1.0, elapsed_ms / record["duration_ms"]))
            return record["from"] + (record["to"] - record["from"]) * fraction

        scope.animate = k_animate
        scope.getComputedStyle = k_get_computed_style

    # ------------------------------------------------------------------
    # media clocks (video.currentTime / WebVTT cues)
    # ------------------------------------------------------------------
    def install_media(self, scope) -> None:
        """Wrap createVideo with a kernel-clocked video object."""
        kspace = self.kspace
        natives = kspace.natives
        natives["createVideo"] = scope.createVideo
        interface = self

        def k_create_video(duration_ms: float = 60_000.0):
            kspace.api_call("createVideo", {})
            return KernelVideo(interface, duration_ms)

        scope.createVideo = k_create_video

    # ------------------------------------------------------------------
    # SharedArrayBuffer counters
    # ------------------------------------------------------------------
    def install_shared_buffers(self, scope) -> None:
        """Wrap SharedArrayBuffer: reads are paced onto kernel slots."""
        kspace = self.kspace
        natives = kspace.natives
        natives["SharedArrayBuffer"] = scope.SharedArrayBuffer
        interface = self

        def k_shared_buffer(size: int = 8):
            kspace.api_call("SharedArrayBuffer", {})
            native = natives["SharedArrayBuffer"](size)
            return KernelSharedBuffer(interface, native)

        scope.SharedArrayBuffer = k_shared_buffer

    # ------------------------------------------------------------------
    # shared-memory object runtime
    # ------------------------------------------------------------------
    def install_sharedmem(self, scope) -> None:
        """Interpose the shared-object runtime for this scope.

        Every access (dict/array ops, atomics, the counter-thread clock's
        loads) becomes a kernel crossing paced onto the message-slot
        grid, and — because the policy guards collection — the shared GC
        is forced onto the safe stop-the-world path regardless of the
        profile's bug flags.
        """
        api = getattr(scope, "sharedmem", None)
        if api is None:
            return
        api.set_policy(KernelSharedMemPolicy(self.kspace))

    # ------------------------------------------------------------------
    # storage gating (CVE-2017-7843 policy)
    # ------------------------------------------------------------------
    def install_storage(self, scope, page) -> None:
        """Wrap indexedDB behind the policy's storage gate."""
        kspace = self.kspace
        kspace.natives["indexedDB"] = scope.indexedDB
        scope.indexedDB = KernelIndexedDB(kspace, kspace.natives["indexedDB"], page)


class KernelVideo:
    """User-facing video stub whose clock is the kernel clock."""

    def __init__(self, interface: KernelInterface, duration_ms: float):
        self._kspace = interface.kspace
        self.duration_ms = duration_ms
        self.playing = False
        self._start_kernel_ns: Optional[int] = None
        self._paused_at_ms = 0.0
        self.cues = []

    def play(self) -> None:
        """Start playback on the kernel time axis."""
        self._kspace.api_call("video.play", {})
        if self.playing:
            return
        self.playing = True
        self._start_kernel_ns = self._kspace.clock.now - int(self._paused_at_ms * 1e6)

    def pause(self) -> None:
        """Freeze currentTime."""
        self._kspace.api_call("video.pause", {})
        if not self.playing:
            return
        self._paused_at_ms = self.current_time * 1000.0
        self.playing = False

    @property
    def current_time(self) -> float:
        """``video.currentTime`` in kernel seconds."""
        self._kspace.api_call("video.currentTime", {})
        if not self.playing or self._start_kernel_ns is None:
            return self._paused_at_ms / 1000.0
        elapsed_ms = to_ms(self._kspace.clock.now - self._start_kernel_ns)
        return min(elapsed_ms, self.duration_ms) / 1000.0

    def add_cue(self, cue) -> None:
        """Cue enter events become kernel timeout events."""
        self._kspace.api_call("video.addCue", {})
        self.cues.append(cue)
        if cue.on_enter is None:
            return
        self._kspace.scheduler.register_confirmed(
            "media",
            lambda: cue.on_enter(cue) if cue.on_enter else None,
            hint=ms(cue.start_ms),
            label=f"cue@{cue.start_ms}",
        )


class KernelSharedBuffer:
    """SharedArrayBuffer stub: every access crosses into the kernel.

    The paper routes SAB accesses through the kernel event queue; we model
    that by *pacing* each read to the kernel's message-slot grid, which
    degrades the counter from a nanosecond timer to grid resolution.
    """

    def __init__(self, interface: KernelInterface, native):
        self._kspace = interface.kspace
        self._native = native

    def _pace(self) -> None:
        sim = self._kspace.loop.sim
        grid = self._kspace.grid.grid_for("message")
        now = sim.now
        boundary = ((now // grid) + 1) * grid
        sim.consume(boundary - now)

    def load(self) -> int:
        """Atomics.load via the kernel (slot-paced)."""
        self._kspace.api_call("sab.load", {})
        self._pace()
        return self._native.load()

    def store(self, value: int) -> None:
        """Atomics.store via the kernel (slot-paced)."""
        self._kspace.api_call("sab.store", {})
        self._pace()
        self._native.store(value)

    def start_increment_activity(self, rate_per_ms: float) -> None:
        """Writer-side tight loop (workers use the native fast path)."""
        self._kspace.api_call("sab.increment", {})
        self._native.start_increment_activity(rate_per_ms)

    def stop_increment_activity(self) -> None:
        """Stop the writer loop."""
        self._native.stop_increment_activity()


class KernelSharedMemPolicy(SharedMemAccessPolicy):
    """Shared-memory access policy: every access crosses into the kernel.

    The same model as :class:`KernelSharedBuffer` generalised to the
    structured shared-object runtime: each access is a kernel API call
    (charged, counted, vetoable) whose completion is paced to the
    kernel's message-slot grid.  Pacing the *access time* is what
    degrades the counter-thread clock — the spin counter's value is a
    function of when the load lands, so grid-aligned loads can only
    observe grid-resolution time.
    """

    name = "jskernel"
    guards_gc = True

    def __init__(self, kspace: KernelSpace):
        self._kspace = kspace

    def before_access(self, sim, cell, op: str, access: str) -> None:
        self._kspace.api_call(f"shm.{access}", {"obj": cell.obj_id})
        grid = self._kspace.grid.grid_for("message")
        boundary = ((sim.now // grid) + 1) * grid
        sim.consume(boundary - sim.now)

    def before_lock(self, sim, lock, thread: str, held) -> None:
        """Veto out-of-order acquisition: deadlock prevention.

        Locks must be taken in allocation (``seq``) order; asking for a
        lock while holding a later-ordered one is the classic ABBA shape
        and the kernel refuses it outright, so wait-for cycles can never
        form under this policy.
        """
        from ..errors import SecurityError

        self._kspace.api_call("shm.lock", {"lock": lock.trace_label})
        worst = max((h.seq for h in held), default=0)
        if worst > lock.seq:
            raise SecurityError(
                f"kernel lock-order policy: {thread} requested {lock.trace_label} "
                f"while holding a later-ordered lock (seq {worst})"
            )


class KernelIndexedDB:
    """indexedDB stub consulting the policy's storage gate."""

    def __init__(self, kspace: KernelSpace, native, page):
        self._kspace = kspace
        self._native = native
        self._page = page

    def _check(self) -> None:
        from ..errors import SecurityError

        if not self._kspace.policy.allow_storage_access(self._page):
            raise SecurityError(
                "indexedDB access denied by kernel policy (private browsing)"
            )

    def put(self, key: str, value) -> None:
        """Policy-gated ``objectStore.put``."""
        self._kspace.api_call(
            "indexedDB.put", {"private_mode": getattr(self._page, "private_mode", False)}
        )
        self._check()
        self._native.put(key, value)

    def get(self, key: str):
        """Policy-gated ``objectStore.get``."""
        self._kspace.api_call(
            "indexedDB.get", {"private_mode": getattr(self._page, "private_mode", False)}
        )
        self._check()
        return self._native.get(key)
